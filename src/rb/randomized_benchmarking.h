/**
 * @file
 * Randomized-benchmarking-style experiment (Section 8.3 / Figure 13):
 * K-1 random single-qubit unitaries followed by the single unitary
 * that inverts the whole sequence, executed under a compile mode, with
 * the survival probability fit to a * f^K + b to extract the per-gate
 * fidelity f. The "optimized-slow" mode pads the optimized schedule
 * with NO-OP idling to standard duration, isolating the
 * shorter-pulses contribution from the fewer-/smaller-pulses ones.
 */
#ifndef QPULSE_RB_RANDOMIZED_BENCHMARKING_H
#define QPULSE_RB_RANDOMIZED_BENCHMARKING_H

#include "compile/compiler.h"
#include "device/fault_injector.h"
#include "opt/fitting.h"

namespace qpulse {

/** The three Figure 13 execution modes. */
enum class RbMode
{
    Standard,
    Optimized,
    OptimizedSlow, ///< Optimized pulses + idle padding to standard time.
};

/** One decay point: sequence length and mean survival probability. */
struct RbPoint
{
    int sequenceLength = 0;
    double survival = 0.0;
};

/** Full result of an RB run. */
struct RbResult
{
    RbMode mode;
    std::vector<RbPoint> decay;
    double gateFidelity = 0.0; ///< Fitted f.
    double spamOffset = 0.0;   ///< Fitted b.
    double amplitude = 0.0;    ///< Fitted a.

    /**
     * Fault/retry accounting accumulated over every (length, seq)
     * cell when RbConfig::faultPlan is enabled on the batched path;
     * all-zero otherwise.
     */
    ResilienceStats resilience;
};

/** Configuration for the RB experiment. */
struct RbConfig
{
    int minLength = 2;
    int maxLength = 25;
    int lengthStride = 1;
    int sequencesPerLength = 5; ///< Paper: 5 random seeds per K.
    long shots = 8000;          ///< Paper: 8k shots per sequence.
    std::uint64_t seed = 0xB35;

    /**
     * Batch the per-length sequences over the shared thread pool.
     * Sequence generation and shot sampling then use per-sequence Rng
     * streams: results are deterministic for a fixed seed and
     * independent of thread count, but statistically different from
     * the (default) sequential stream, so tests pin this to false and
     * the figure benches turn it on.
     */
    bool parallelSequences = false;

    /**
     * Fault plan for RB-under-faults (disabled by default, so plain
     * runs are untouched). Honoured only on the batched path: each
     * (length, seq) cell charges bounded transient/timeout retry
     * accounting and perturbs its sampled counts with the plan's
     * readout faults, every decision drawn from a deterministic
     * per-cell stream (bit-identical across thread counts). The
     * pulse-level fault classes (AWG corruption, coherent drift) act
     * on schedules and are exercised by ResilientExecutor, not by
     * this density-matrix path. The sequential path ignores the plan
     * and stays bit-identical to the historical implementation.
     */
    FaultPlan faultPlan;

    /** Retry budget charged per cell when the fault plan fires. */
    int faultMaxAttempts = 4;
};

/**
 * Generate one RB circuit: K-1 Haar-ish random U3 gates plus the
 * analytic inverse of their product (so the ideal output is |0>).
 */
QuantumCircuit rbSequence(int length, std::size_t qubit,
                          std::size_t n_qubits, Rng &rng);

/**
 * Run the full RB experiment for one mode against a calibrated
 * backend, using the duration-aware noisy simulator.
 */
RbResult runRb(const std::shared_ptr<const PulseBackend> &backend,
               RbMode mode, const RbConfig &config);

/**
 * Coherence-limit estimate of the average gate error for a pulse of
 * the given duration (the bound the paper cites for the minimum
 * improvement a 2x speedup must give): the T1/T2-limited error of an
 * otherwise perfect gate.
 */
double coherenceLimitError(double duration_ns, double t1_us, double t2_us);

} // namespace qpulse

#endif // QPULSE_RB_RANDOMIZED_BENCHMARKING_H
