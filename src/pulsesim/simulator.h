/**
 * @file
 * Pulse-level simulator: executes a Schedule against a TransmonModel.
 *
 * Faithful to the AWG semantics of Section 3.1.4: the complex envelope
 * is piecewise-constant per dt sample, so the evolution is computed as
 * a product of exact per-sample propagators exp(-i H(t_mid) dt) with
 * the slowly-rotating detuning/coupling phases evaluated at the sample
 * midpoint. Virtual-Z frame changes (ShiftPhase) multiply subsequent
 * samples on the channel by a phase, exactly as hardware frame changes
 * do; they cost zero time and are exact (Section 4).
 *
 * Decoherence (T1 relaxation, pure dephasing) is available through a
 * Lindblad master-equation path using per-sample operator splitting:
 * the unitary step followed by an amplitude-damping/dephasing step of
 * the same duration.
 */
#ifndef QPULSE_PULSESIM_SIMULATOR_H
#define QPULSE_PULSESIM_SIMULATOR_H

#include <map>
#include <vector>

#include "pulse/schedule.h"
#include "pulsesim/transmon.h"

namespace qpulse {

/** Where a control channel's drive lands and at what detuning. */
struct ControlChannelSpec
{
    std::size_t driveTransmon;  ///< Which transmon the line shakes.
    double detuningRadPerNs;    ///< omega_transmon - omega_drive.
};

/** Result of a unitary evolution. */
struct UnitaryResult
{
    Matrix unitary;                 ///< Raw propagator in the drive frame.
    std::vector<double> framePhase; ///< Accumulated ShiftPhase per qubit.
    long duration = 0;              ///< Schedule duration in dt.
};

/**
 * Executes pulse schedules on a transmon model.
 */
class PulseSimulator
{
  public:
    explicit PulseSimulator(TransmonModel model);

    /** Register a control channel (u_i) mapping. */
    void setControlChannel(std::size_t index,
                           const ControlChannelSpec &spec);

    const TransmonModel &model() const { return model_; }

    /** Full propagator of the schedule (drive frame, frames reported). */
    UnitaryResult evolveUnitary(const Schedule &schedule) const;

    /**
     * Effective unitary with the pending virtual-Z frames folded back
     * in, so that compiled schedules compare directly against target
     * gate matrices. For d-level transmons the frame phase acts as
     * exp(-i phase * n).
     */
    Matrix effectiveUnitary(const UnitaryResult &result) const;

    /** Final state from an initial state (drive frame). */
    Vector evolveState(const Schedule &schedule,
                       const Vector &initial) const;

    /**
     * Density-matrix evolution with T1/T2 decoherence. The initial
     * density matrix must match the model dimension.
     */
    Matrix evolveLindblad(const Schedule &schedule,
                          const Matrix &rho0) const;

    /**
     * Populations of the computational (qubit-subspace + leakage)
     * basis states from a state vector.
     */
    std::vector<double> populations(const Vector &state) const;

  private:
    struct SampleTimeline;

    /** Per-sample total drive on each transmon (frames applied). */
    std::vector<std::vector<Complex>> buildDriveTimeline(
        const Schedule &schedule, long duration,
        std::vector<double> *frame_out) const;

    Matrix stepPropagator(double t_mid_ns,
                          const std::vector<Complex> &drives) const;

    TransmonModel model_;
    std::map<std::size_t, ControlChannelSpec> controlChannels_;

    // Cached operators.
    Matrix staticH_;
    std::vector<Matrix> raising_; ///< (omega_j / 2) * a_j^dag.
    Matrix couplingOp_;           ///< J * a_A^dag a_B (0 if uncoupled).
    double couplingDetuning_ = 0.0;
    bool hasCoupling_ = false;
};

} // namespace qpulse

#endif // QPULSE_PULSESIM_SIMULATOR_H
