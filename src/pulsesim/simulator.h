/**
 * @file
 * Pulse-level simulator: executes a Schedule against a TransmonModel.
 *
 * Faithful to the AWG semantics of Section 3.1.4: the complex envelope
 * is piecewise-constant per dt sample, so the evolution is computed as
 * a product of exact per-sample propagators exp(-i H(t_mid) dt) with
 * the slowly-rotating detuning/coupling phases evaluated at the sample
 * midpoint. Virtual-Z frame changes (ShiftPhase) multiply subsequent
 * samples on the channel by a phase, exactly as hardware frame changes
 * do; they cost zero time and are exact (Section 4).
 *
 * Decoherence (T1 relaxation, pure dephasing) is available through a
 * Lindblad master-equation path using per-sample operator splitting:
 * the unitary step followed by an amplitude-damping/dephasing step of
 * the same duration.
 *
 * Performance model (docs/PERFORMANCE.md): per-sample propagators are
 * memoized in a PropagatorCache keyed on the quantized drive vector,
 * and runs of identical consecutive samples (flat-tops, constant CR
 * tones, idle stretches) collapse into one cached propagator applied
 * repeatedly. Attaching a caller-owned cache with setPropagatorCache
 * extends the reuse across calls, making repeated execution of the
 * same schedule (shots, ZNE stretch sweeps, RB sequences) near-free
 * after the first pass.
 */
#ifndef QPULSE_PULSESIM_SIMULATOR_H
#define QPULSE_PULSESIM_SIMULATOR_H

#include <map>
#include <memory>
#include <vector>

#include "pulse/schedule.h"
#include "pulsesim/propagator_cache.h"
#include "pulsesim/transmon.h"

namespace qpulse {

/** Where a control channel's drive lands and at what detuning. */
struct ControlChannelSpec
{
    std::size_t driveTransmon;  ///< Which transmon the line shakes.
    double detuningRadPerNs;    ///< omega_transmon - omega_drive.
};

/** Result of a unitary evolution. */
struct UnitaryResult
{
    Matrix unitary;                 ///< Raw propagator in the drive frame.
    std::vector<double> framePhase; ///< Accumulated ShiftPhase per qubit.
    long duration = 0;              ///< Schedule duration in dt.
};

/**
 * Executes pulse schedules on a transmon model.
 */
class PulseSimulator
{
  public:
    explicit PulseSimulator(TransmonModel model);

    /** Register a control channel (u_i) mapping. */
    void setControlChannel(std::size_t index,
                           const ControlChannelSpec &spec);

    const TransmonModel &model() const { return model_; }

    /**
     * Attach a caller-owned propagator cache shared across evolve
     * calls (and safely across threads). Pass nullptr to detach; the
     * simulator then memoizes only within each call.
     */
    void setPropagatorCache(std::shared_ptr<PropagatorCache> cache)
    {
        cache_ = std::move(cache);
    }

    const std::shared_ptr<PropagatorCache> &propagatorCache() const
    {
        return cache_;
    }

    /**
     * Disable (or re-enable) propagator memoization entirely. With
     * caching off the simulator takes the legacy exact path — one
     * eigendecomposition per AWG sample — which exists as the
     * reference baseline for correctness tests and perf benches.
     */
    void setCachingEnabled(bool enabled) { cachingEnabled_ = enabled; }
    bool cachingEnabled() const { return cachingEnabled_; }

    /** Full propagator of the schedule (drive frame, frames reported). */
    UnitaryResult evolveUnitary(const Schedule &schedule) const;

    /**
     * Effective unitary with the pending virtual-Z frames folded back
     * in, so that compiled schedules compare directly against target
     * gate matrices. For d-level transmons the frame phase acts as
     * exp(-i phase * n).
     */
    Matrix effectiveUnitary(const UnitaryResult &result) const;

    /** Final state from an initial state (drive frame). */
    Vector evolveState(const Schedule &schedule,
                       const Vector &initial) const;

    /**
     * Density-matrix evolution with T1/T2 decoherence. The initial
     * density matrix must match the model dimension.
     */
    Matrix evolveLindblad(const Schedule &schedule,
                          const Matrix &rho0) const;

    /**
     * Populations of the computational (qubit-subspace + leakage)
     * basis states from a state vector.
     */
    std::vector<double> populations(const Vector &state) const;

  private:
    /**
     * One run of consecutive AWG samples whose quantized Hamiltonian
     * is identical: a single propagator applied `count` times.
     */
    struct DriveStep
    {
        PropagatorKey key;
        std::vector<Complex> drives; ///< Per-transmon summed drive.
        double tMidNs = 0.0;         ///< Midpoint of the first sample.
        long count = 0;              ///< Run length in samples.
    };

    /** Per-sample total drive on each transmon (frames applied). */
    std::vector<std::vector<Complex>> buildDriveTimeline(
        const Schedule &schedule, long duration,
        std::vector<double> *frame_out) const;

    /** Quantize one sample's Hamiltonian inputs into a cache key. */
    PropagatorKey makeKey(const std::vector<Complex> &drives,
                          double t_mid_ns) const;

    /**
     * Run-length-encode the drive timeline into DriveSteps (caching
     * path only).
     */
    std::vector<DriveStep> compileSteps(
        const std::vector<std::vector<Complex>> &drives,
        long duration) const;

    /** Propagator for one step, through `cache` when non-null. */
    Matrix stepUnitary(const DriveStep &step,
                       PropagatorCache *cache) const;

    /**
     * The cache to use for one evolve call: the attached cross-call
     * cache if set, else `local` (per-call memoization), else null
     * when caching is disabled.
     */
    PropagatorCache *activeCache(
        std::unique_ptr<PropagatorCache> &local) const;

    Matrix stepPropagator(double t_mid_ns,
                          const std::vector<Complex> &drives) const;

    TransmonModel model_;
    std::map<std::size_t, ControlChannelSpec> controlChannels_;

    // Cached operators.
    Matrix staticH_;
    std::vector<Matrix> raising_; ///< (omega_j / 2) * a_j^dag.
    Matrix couplingOp_;           ///< J * a_A^dag a_B (0 if uncoupled).
    double couplingDetuning_ = 0.0;
    bool hasCoupling_ = false;

    // Memoization state.
    std::shared_ptr<PropagatorCache> cache_; ///< Caller-owned, optional.
    bool cachingEnabled_ = true;
};

} // namespace qpulse

#endif // QPULSE_PULSESIM_SIMULATOR_H
