/**
 * @file
 * Pulse-level simulator: executes a Schedule against a TransmonModel.
 *
 * Faithful to the AWG semantics of Section 3.1.4: the complex envelope
 * is piecewise-constant per dt sample, so the evolution is computed as
 * a product of exact per-sample propagators exp(-i H(t_mid) dt) with
 * the slowly-rotating detuning/coupling phases evaluated at the sample
 * midpoint. Virtual-Z frame changes (ShiftPhase) multiply subsequent
 * samples on the channel by a phase, exactly as hardware frame changes
 * do; they cost zero time and are exact (Section 4).
 *
 * Decoherence (T1 relaxation, pure dephasing) is available through a
 * Lindblad master-equation path using per-sample operator splitting:
 * the unitary step followed by an amplitude-damping/dephasing step of
 * the same duration.
 *
 * Performance model (docs/PERFORMANCE.md): per-sample propagators are
 * memoized in a PropagatorCache keyed on the quantized drive vector,
 * and runs of identical consecutive samples (flat-tops, constant CR
 * tones, idle stretches) collapse into one cached propagator applied
 * repeatedly. Attaching a caller-owned cache with setPropagatorCache
 * extends the reuse across calls, making repeated execution of the
 * same schedule (shots, ZNE stretch sweeps, RB sequences) near-free
 * after the first pass.
 */
#ifndef QPULSE_PULSESIM_SIMULATOR_H
#define QPULSE_PULSESIM_SIMULATOR_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/cancellation.h"
#include "linalg/workspace.h"
#include "pulse/schedule.h"
#include "pulsesim/propagator_cache.h"
#include "pulsesim/transmon.h"

namespace qpulse {

/** Where a control channel's drive lands and at what detuning. */
struct ControlChannelSpec
{
    std::size_t driveTransmon;  ///< Which transmon the line shakes.
    double detuningRadPerNs;    ///< omega_transmon - omega_drive.
};

/** Result of a unitary evolution. */
struct UnitaryResult
{
    Matrix unitary;                 ///< Raw propagator in the drive frame.
    std::vector<double> framePhase; ///< Accumulated ShiftPhase per qubit.
    long duration = 0;              ///< Schedule duration in dt.
};

/**
 * Executes pulse schedules on a transmon model.
 */
class PulseSimulator
{
  public:
    explicit PulseSimulator(TransmonModel model);

    /** Register a control channel (u_i) mapping. */
    void setControlChannel(std::size_t index,
                           const ControlChannelSpec &spec);

    const TransmonModel &model() const { return model_; }

    /**
     * Attach a caller-owned propagator cache shared across evolve
     * calls (and safely across threads). Pass nullptr to detach; the
     * simulator then memoizes only within each call.
     */
    void setPropagatorCache(std::shared_ptr<PropagatorCache> cache)
    {
        cache_ = std::move(cache);
    }

    const std::shared_ptr<PropagatorCache> &propagatorCache() const
    {
        return cache_;
    }

    /**
     * Disable (or re-enable) propagator memoization entirely. With
     * caching off the simulator takes the legacy exact path — one
     * eigendecomposition per AWG sample — which exists as the
     * reference baseline for correctness tests and perf benches.
     */
    void setCachingEnabled(bool enabled) { cachingEnabled_ = enabled; }
    bool cachingEnabled() const { return cachingEnabled_; }

    /**
     * Disable (or re-enable) the drift-frame step kernel on the
     * uncached path: prediagonalized static Hamiltonian, warm-started
     * Jacobi, allocation-free in-place products. Off, the uncached
     * path runs the pre-overhaul per-sample code exactly — kept as the
     * reference baseline for correctness pins and perf comparisons.
     * Cached propagators are unaffected either way: cache values are
     * always computed by the canonical cold-start stepPropagator so
     * they stay pure functions of the key.
     */
    void setDriftKernelEnabled(bool enabled)
    {
        driftKernelEnabled_ = enabled;
    }
    bool driftKernelEnabled() const { return driftKernelEnabled_; }

    /**
     * Attach a cooperative interrupt to this simulator instance: the
     * evolve loops poll the token — and a *wall-clock* deadline —
     * every kInterruptStride AWG samples (per collapsed run on the
     * cached path) and throw a StatusError carrying the structured
     * Cancelled / DeadlineExceeded reason mid-evolution. Virtual-time
     * deadlines are deliberately ignored here: their budget is charged
     * deterministically at shot-batch admission (PulseBackend), and an
     * admitted batch must be allowed to finish even when the charge
     * crossed the budget boundary. Default (inert token, no deadline)
     * costs one branch per stride.
     */
    void setInterrupt(CancelToken token, Deadline deadline = {})
    {
        cancelToken_ = std::move(token);
        wallDeadline_ =
            deadline.isVirtual() ? Deadline::none() : deadline;
        interruptible_ = cancelToken_.cancellable() ||
                         !wallDeadline_.unlimited();
    }

    /** Samples between interrupt polls on the per-sample paths. */
    static constexpr long kInterruptStride = 256;

    /**
     * Poll the attached interrupt (see setInterrupt); throws
     * StatusError(Cancelled|DeadlineExceeded) when it fired. Public so
     * batch drivers (runShots) can share one check between shots.
     */
    void checkInterrupt() const
    {
        if (interruptible_)
            throwIfInterrupted();
    }

    /**
     * Fingerprint of the drift-frame prediagonalization inputs (static
     * Hamiltonian, drive/coupling operators). Mixed into every
     * PropagatorKey so a recalibrated model can never be served
     * propagators cached under a stale basis.
     */
    std::uint64_t basisVersion() const { return basisVersion_; }

    /** Full propagator of the schedule (drive frame, frames reported). */
    UnitaryResult evolveUnitary(const Schedule &schedule) const;

    /**
     * Effective unitary with the pending virtual-Z frames folded back
     * in, so that compiled schedules compare directly against target
     * gate matrices. For d-level transmons the frame phase acts as
     * exp(-i phase * n).
     */
    Matrix effectiveUnitary(const UnitaryResult &result) const;

    /** Final state from an initial state (drive frame). */
    Vector evolveState(const Schedule &schedule,
                       const Vector &initial) const;

    /**
     * Batched state evolution: every column of `panel` is evolved
     * through the schedule in place, so the per-sample propagators
     * (cache lookups, eigensolves, binary powers) are computed ONCE
     * and applied to all K states as a single gemm per step
     * (linalg/state_panel.h). Matches per-column evolveState to
     * <= 1e-12 max-abs (pinned in tests/test_batch.cc); within one
     * dispatch mode the result is deterministic, so it is bit-identical
     * across QPULSE_THREADS. Interrupt polling keeps evolveState's
     * stride semantics (kInterruptStride samples per poll, per
     * collapsed run on the cached path). `ws` provides panel scratch
     * (state-panel slot 0); the loop is heap-silent once `ws` has
     * warmed at the panel's width.
     */
    void evolveStatesBatched(const Schedule &schedule, StatePanel &panel,
                             Workspace &ws) const;

    /** evolveStatesBatched against the thread-local workspace. */
    void evolveStatesBatched(const Schedule &schedule,
                             StatePanel &panel) const;

    /**
     * Batched Lindblad evolution: every d x d block of `panel` is
     * evolved with T1/T2 decoherence in place — one propagator
     * computation per sample shared across the batch, with the
     * two-sided conjugation batched through conjugatePanelInto
     * (density-panel slots 0-1 of `ws`). Matches per-block
     * evolveLindblad to <= 1e-12 max-abs.
     */
    void evolveLindbladBatched(const Schedule &schedule,
                               DensityPanel &panel, Workspace &ws) const;

    /**
     * Density-matrix evolution with T1/T2 decoherence. The initial
     * density matrix must match the model dimension.
     */
    Matrix evolveLindblad(const Schedule &schedule,
                          const Matrix &rho0) const;

    /**
     * Populations of the computational (qubit-subspace + leakage)
     * basis states from a state vector.
     */
    std::vector<double> populations(const Vector &state) const;

  private:
    /**
     * One run of consecutive AWG samples whose quantized Hamiltonian
     * is identical: a single propagator applied `count` times.
     */
    struct DriveStep
    {
        PropagatorKey key;
        std::vector<Complex> drives; ///< Per-transmon summed drive.
        double tMidNs = 0.0;         ///< Midpoint of the first sample.
        long count = 0;              ///< Run length in samples.
    };

    /**
     * Per-sample drive decomposition d_j(t_mid) = env * exp(i rate
     * t_mid). AWG flat-tops and idle stretches repeat (env, rate)
     * bitwise from sample to sample even when the baked drive value
     * rotates (a CR tone played at the target's frequency has a
     * constant envelope but rate = qubit-qubit detuning). rate is NaN
     * on samples where overlapping plays with different rates make
     * the decomposition ill-defined; such samples never join a run.
     */
    struct DriveModulation
    {
        std::vector<std::vector<Complex>> env;
        std::vector<std::vector<double>> rate;
    };

    /**
     * Per-sample total drive on each transmon (frames applied). When
     * `mod_out` is non-null it receives the envelope/rate
     * decomposition of the same timeline for the step kernel's
     * identical-drive fast path.
     */
    std::vector<std::vector<Complex>> buildDriveTimeline(
        const Schedule &schedule, long duration,
        std::vector<double> *frame_out,
        DriveModulation *mod_out = nullptr) const;

    /** Quantize one sample's Hamiltonian inputs into a cache key. */
    PropagatorKey makeKey(const std::vector<Complex> &drives,
                          double t_mid_ns) const;

    /**
     * Run-length-encode the drive timeline into DriveSteps (caching
     * path only).
     */
    std::vector<DriveStep> compileSteps(
        const std::vector<std::vector<Complex>> &drives,
        long duration) const;

    /**
     * The cache to use for one evolve call: the attached cross-call
     * cache if set, else `local` (per-call memoization), else null
     * when caching is disabled.
     */
    PropagatorCache *activeCache(
        std::unique_ptr<PropagatorCache> &local) const;

    Matrix stepPropagator(double t_mid_ns,
                          const std::vector<Complex> &drives) const;

    /** Slow half of checkInterrupt: throws if the interrupt fired. */
    void throwIfInterrupted() const;

    /**
     * Per-evolve-call state of the drift-frame step kernel: scratch
     * matrices plus the previous sample's eigenvectors used to warm
     * start the next solve. Separate workspaces keep the eigensolver's
     * scratch slots from colliding with the kernel's own.
     */
    struct StepKernel
    {
        Workspace eigWs;             ///< Slots consumed by the solver.
        Workspace simWs;             ///< Slots consumed by the kernel.
        std::vector<double> values;  ///< Step eigenvalues (unsorted).
        Matrix vectors;              ///< Step eigenvectors / next seed.
        std::vector<Complex> phases; ///< exp(-i values dt) scratch.
        Matrix u;                    ///< Step propagator (lab frame).
        bool warm = false;           ///< vectors holds a usable seed.

        // State of the current identical-modulation run (see
        // stepPropagatorInto): while (env, rate) repeats bitwise,
        // later samples derive their propagator from u0 by a diagonal
        // frame rotation instead of a fresh eigensolve.
        std::vector<Complex> runEnv;   ///< Envelope of the run.
        std::vector<double> runRates;  ///< Phase rate per transmon.
        std::vector<double> runC;      ///< Generator coefficients c_j.
        std::vector<double> runAngle0; ///< fl(c_j t0) reference angles.
        std::vector<double> runDelta;  ///< Scratch: c_j t - angle0_j.
        Matrix u0;                     ///< Run-initial propagator.
        long runLen = 0;               ///< Fast steps since anchor.
        bool haveRun = false;          ///< Run state is usable.
        bool runWZero = false;         ///< All c_j == 0: H constant.
    };

    /**
     * Drift-frame propagator for one AWG sample, written into
     * `kernel.u`: builds H in the drift eigenbasis, solves it with a
     * Jacobi solve warm-started from the previous sample, and
     * exponentiates — heap-silent once the kernel's workspaces are
     * warm. `env`/`rates` are this sample's drive decomposition from
     * DriveModulation; when they repeat bitwise across samples the
     * propagator follows from the run-initial one by a diagonal frame
     * rotation with no eigensolve (see the implementation note).
     * Numerically equivalent to stepPropagator (<= 1e-12 per-step
     * max-abs; pinned in tests), not bit-identical.
     */
    void stepPropagatorInto(StepKernel &kernel, double t_mid_ns,
                            const std::vector<Complex> &drives,
                            const std::vector<Complex> &env,
                            const std::vector<double> &rates) const;

    TransmonModel model_;
    std::map<std::size_t, ControlChannelSpec> controlChannels_;

    // Cached operators.
    Matrix staticH_;
    std::vector<Matrix> raising_; ///< (omega_j / 2) * a_j^dag.
    Matrix couplingOp_;           ///< J * a_A^dag a_B (0 if uncoupled).
    double couplingDetuning_ = 0.0;
    bool hasCoupling_ = false;
    std::size_t couplingA_ = 0; ///< Raised-side transmon of the pair.
    std::size_t couplingB_ = 0; ///< Lowered-side transmon of the pair.

    // Number-operator diagonals n_j(i) per transmon, the building
    // blocks of the identical-modulation fast path's generators.
    // Filled only for diagonal drifts (natural basis order).
    std::vector<std::vector<double>> occupations_;

    // Drift-frame prediagonalization (fixed per model, computed once
    // in the constructor): staticH_ = V0 diag(driftValues_) V0^dag,
    // with the drive/coupling operators pre-rotated into that basis.
    // For the diagonal static Hamiltonians the transmon models produce
    // (anharmonicity only), driftDiagonal_ short-circuits V0 = I and
    // keeps driftValues_ in the natural basis order.
    std::vector<double> driftValues_;
    Matrix driftVectors_;              ///< V0 (identity when diagonal).
    std::vector<Matrix> raisingDrift_; ///< V0^dag raising_ V0.
    Matrix couplingOpDrift_;           ///< V0^dag couplingOp_ V0.
    bool driftDiagonal_ = false;
    std::uint64_t basisVersion_ = 0;

    // Memoization state.
    std::shared_ptr<PropagatorCache> cache_; ///< Caller-owned, optional.
    bool cachingEnabled_ = true;
    bool driftKernelEnabled_ = true;

    // Cooperative interruption (setInterrupt). Copies of the simulator
    // share the token/deadline state through their shared_ptr guts.
    CancelToken cancelToken_;
    Deadline wallDeadline_;
    bool interruptible_ = false;
};

} // namespace qpulse

#endif // QPULSE_PULSESIM_SIMULATOR_H
