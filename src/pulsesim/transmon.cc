#include "pulsesim/transmon.h"

#include <cmath>

#include "common/constants.h"

namespace qpulse {

TransmonModel
TransmonModel::single(const TransmonParams &params, std::size_t levels)
{
    TransmonModel model;
    model.params_ = {params};
    model.levels_ = levels;
    return model;
}

TransmonModel
TransmonModel::pair(const TransmonParams &a, const TransmonParams &b,
                    const CouplingParams &coupling, std::size_t levels)
{
    TransmonModel model;
    model.params_ = {a, b};
    model.coupling_ = coupling;
    model.levels_ = levels;
    return model;
}

std::size_t
TransmonModel::dim() const
{
    std::size_t d = 1;
    for (std::size_t j = 0; j < params_.size(); ++j)
        d *= levels_;
    return d;
}

namespace {

Matrix
singleLowering(std::size_t levels)
{
    Matrix a(levels, levels);
    for (std::size_t n = 1; n < levels; ++n)
        a(n - 1, n) = std::sqrt(static_cast<double>(n));
    return a;
}

Matrix
singleNumber(std::size_t levels)
{
    Matrix n(levels, levels);
    for (std::size_t k = 0; k < levels; ++k)
        n(k, k) = static_cast<double>(k);
    return n;
}

} // namespace

Matrix
TransmonModel::lowering(std::size_t j) const
{
    qpulseRequire(j < params_.size(), "lowering: transmon out of range");
    std::vector<Matrix> factors;
    for (std::size_t k = 0; k < params_.size(); ++k)
        factors.push_back(k == j ? singleLowering(levels_)
                                 : Matrix::identity(levels_));
    return kronAll(factors);
}

Matrix
TransmonModel::number(std::size_t j) const
{
    qpulseRequire(j < params_.size(), "number: transmon out of range");
    std::vector<Matrix> factors;
    for (std::size_t k = 0; k < params_.size(); ++k)
        factors.push_back(k == j ? singleNumber(levels_)
                                 : Matrix::identity(levels_));
    return kronAll(factors);
}

Matrix
TransmonModel::staticHamiltonian() const
{
    Matrix h(dim(), dim());
    for (std::size_t j = 0; j < params_.size(); ++j) {
        const double alpha = 2.0 * kPi * params_[j].anharmonicityGhz;
        const Matrix n = number(j);
        // (alpha / 2) n (n - 1): diagonal, so compute directly.
        for (std::size_t idx = 0; idx < dim(); ++idx) {
            const double pop = n(idx, idx).real();
            h(idx, idx) += Complex{alpha / 2.0 * pop * (pop - 1.0), 0.0};
        }
    }
    return h;
}

Matrix
TransmonModel::hamiltonian(double t_ns, const std::vector<Complex> &drives,
                           const std::vector<double> &detunings) const
{
    qpulseRequire(drives.size() == params_.size() &&
                      detunings.size() == params_.size(),
                  "hamiltonian: one drive/detuning per transmon required");

    Matrix h = staticHamiltonian();
    for (std::size_t j = 0; j < params_.size(); ++j) {
        if (drives[j] == Complex{0.0, 0.0})
            continue;
        const double omega = 2.0 * kPi * params_[j].driveStrengthGhz;
        // Drive detuned by `detunings[j]` from this transmon's frame
        // rotates as e^{-i detuning t}.
        const Complex d =
            drives[j] * std::exp(Complex{0.0, -detunings[j] * t_ns});
        const Matrix a = lowering(j);
        const Matrix term =
            a.adjoint() * (d * Complex{omega / 2.0, 0.0}) +
            a * (std::conj(d) * Complex{omega / 2.0, 0.0});
        h += term;
    }

    if (coupling_) {
        const double j_rad = 2.0 * kPi * coupling_->strengthGhz;
        const double delta =
            2.0 * kPi * (params_[coupling_->qubitA].frequencyGhz -
                         params_[coupling_->qubitB].frequencyGhz);
        const Complex phase = std::exp(Complex{0.0, delta * t_ns});
        const Matrix term =
            lowering(coupling_->qubitA).adjoint() *
            lowering(coupling_->qubitB) * (phase * Complex{j_rad, 0.0});
        h += term + term.adjoint();
    }
    return h;
}

std::size_t
TransmonModel::basisIndex(const std::vector<std::size_t> &levels) const
{
    qpulseRequire(levels.size() == params_.size(),
                  "basisIndex arity mismatch");
    std::size_t index = 0;
    for (std::size_t level : levels) {
        qpulseRequire(level < levels_, "basisIndex level out of range");
        index = index * levels_ + level;
    }
    return index;
}

} // namespace qpulse
