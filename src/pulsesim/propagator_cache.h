/**
 * @file
 * Memoization of per-sample propagators exp(-i H dt) for the pulse
 * simulator hot path.
 *
 * The AWG emits piecewise-constant complex samples, so the per-sample
 * Hamiltonian — and therefore the per-sample propagator — is fully
 * determined by (a) the complex drive value landing on each transmon
 * and (b) the coupling-frame phase e^{i Delta t} when the model has an
 * exchange coupling. Long runs of identical samples (GaussianSquare
 * flat-tops, constant CR tones, idle stretches) and schedules repeated
 * across shots / RB sequences / ZNE stretch factors therefore recompute
 * the exact same Jacobi eigendecomposition over and over. This cache
 * quantizes those inputs into an integer key and memoizes the computed
 * propagator in a bounded, LRU-evicting hash map.
 *
 * Quantization uses an absolute quantum of kDriveQuantum (1e-13) per
 * real component. Two samples that collide on a key differ by at most
 * half a quantum per component, which perturbs the step propagator by
 * ||dH|| * dt ~ 1e-13 * 0.22 ns < 1e-13 in max-abs — an order of
 * magnitude below the 1e-12 agreement budget (docs/PERFORMANCE.md
 * derives the bound). Samples that are bit-identical (the common case)
 * hit the cache with zero error.
 *
 * Thread safety: all methods are mutex-protected, so one cache can be
 * shared by concurrent shots drawing from the same schedule.
 *
 * Lock order (shared with PersistentPropagatorCache, src/store): the
 * LRU mutex `mutex_` here and the derived class's persist-queue mutex
 * are BOTH leaf locks — no code path holds one while acquiring the
 * other. getOrCompute* releases `mutex_` before invoking the compute
 * factory (which, in the persistent adapter, takes the queue mutex to
 * enqueue a write-back), and re-acquires it only after the factory
 * returns. Combined stats snapshots (snapshotAndReset here, then the
 * adapter's persist snapshot) acquire the two locks strictly
 * sequentially in that order, never nested. Any future extension must
 * preserve this: never call back into the cache from inside a factory,
 * and never touch the persist queue while holding `mutex_`.
 */
#ifndef QPULSE_PULSESIM_PROPAGATOR_CACHE_H
#define QPULSE_PULSESIM_PROPAGATOR_CACHE_H

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"

namespace qpulse {

/** Absolute quantization step for one real drive component. */
inline constexpr double kDriveQuantum = 1e-13;

/**
 * Quantized identity of one per-sample Hamiltonian: two integers per
 * transmon (Re/Im of the summed drive) plus, for coupled models, two
 * for the coupling phase.
 */
struct PropagatorKey
{
    std::vector<std::int64_t> words;

    bool operator==(const PropagatorKey &other) const
    {
        return words == other.words;
    }
};

/** FNV-1a style hash over the key words. */
struct PropagatorKeyHash
{
    std::size_t operator()(const PropagatorKey &key) const
    {
        std::uint64_t h = 0xCBF29CE484222325ull;
        for (const std::int64_t word : key.words) {
            h ^= static_cast<std::uint64_t>(word);
            h *= 0x100000001B3ull;
        }
        return static_cast<std::size_t>(h);
    }
};

/** Aggregate hit/miss/eviction counters (monotonic). */
struct PropagatorCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    double hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/**
 * Bounded LRU map from PropagatorKey to the cached propagator matrix.
 *
 * Owned either internally by one evolve call (per-call memoization of
 * flat-tops) or by the caller and attached to a PulseSimulator, in
 * which case repeated execution of the same schedule — shots, stretch
 * sweeps, Clifford sequences — reuses every propagator after the first
 * pass.
 */
class PropagatorCache
{
  public:
    /** @param capacity Maximum resident entries before LRU eviction. */
    explicit PropagatorCache(std::size_t capacity = kDefaultCapacity);

    virtual ~PropagatorCache() = default;

    /** Default entry bound: ~4k 9x9 matrices is a few MiB. */
    static constexpr std::size_t kDefaultCapacity = 4096;

    /**
     * Look up `key`, computing and inserting via `compute` on a miss.
     * The factory runs outside the lock-free fast path but inside a
     * single-threaded critical section per cache; it must not reenter
     * the cache. Virtual so PersistentPropagatorCache (src/store) can
     * interpose a disk tier between the memory miss and the factory.
     */
    virtual Matrix getOrCompute(const PropagatorKey &key,
                                const std::function<Matrix()> &compute);

    /**
     * Allocation-aware variant of getOrCompute: the cached (or freshly
     * computed) value is copy-assigned into `out`, reusing `out`'s
     * backing store when its capacity suffices. Inside a warm evolve
     * loop every hit is therefore heap-silent, where the by-value
     * overload pays one matrix allocation per lookup.
     */
    virtual void getOrComputeInto(const PropagatorKey &key,
                                  const std::function<Matrix()> &compute,
                                  Matrix &out);

    /** Drop every entry (counters are preserved). */
    void clear();

    /** Resident entry count. */
    std::size_t size() const;

    std::size_t capacity() const { return capacity_; }

    /** Snapshot of the hit/miss/eviction counters. */
    PropagatorCacheStats stats() const;

    /** Reset the counters (entries are preserved). */
    void resetStats();

    /**
     * Atomically snapshot *and* zero the counters under one lock
     * acquisition. A telemetry flush that did stats() followed by
     * resetStats() would lose every event landing between the two
     * calls under concurrent evolve*; this read-and-clear cannot.
     */
    PropagatorCacheStats snapshotAndReset();

  private:
    struct Entry
    {
        PropagatorKey key;
        Matrix value;
    };
    using LruList = std::list<Entry>;

    std::size_t capacity_;
    LruList lru_; // Front = most recently used.
    std::unordered_map<PropagatorKey, LruList::iterator,
                       PropagatorKeyHash>
        index_;
    PropagatorCacheStats stats_;
    mutable std::mutex mutex_;
};

} // namespace qpulse

#endif // QPULSE_PULSESIM_PROPAGATOR_CACHE_H
