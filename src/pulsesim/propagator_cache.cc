#include "pulsesim/propagator_cache.h"

#include "common/logging.h"

namespace qpulse {

PropagatorCache::PropagatorCache(std::size_t capacity)
    : capacity_(capacity)
{
    qpulseRequire(capacity_ >= 1,
                  "PropagatorCache capacity must be >= 1");
}

Matrix
PropagatorCache::getOrCompute(const PropagatorKey &key,
                              const std::function<Matrix()> &compute)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            ++stats_.hits;
            lru_.splice(lru_.begin(), lru_, it->second);
            return it->second->value;
        }
        ++stats_.misses;
    }

    // Compute outside the lock so concurrent shots never serialize on
    // the eigendecomposition. Two threads may race to compute the same
    // key; both results are identical and the second insert is a no-op.
    Matrix value = compute();

    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.find(key) == index_.end()) {
        lru_.push_front(Entry{key, value});
        index_[key] = lru_.begin();
        if (index_.size() > capacity_) {
            ++stats_.evictions;
            index_.erase(lru_.back().key);
            lru_.pop_back();
        }
    }
    return value;
}

void
PropagatorCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
}

std::size_t
PropagatorCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

PropagatorCacheStats
PropagatorCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
PropagatorCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = PropagatorCacheStats{};
}

} // namespace qpulse
