#include "pulsesim/propagator_cache.h"

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace qpulse {

namespace {

/**
 * Every cache instance — per-call locals, caller-owned cross-shot
 * caches, the RB batch cache — also reports into the one global
 * metrics sink, so the registry view of hit traffic is complete
 * without consumers having to absorb per-instance stats themselves.
 */
telemetry::Counter &
cacheCounter(const char *name)
{
    return telemetry::MetricsRegistry::global().counter(name);
}

} // namespace

PropagatorCache::PropagatorCache(std::size_t capacity)
    : capacity_(capacity)
{
    qpulseRequire(capacity_ >= 1,
                  "PropagatorCache capacity must be >= 1");
}

Matrix
PropagatorCache::getOrCompute(const PropagatorKey &key,
                              const std::function<Matrix()> &compute)
{
    static telemetry::Counter &c_hits =
        cacheCounter("pulsesim.cache.hits");
    static telemetry::Counter &c_misses =
        cacheCounter("pulsesim.cache.misses");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            ++stats_.hits;
            c_hits.increment();
            lru_.splice(lru_.begin(), lru_, it->second);
            return it->second->value;
        }
        ++stats_.misses;
        c_misses.increment();
    }

    // Compute outside the lock so concurrent shots never serialize on
    // the eigendecomposition. Two threads may race to compute the same
    // key; both results are identical and the second insert is a no-op.
    Matrix value = compute();

    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.find(key) == index_.end()) {
        lru_.push_front(Entry{key, value});
        index_[key] = lru_.begin();
        if (index_.size() > capacity_) {
            ++stats_.evictions;
            static telemetry::Counter &c_evictions =
                cacheCounter("pulsesim.cache.evictions");
            c_evictions.increment();
            index_.erase(lru_.back().key);
            lru_.pop_back();
        }
    }
    return value;
}

void
PropagatorCache::getOrComputeInto(const PropagatorKey &key,
                                  const std::function<Matrix()> &compute,
                                  Matrix &out)
{
    static telemetry::Counter &c_hits =
        cacheCounter("pulsesim.cache.hits");
    static telemetry::Counter &c_misses =
        cacheCounter("pulsesim.cache.misses");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            ++stats_.hits;
            c_hits.increment();
            lru_.splice(lru_.begin(), lru_, it->second);
            out = it->second->value;
            return;
        }
        ++stats_.misses;
        c_misses.increment();
    }

    // Same race policy as getOrCompute: compute outside the lock,
    // duplicate inserts are identical no-ops.
    out = compute();

    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.find(key) == index_.end()) {
        lru_.push_front(Entry{key, out});
        index_[key] = lru_.begin();
        if (index_.size() > capacity_) {
            ++stats_.evictions;
            static telemetry::Counter &c_evictions =
                cacheCounter("pulsesim.cache.evictions");
            c_evictions.increment();
            index_.erase(lru_.back().key);
            lru_.pop_back();
        }
    }
}

void
PropagatorCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
}

std::size_t
PropagatorCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

PropagatorCacheStats
PropagatorCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
PropagatorCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = PropagatorCacheStats{};
}

PropagatorCacheStats
PropagatorCache::snapshotAndReset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const PropagatorCacheStats snapshot = stats_;
    stats_ = PropagatorCacheStats{};
    return snapshot;
}

} // namespace qpulse
