/**
 * @file
 * Physical model of one or two coupled transmons — the stand-in for
 * IBM's Almaden/Armonk hardware (see DESIGN.md, substitution table).
 *
 * Each transmon is a d-level Duffing oscillator in the frame rotating
 * at its own drive local-oscillator frequency f01:
 *
 *   H_j / hbar = (alpha_j / 2) n_j (n_j - 1)
 *              + (Omega_j / 2) (d_j(t) a_j^dag + d_j(t)^* a_j),
 *
 * with an exchange coupling J (a_0^dag a_1 e^{i Delta t} + h.c.)
 * between neighbouring transmons (Delta = omega_0 - omega_1 is the
 * qubit-qubit detuning, which makes the coupling oscillate in the
 * doubly-rotating frame). Cross-resonance arises physically: driving
 * the control transmon at the *target's* frequency (a ControlChannel)
 * produces the effective ZX interaction the paper's CR(theta) gates
 * are built from.
 *
 * All frequencies are stored in GHz; internal evolution uses angular
 * rad/ns (omega = 2 pi f since 1 GHz * 1 ns = 1).
 */
#ifndef QPULSE_PULSESIM_TRANSMON_H
#define QPULSE_PULSESIM_TRANSMON_H

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace qpulse {

/** Parameters of a single transmon. */
struct TransmonParams
{
    double frequencyGhz = 5.0;       ///< f01 (Figure 11: ~5 GHz).
    double anharmonicityGhz = -0.30; ///< alpha / 2 pi (~ -300 MHz).
    double driveStrengthGhz = 0.25;  ///< Rabi rate per unit |d(t)|.
    double t1Us = 94.0;              ///< Relaxation time (Almaden mean).
    double t2Us = 88.0;              ///< Dephasing time (Almaden mean).
};

/** Exchange coupling between two transmons. */
struct CouplingParams
{
    std::size_t qubitA = 0;
    std::size_t qubitB = 1;
    double strengthGhz = 0.0035; ///< J / 2 pi (a few MHz, IBM-typical).
};

/**
 * One- or two-transmon system model with d levels per transmon.
 */
class TransmonModel
{
  public:
    /** Single transmon with the given level count. */
    static TransmonModel single(const TransmonParams &params,
                                std::size_t levels = 3);

    /** Two coupled transmons. */
    static TransmonModel pair(const TransmonParams &a,
                              const TransmonParams &b,
                              const CouplingParams &coupling,
                              std::size_t levels = 3);

    std::size_t numTransmons() const { return params_.size(); }
    std::size_t levels() const { return levels_; }
    std::size_t dim() const;

    const TransmonParams &qubit(std::size_t j) const { return params_[j]; }
    const std::optional<CouplingParams> &coupling() const
    {
        return coupling_;
    }

    /** Lowering operator of transmon j embedded in the full space. */
    Matrix lowering(std::size_t j) const;

    /** Number operator of transmon j embedded in the full space. */
    Matrix number(std::size_t j) const;

    /** Static (drive-off) Hamiltonian in rad/ns, excluding coupling. */
    Matrix staticHamiltonian() const;

    /**
     * Full Hamiltonian at time t (ns) given the complex drive value on
     * each transmon's drive line and each drive's detuning from the
     * transmon's own frame (rad/ns). The detuning appears as a phase
     * e^{-i detuning t} on the drive and the coupling rotates at the
     * qubit-qubit detuning.
     */
    Matrix hamiltonian(double t_ns, const std::vector<Complex> &drives,
                       const std::vector<double> &detunings) const;

    /**
     * Index of the computational-basis state |n0 n1 ...> in the full
     * Hilbert space.
     */
    std::size_t basisIndex(const std::vector<std::size_t> &levels) const;

  private:
    std::vector<TransmonParams> params_;
    std::optional<CouplingParams> coupling_;
    std::size_t levels_ = 3;
};

} // namespace qpulse

#endif // QPULSE_PULSESIM_TRANSMON_H
