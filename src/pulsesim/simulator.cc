#include "pulsesim/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/status.h"
#include "linalg/eigen.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

namespace {

/** Work counters for one evolve call (thread-count invariant). */
void
countEvolve(telemetry::Counter &calls, long duration)
{
    static telemetry::Counter &c_samples =
        telemetry::MetricsRegistry::global().counter("sim.samples");
    calls.increment();
    c_samples.add(static_cast<std::uint64_t>(
        duration >= 0 ? duration : 0));
}

/** base^count by binary powering (count >= 1). */
Matrix
matrixPower(Matrix base, long count)
{
    if (count == 1)
        return base;
    Matrix out = Matrix::identity(base.rows());
    while (count > 0) {
        if (count & 1)
            out = base * out;
        count >>= 1;
        if (count > 0)
            base = base * base;
    }
    return out;
}

/**
 * Per-channel frame-phase lookup in O(log events): sorted event times
 * with prefix sums. Replaces the per-sample linear rescan of every
 * ShiftPhase/ShiftFrequency event (quadratic in schedule size).
 *
 * The frequency-shift contribution at sample t is
 *   -2 pi dt * sum_{e: t_e <= t} f_e (t - t_e)
 *     = -2 pi dt * (t * sum f_e  -  sum f_e t_e),
 * so two prefix sums make each lookup O(1) after the binary search.
 */
struct FrameTrack
{
    std::vector<long> phaseTimes;
    std::vector<double> phasePrefix;
    std::vector<long> freqTimes;
    std::vector<double> freqPrefix;     ///< Cumulative sum of f_e.
    std::vector<double> freqTimePrefix; ///< Cumulative sum of f_e t_e.

    double at(long t) const
    {
        double phase = 0.0;
        const auto pit = std::upper_bound(phaseTimes.begin(),
                                          phaseTimes.end(), t);
        if (pit != phaseTimes.begin())
            phase += phasePrefix[static_cast<std::size_t>(
                pit - phaseTimes.begin() - 1)];
        const auto fit = std::upper_bound(freqTimes.begin(),
                                          freqTimes.end(), t);
        if (fit != freqTimes.begin()) {
            const std::size_t k = static_cast<std::size_t>(
                fit - freqTimes.begin() - 1);
            phase -= 2.0 * kPi * kDtNs *
                     (static_cast<double>(t) * freqPrefix[k] -
                      freqTimePrefix[k]);
        }
        return phase;
    }
};

} // namespace

PulseSimulator::PulseSimulator(TransmonModel model)
    : model_(std::move(model))
{
    staticH_ = model_.staticHamiltonian();
    for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
        const double omega =
            2.0 * kPi * model_.qubit(j).driveStrengthGhz;
        raising_.push_back(model_.lowering(j).adjoint() *
                           Complex{omega / 2.0, 0.0});
    }
    if (model_.coupling()) {
        const auto &coupling = *model_.coupling();
        const double j_rad = 2.0 * kPi * coupling.strengthGhz;
        couplingOp_ = model_.lowering(coupling.qubitA).adjoint() *
                      model_.lowering(coupling.qubitB) *
                      Complex{j_rad, 0.0};
        couplingDetuning_ =
            2.0 * kPi * (model_.qubit(coupling.qubitA).frequencyGhz -
                         model_.qubit(coupling.qubitB).frequencyGhz);
        hasCoupling_ = true;
    }
}

void
PulseSimulator::setControlChannel(std::size_t index,
                                  const ControlChannelSpec &spec)
{
    qpulseRequire(spec.driveTransmon < model_.numTransmons(),
                  "control channel drives an unknown transmon");
    controlChannels_[index] = spec;
}

std::vector<std::vector<Complex>>
PulseSimulator::buildDriveTimeline(const Schedule &schedule, long duration,
                                   std::vector<double> *frame_out) const
{
    std::vector<std::vector<Complex>> drives(
        model_.numTransmons(),
        std::vector<Complex>(static_cast<std::size_t>(duration),
                             Complex{0.0, 0.0}));

    // Per-channel phase/frequency events, sorted once and folded into
    // prefix sums so the per-sample frame lookup is O(log events).
    struct PhaseEvent { long time; double phase; };
    struct FreqEvent { long time; double freqGhz; };
    std::map<Channel, std::vector<PhaseEvent>> phase_events;
    std::map<Channel, std::vector<FreqEvent>> freq_events;
    for (const auto &inst : schedule.instructions()) {
        if (inst.kind == PulseInstructionKind::ShiftPhase)
            phase_events[inst.channel].push_back(
                {inst.startTime, inst.phase});
        else if (inst.kind == PulseInstructionKind::ShiftFrequency)
            freq_events[inst.channel].push_back(
                {inst.startTime, inst.frequencyGhz});
    }

    std::map<Channel, FrameTrack> frames;
    for (auto &entry : phase_events) {
        std::sort(entry.second.begin(), entry.second.end(),
                  [](const PhaseEvent &a, const PhaseEvent &b) {
                      return a.time < b.time;
                  });
        FrameTrack &track = frames[entry.first];
        double total = 0.0;
        for (const auto &event : entry.second) {
            total += event.phase;
            track.phaseTimes.push_back(event.time);
            track.phasePrefix.push_back(total);
        }
    }
    for (auto &entry : freq_events) {
        std::sort(entry.second.begin(), entry.second.end(),
                  [](const FreqEvent &a, const FreqEvent &b) {
                      return a.time < b.time;
                  });
        FrameTrack &track = frames[entry.first];
        double f_total = 0.0, ft_total = 0.0;
        for (const auto &event : entry.second) {
            f_total += event.freqGhz;
            ft_total += event.freqGhz * static_cast<double>(event.time);
            track.freqTimes.push_back(event.time);
            track.freqPrefix.push_back(f_total);
            track.freqTimePrefix.push_back(ft_total);
        }
    }

    for (const auto &inst : schedule.instructions()) {
        if (inst.kind != PulseInstructionKind::Play)
            continue;

        std::size_t transmon;
        double detuning = 0.0;
        if (inst.channel.kind == ChannelKind::Drive) {
            transmon = inst.channel.index;
            qpulseRequire(transmon < model_.numTransmons(),
                          "schedule drives transmon ", transmon,
                          " outside the ", model_.numTransmons(),
                          "-transmon model");
        } else if (inst.channel.kind == ChannelKind::Control) {
            const auto it = controlChannels_.find(inst.channel.index);
            qpulseRequire(it != controlChannels_.end(),
                          "unmapped control channel u",
                          inst.channel.index);
            transmon = it->second.driveTransmon;
            detuning = it->second.detuningRadPerNs;
        } else {
            continue; // Measurement stimulus does not drive qubits.
        }

        const auto track_it = frames.find(inst.channel);
        const FrameTrack *track =
            track_it != frames.end() ? &track_it->second : nullptr;
        for (long k = 0; k < inst.duration; ++k) {
            const long ts = inst.startTime + k;
            if (ts >= duration)
                break;
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            // In the transmon's own rotating frame a drive at
            // omega_drive couples through a^dag with phase
            // e^{+i (omega_own - omega_drive) t} = e^{+i detuning t}.
            const double frame = track ? track->at(ts) : 0.0;
            const Complex value =
                inst.waveform->sample(k) *
                std::exp(Complex{0.0, frame + detuning * t_mid});
            // Last line of defence under the validation gate: a
            // NaN/Inf sample would otherwise poison the quantized
            // propagator-cache key (llround on NaN is undefined) and
            // every eigendecomposition derived from it.
            if (!std::isfinite(value.real()) ||
                !std::isfinite(value.imag()))
                throw StatusError(Status::error(
                    ErrorCode::NonFiniteSample,
                    "non-finite drive sample on " +
                        inst.channel.toString() + " at t=" +
                        std::to_string(ts) +
                        " reached the simulator; validate the "
                        "schedule (device/schedule_validation.h)"));
            drives[transmon][static_cast<std::size_t>(ts)] += value;
        }
    }

    if (frame_out) {
        frame_out->assign(model_.numTransmons(), 0.0);
        for (const auto &inst : schedule.instructions())
            if (inst.kind == PulseInstructionKind::ShiftPhase &&
                inst.channel.kind == ChannelKind::Drive)
                (*frame_out)[inst.channel.index] += inst.phase;
    }
    return drives;
}

PropagatorKey
PulseSimulator::makeKey(const std::vector<Complex> &drives,
                        double t_mid_ns) const
{
    PropagatorKey key;
    key.words.reserve(2 * drives.size() + (hasCoupling_ ? 2 : 0));
    const auto quantize = [](double x) {
        return static_cast<std::int64_t>(
            std::llround(x / kDriveQuantum));
    };
    for (const Complex &d : drives) {
        key.words.push_back(quantize(d.real()));
        key.words.push_back(quantize(d.imag()));
    }
    if (hasCoupling_) {
        // The coupling term rotates at the qubit-qubit detuning, so
        // the sample time enters the Hamiltonian only through this
        // phase; keying on it makes time-dependence explicit.
        const Complex phase =
            std::exp(Complex{0.0, couplingDetuning_ * t_mid_ns});
        key.words.push_back(quantize(phase.real()));
        key.words.push_back(quantize(phase.imag()));
    }
    return key;
}

std::vector<PulseSimulator::DriveStep>
PulseSimulator::compileSteps(
    const std::vector<std::vector<Complex>> &drives,
    long duration) const
{
    std::vector<DriveStep> steps;
    std::vector<Complex> sample(model_.numTransmons());
    for (long ts = 0; ts < duration; ++ts) {
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            sample[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        PropagatorKey key = makeKey(sample, t_mid);
        if (!steps.empty() && steps.back().key == key) {
            ++steps.back().count;
            continue;
        }
        steps.push_back(
            DriveStep{std::move(key), sample, t_mid, 1});
    }
    return steps;
}

Matrix
PulseSimulator::stepUnitary(const DriveStep &step,
                            PropagatorCache *cache) const
{
    if (!cache)
        return stepPropagator(step.tMidNs, step.drives);
    return cache->getOrCompute(step.key, [this, &step] {
        return stepPropagator(step.tMidNs, step.drives);
    });
}

PropagatorCache *
PulseSimulator::activeCache(
    std::unique_ptr<PropagatorCache> &local) const
{
    if (!cachingEnabled_)
        return nullptr;
    if (cache_)
        return cache_.get();
    local = std::make_unique<PropagatorCache>();
    return local.get();
}

Matrix
PulseSimulator::stepPropagator(double t_mid_ns,
                               const std::vector<Complex> &drives) const
{
    Matrix h = staticH_;
    bool any_drive = false;
    for (std::size_t j = 0; j < drives.size(); ++j) {
        if (drives[j] == Complex{0.0, 0.0})
            continue;
        any_drive = true;
        const Matrix term = raising_[j] * drives[j];
        h += term + term.adjoint();
    }
    if (hasCoupling_) {
        const Complex phase =
            std::exp(Complex{0.0, couplingDetuning_ * t_mid_ns});
        const Matrix term = couplingOp_ * phase;
        h += term + term.adjoint();
    }
    if (!any_drive && !hasCoupling_) {
        // Diagonal fast path: free evolution under the static part.
        std::vector<Complex> phases(model_.dim());
        for (std::size_t idx = 0; idx < model_.dim(); ++idx)
            phases[idx] = std::exp(
                Complex{0.0, -staticH_(idx, idx).real() * kDtNs});
        return Matrix::diagonal(phases);
    }
    return expMinusIHt(h, kDtNs);
}

UnitaryResult
PulseSimulator::evolveUnitary(const Schedule &schedule) const
{
    telemetry::TraceSpan span("sim.evolve_unitary");
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter(
            "sim.evolve_unitary.calls");
    const long duration = schedule.duration();
    countEvolve(c_calls, duration);
    UnitaryResult result;
    result.duration = duration;
    std::vector<double> frames;
    const auto drives = buildDriveTimeline(schedule, duration, &frames);
    result.framePhase = frames;

    Matrix u = Matrix::identity(model_.dim());
    if (cachingEnabled_) {
        std::unique_ptr<PropagatorCache> local;
        PropagatorCache *cache = activeCache(local);
        for (const DriveStep &step : compileSteps(drives, duration))
            u = matrixPower(stepUnitary(step, cache), step.count) * u;
    } else {
        // Legacy exact path: one propagator per AWG sample.
        std::vector<Complex> step_drives(model_.numTransmons());
        for (long ts = 0; ts < duration; ++ts) {
            for (std::size_t j = 0; j < model_.numTransmons(); ++j)
                step_drives[j] =
                    drives[j][static_cast<std::size_t>(ts)];
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            u = stepPropagator(t_mid, step_drives) * u;
        }
    }
    result.unitary = std::move(u);
    return result;
}

Matrix
PulseSimulator::effectiveUnitary(const UnitaryResult &result) const
{
    // A pulse played with frame phase phi acts as
    // exp(i phi n) U_pulse exp(-i phi n), so a schedule whose frames
    // accumulate to phi satisfies U_raw = exp(i phi n) U_logical, i.e.
    // the logical (compiler-intended) unitary is recovered by applying
    // exp(-i phi n) on the left.
    Matrix correction = Matrix::identity(model_.dim());
    for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
        const double phi = result.framePhase[j];
        if (phi == 0.0)
            continue;
        std::vector<Complex> phases(model_.dim());
        const Matrix n = model_.number(j);
        for (std::size_t idx = 0; idx < model_.dim(); ++idx)
            phases[idx] =
                std::exp(Complex{0.0, -phi * n(idx, idx).real()});
        correction = Matrix::diagonal(phases) * correction;
    }
    return correction * result.unitary;
}

Vector
PulseSimulator::evolveState(const Schedule &schedule,
                            const Vector &initial) const
{
    qpulseRequire(initial.size() == model_.dim(),
                  "evolveState dimension mismatch");
    telemetry::TraceSpan span("sim.evolve_state");
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter(
            "sim.evolve_state.calls");
    const long duration = schedule.duration();
    countEvolve(c_calls, duration);
    const auto drives = buildDriveTimeline(schedule, duration, nullptr);

    Vector state = initial;
    if (cachingEnabled_) {
        std::unique_ptr<PropagatorCache> local;
        PropagatorCache *cache = activeCache(local);
        for (const DriveStep &step : compileSteps(drives, duration)) {
            const Matrix u = stepUnitary(step, cache);
            // Long runs (idle stretches, flat-tops): binary powering
            // costs log2(count) matmuls instead of count matvecs.
            if (step.count >= 8) {
                state = matrixPower(u, step.count).apply(state);
            } else {
                for (long k = 0; k < step.count; ++k)
                    state = u.apply(state);
            }
        }
        return state;
    }
    std::vector<Complex> step_drives(model_.numTransmons());
    for (long ts = 0; ts < duration; ++ts) {
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            step_drives[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        state = stepPropagator(t_mid, step_drives).apply(state);
    }
    return state;
}

Matrix
PulseSimulator::evolveLindblad(const Schedule &schedule,
                               const Matrix &rho0) const
{
    qpulseRequire(rho0.rows() == model_.dim() &&
                      rho0.cols() == model_.dim(),
                  "evolveLindblad dimension mismatch");
    telemetry::TraceSpan span("sim.evolve_lindblad");
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter(
            "sim.evolve_lindblad.calls");
    const long duration = schedule.duration();
    countEvolve(c_calls, duration);
    const auto drives = buildDriveTimeline(schedule, duration, nullptr);

    // Precompute per-transmon decay rates (per ns).
    std::vector<double> gamma1(model_.numTransmons());
    std::vector<double> gamma_phi(model_.numTransmons());
    for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
        const auto &params = model_.qubit(j);
        const double t1_ns = params.t1Us * 1000.0;
        const double t2_ns = params.t2Us * 1000.0;
        gamma1[j] = 1.0 / t1_ns;
        gamma_phi[j] = std::max(0.0, 1.0 / t2_ns - 0.5 / t1_ns);
    }

    // Decompose a full-space index into per-transmon levels.
    const std::size_t levels = model_.levels();
    auto level_of = [&](std::size_t index, std::size_t j) {
        std::size_t divisor = 1;
        for (std::size_t k = model_.numTransmons(); k-- > j + 1;)
            divisor *= levels;
        return (index / divisor) % levels;
    };

    // The damping factors are schedule-independent, so hoist them out
    // of the sample loop: per transmon a dim x dim matrix of coherence
    // decay factors, the n -> n-1 transfer coefficients, and the
    // lowered index. Applying them per sample is then exp-free.
    const std::size_t dim = model_.dim();
    std::vector<std::vector<double>> decay_factor(
        model_.numTransmons(), std::vector<double>(dim * dim));
    std::vector<std::vector<double>> transfer_coef(
        model_.numTransmons(), std::vector<double>(dim, 0.0));
    std::vector<std::vector<std::size_t>> lower_index(
        model_.numTransmons(), std::vector<std::size_t>(dim, 0));
    for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
        const double g1 = gamma1[j] * kDtNs;
        const double gp = gamma_phi[j] * kDtNs;
        for (std::size_t r = 0; r < dim; ++r) {
            const double nr = static_cast<double>(level_of(r, j));
            for (std::size_t c = 0; c < dim; ++c) {
                const double nc =
                    static_cast<double>(level_of(c, j));
                const double relax = g1 * (nr + nc) / 2.0;
                const double diff = nr - nc;
                const double dephase = gp * diff * diff;
                decay_factor[j][r * dim + c] =
                    std::exp(-(relax + dephase));
            }
            const std::size_t n = level_of(r, j);
            if (n == 0)
                continue;
            std::size_t divisor = 1;
            for (std::size_t k = model_.numTransmons(); k-- > j + 1;)
                divisor *= levels;
            lower_index[j][r] = r - divisor;
            transfer_coef[j][r] =
                std::expm1(static_cast<double>(n) * g1);
        }
    }

    // Operator-split decoherence for one dt: coherence decay followed
    // by the trace-preserving population transfer n -> n-1 (the
    // diagonal decay removed exactly exp(-n g1 dt) from rho(r,r)).
    const auto apply_decoherence = [&](Matrix &rho) {
        for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
            const std::vector<double> &factor = decay_factor[j];
            for (std::size_t r = 0; r < dim; ++r)
                for (std::size_t c = 0; c < dim; ++c)
                    rho(r, c) *= factor[r * dim + c];
            for (std::size_t r = 0; r < dim; ++r) {
                if (transfer_coef[j][r] == 0.0)
                    continue;
                const double transfer =
                    transfer_coef[j][r] * rho(r, r).real();
                rho(lower_index[j][r], lower_index[j][r]) +=
                    Complex{transfer, 0.0};
            }
        }
    };

    Matrix rho = rho0;
    if (cachingEnabled_) {
        std::unique_ptr<PropagatorCache> local;
        PropagatorCache *cache = activeCache(local);
        for (const DriveStep &step : compileSteps(drives, duration)) {
            // The decoherence split interleaves with every sample, so
            // runs reuse the propagator but still step sample-wise.
            const Matrix u = stepUnitary(step, cache);
            const Matrix u_dag = u.adjoint();
            for (long k = 0; k < step.count; ++k) {
                rho = u * rho * u_dag;
                apply_decoherence(rho);
            }
        }
        return rho;
    }
    std::vector<Complex> step_drives(model_.numTransmons());
    for (long ts = 0; ts < duration; ++ts) {
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            step_drives[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        const Matrix u = stepPropagator(t_mid, step_drives);
        rho = u * rho * u.adjoint();
        apply_decoherence(rho);
    }
    return rho;
}

std::vector<double>
PulseSimulator::populations(const Vector &state) const
{
    std::vector<double> pops(state.size());
    for (std::size_t i = 0; i < state.size(); ++i)
        pops[i] = std::norm(state[i]);
    return pops;
}

} // namespace qpulse
