#include "pulsesim/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "linalg/eigen.h"

namespace qpulse {

PulseSimulator::PulseSimulator(TransmonModel model)
    : model_(std::move(model))
{
    staticH_ = model_.staticHamiltonian();
    for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
        const double omega =
            2.0 * kPi * model_.qubit(j).driveStrengthGhz;
        raising_.push_back(model_.lowering(j).adjoint() *
                           Complex{omega / 2.0, 0.0});
    }
    if (model_.coupling()) {
        const auto &coupling = *model_.coupling();
        const double j_rad = 2.0 * kPi * coupling.strengthGhz;
        couplingOp_ = model_.lowering(coupling.qubitA).adjoint() *
                      model_.lowering(coupling.qubitB) *
                      Complex{j_rad, 0.0};
        couplingDetuning_ =
            2.0 * kPi * (model_.qubit(coupling.qubitA).frequencyGhz -
                         model_.qubit(coupling.qubitB).frequencyGhz);
        hasCoupling_ = true;
    }
}

void
PulseSimulator::setControlChannel(std::size_t index,
                                  const ControlChannelSpec &spec)
{
    qpulseRequire(spec.driveTransmon < model_.numTransmons(),
                  "control channel drives an unknown transmon");
    controlChannels_[index] = spec;
}

std::vector<std::vector<Complex>>
PulseSimulator::buildDriveTimeline(const Schedule &schedule, long duration,
                                   std::vector<double> *frame_out) const
{
    std::vector<std::vector<Complex>> drives(
        model_.numTransmons(),
        std::vector<Complex>(static_cast<std::size_t>(duration),
                             Complex{0.0, 0.0}));

    // Per-channel phase/frequency event lists.
    struct PhaseEvent { long time; double phase; };
    struct FreqEvent { long time; double freqGhz; };
    std::map<Channel, std::vector<PhaseEvent>> phase_events;
    std::map<Channel, std::vector<FreqEvent>> freq_events;
    for (const auto &inst : schedule.instructions()) {
        if (inst.kind == PulseInstructionKind::ShiftPhase)
            phase_events[inst.channel].push_back(
                {inst.startTime, inst.phase});
        else if (inst.kind == PulseInstructionKind::ShiftFrequency)
            freq_events[inst.channel].push_back(
                {inst.startTime, inst.frequencyGhz});
    }
    for (auto &entry : phase_events)
        std::sort(entry.second.begin(), entry.second.end(),
                  [](const PhaseEvent &a, const PhaseEvent &b) {
                      return a.time < b.time;
                  });
    for (auto &entry : freq_events)
        std::sort(entry.second.begin(), entry.second.end(),
                  [](const FreqEvent &a, const FreqEvent &b) {
                      return a.time < b.time;
                  });

    auto frame_at = [&](const Channel &channel, long t) {
        double phase = 0.0;
        const auto it = phase_events.find(channel);
        if (it != phase_events.end())
            for (const auto &event : it->second)
                if (event.time <= t)
                    phase += event.phase;
        const auto fit = freq_events.find(channel);
        if (fit != freq_events.end())
            for (const auto &event : fit->second)
                if (event.time <= t)
                    phase -= 2.0 * kPi * event.freqGhz *
                             static_cast<double>(t - event.time) * kDtNs;
        return phase;
    };

    for (const auto &inst : schedule.instructions()) {
        if (inst.kind != PulseInstructionKind::Play)
            continue;

        std::size_t transmon;
        double detuning = 0.0;
        if (inst.channel.kind == ChannelKind::Drive) {
            transmon = inst.channel.index;
            qpulseRequire(transmon < model_.numTransmons(),
                          "schedule drives transmon ", transmon,
                          " outside the ", model_.numTransmons(),
                          "-transmon model");
        } else if (inst.channel.kind == ChannelKind::Control) {
            const auto it = controlChannels_.find(inst.channel.index);
            qpulseRequire(it != controlChannels_.end(),
                          "unmapped control channel u",
                          inst.channel.index);
            transmon = it->second.driveTransmon;
            detuning = it->second.detuningRadPerNs;
        } else {
            continue; // Measurement stimulus does not drive qubits.
        }

        for (long k = 0; k < inst.duration; ++k) {
            const long ts = inst.startTime + k;
            if (ts >= duration)
                break;
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            // In the transmon's own rotating frame a drive at
            // omega_drive couples through a^dag with phase
            // e^{+i (omega_own - omega_drive) t} = e^{+i detuning t}.
            const double frame = frame_at(inst.channel, ts);
            const Complex value =
                inst.waveform->sample(k) *
                std::exp(Complex{0.0, frame + detuning * t_mid});
            drives[transmon][static_cast<std::size_t>(ts)] += value;
        }
    }

    if (frame_out) {
        frame_out->assign(model_.numTransmons(), 0.0);
        for (const auto &inst : schedule.instructions())
            if (inst.kind == PulseInstructionKind::ShiftPhase &&
                inst.channel.kind == ChannelKind::Drive)
                (*frame_out)[inst.channel.index] += inst.phase;
    }
    return drives;
}

Matrix
PulseSimulator::stepPropagator(double t_mid_ns,
                               const std::vector<Complex> &drives) const
{
    Matrix h = staticH_;
    bool any_drive = false;
    for (std::size_t j = 0; j < drives.size(); ++j) {
        if (drives[j] == Complex{0.0, 0.0})
            continue;
        any_drive = true;
        const Matrix term = raising_[j] * drives[j];
        h += term + term.adjoint();
    }
    if (hasCoupling_) {
        const Complex phase =
            std::exp(Complex{0.0, couplingDetuning_ * t_mid_ns});
        const Matrix term = couplingOp_ * phase;
        h += term + term.adjoint();
    }
    if (!any_drive && !hasCoupling_) {
        // Diagonal fast path: free evolution under the static part.
        std::vector<Complex> phases(model_.dim());
        for (std::size_t idx = 0; idx < model_.dim(); ++idx)
            phases[idx] = std::exp(
                Complex{0.0, -staticH_(idx, idx).real() * kDtNs});
        return Matrix::diagonal(phases);
    }
    return expMinusIHt(h, kDtNs);
}

UnitaryResult
PulseSimulator::evolveUnitary(const Schedule &schedule) const
{
    const long duration = schedule.duration();
    UnitaryResult result;
    result.duration = duration;
    std::vector<double> frames;
    const auto drives = buildDriveTimeline(schedule, duration, &frames);
    result.framePhase = frames;

    Matrix u = Matrix::identity(model_.dim());
    for (long ts = 0; ts < duration; ++ts) {
        std::vector<Complex> step_drives(model_.numTransmons());
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            step_drives[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        u = stepPropagator(t_mid, step_drives) * u;
    }
    result.unitary = std::move(u);
    return result;
}

Matrix
PulseSimulator::effectiveUnitary(const UnitaryResult &result) const
{
    // A pulse played with frame phase phi acts as
    // exp(i phi n) U_pulse exp(-i phi n), so a schedule whose frames
    // accumulate to phi satisfies U_raw = exp(i phi n) U_logical, i.e.
    // the logical (compiler-intended) unitary is recovered by applying
    // exp(-i phi n) on the left.
    Matrix correction = Matrix::identity(model_.dim());
    for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
        const double phi = result.framePhase[j];
        if (phi == 0.0)
            continue;
        std::vector<Complex> phases(model_.dim());
        const Matrix n = model_.number(j);
        for (std::size_t idx = 0; idx < model_.dim(); ++idx)
            phases[idx] =
                std::exp(Complex{0.0, -phi * n(idx, idx).real()});
        correction = Matrix::diagonal(phases) * correction;
    }
    return correction * result.unitary;
}

Vector
PulseSimulator::evolveState(const Schedule &schedule,
                            const Vector &initial) const
{
    qpulseRequire(initial.size() == model_.dim(),
                  "evolveState dimension mismatch");
    const long duration = schedule.duration();
    const auto drives = buildDriveTimeline(schedule, duration, nullptr);

    Vector state = initial;
    for (long ts = 0; ts < duration; ++ts) {
        std::vector<Complex> step_drives(model_.numTransmons());
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            step_drives[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        state = stepPropagator(t_mid, step_drives).apply(state);
    }
    return state;
}

Matrix
PulseSimulator::evolveLindblad(const Schedule &schedule,
                               const Matrix &rho0) const
{
    qpulseRequire(rho0.rows() == model_.dim() &&
                      rho0.cols() == model_.dim(),
                  "evolveLindblad dimension mismatch");
    const long duration = schedule.duration();
    const auto drives = buildDriveTimeline(schedule, duration, nullptr);

    // Precompute per-transmon decay rates (per ns).
    std::vector<double> gamma1(model_.numTransmons());
    std::vector<double> gamma_phi(model_.numTransmons());
    for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
        const auto &params = model_.qubit(j);
        const double t1_ns = params.t1Us * 1000.0;
        const double t2_ns = params.t2Us * 1000.0;
        gamma1[j] = 1.0 / t1_ns;
        gamma_phi[j] = std::max(0.0, 1.0 / t2_ns - 0.5 / t1_ns);
    }

    // Decompose a full-space index into per-transmon levels.
    const std::size_t levels = model_.levels();
    auto level_of = [&](std::size_t index, std::size_t j) {
        std::size_t divisor = 1;
        for (std::size_t k = model_.numTransmons(); k-- > j + 1;)
            divisor *= levels;
        return (index / divisor) % levels;
    };

    Matrix rho = rho0;
    const std::size_t dim = model_.dim();
    for (long ts = 0; ts < duration; ++ts) {
        std::vector<Complex> step_drives(model_.numTransmons());
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            step_drives[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        const Matrix u = stepPropagator(t_mid, step_drives);
        rho = u * rho * u.adjoint();

        // Operator-split decoherence for one dt.
        for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
            const double g1 = gamma1[j] * kDtNs;
            const double gp = gamma_phi[j] * kDtNs;
            // Coherence decay.
            for (std::size_t r = 0; r < dim; ++r) {
                const double nr =
                    static_cast<double>(level_of(r, j));
                for (std::size_t c = 0; c < dim; ++c) {
                    const double nc =
                        static_cast<double>(level_of(c, j));
                    const double relax = g1 * (nr + nc) / 2.0;
                    const double diff = nr - nc;
                    const double dephase = gp * diff * diff;
                    rho(r, c) *= std::exp(-(relax + dephase));
                }
            }
            // Population transfer n -> n-1. The diagonal decay above
            // removed a factor exp(-n g1 dt) from rho(r,r); move
            // exactly that probability to the level below so the
            // trace is preserved to machine precision.
            for (std::size_t r = 0; r < dim; ++r) {
                const std::size_t n = level_of(r, j);
                if (n == 0)
                    continue;
                // Index with transmon j one level lower.
                std::size_t divisor = 1;
                for (std::size_t k = model_.numTransmons(); k-- > j + 1;)
                    divisor *= levels;
                const std::size_t lower = r - divisor;
                const double transfer =
                    std::expm1(static_cast<double>(n) * g1) *
                    rho(r, r).real();
                rho(lower, lower) += Complex{transfer, 0.0};
            }
        }
    }
    return rho;
}

std::vector<double>
PulseSimulator::populations(const Vector &state) const
{
    std::vector<double> pops(state.size());
    for (std::size_t i = 0; i < state.size(); ++i)
        pops[i] = std::norm(state[i]);
    return pops;
}

} // namespace qpulse
