#include "pulsesim/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/constants.h"
#include "common/status.h"
#include "linalg/eigen.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

namespace {

/** Work counters for one evolve call (thread-count invariant). */
void
countEvolve(telemetry::Counter &calls, long duration)
{
    static telemetry::Counter &c_samples =
        telemetry::MetricsRegistry::global().counter("sim.samples");
    calls.increment();
    c_samples.add(static_cast<std::uint64_t>(
        duration >= 0 ? duration : 0));
}

/** FNV-1a step over the bit pattern of one double. */
std::uint64_t
fnvMixDouble(std::uint64_t h, double x)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    h ^= bits;
    h *= 0x100000001B3ull;
    return h;
}

/** Fold a matrix's shape and every entry into the fingerprint. */
std::uint64_t
fnvMixMatrix(std::uint64_t h, const Matrix &m)
{
    h = fnvMixDouble(h, static_cast<double>(m.rows()));
    h = fnvMixDouble(h, static_cast<double>(m.cols()));
    for (const Complex &z : m.data()) {
        h = fnvMixDouble(h, z.real());
        h = fnvMixDouble(h, z.imag());
    }
    return h;
}

/**
 * Per-channel frame-phase lookup in O(log events): sorted event times
 * with prefix sums. Replaces the per-sample linear rescan of every
 * ShiftPhase/ShiftFrequency event (quadratic in schedule size).
 *
 * The frequency-shift contribution at sample t is
 *   -2 pi dt * sum_{e: t_e <= t} f_e (t - t_e)
 *     = -2 pi dt * (t * sum f_e  -  sum f_e t_e),
 * so two prefix sums make each lookup O(1) after the binary search.
 */
struct FrameTrack
{
    std::vector<long> phaseTimes;
    std::vector<double> phasePrefix;
    std::vector<long> freqTimes;
    std::vector<double> freqPrefix;     ///< Cumulative sum of f_e.
    std::vector<double> freqTimePrefix; ///< Cumulative sum of f_e t_e.

    double at(long t) const
    {
        double phase = 0.0;
        const auto pit = std::upper_bound(phaseTimes.begin(),
                                          phaseTimes.end(), t);
        if (pit != phaseTimes.begin())
            phase += phasePrefix[static_cast<std::size_t>(
                pit - phaseTimes.begin() - 1)];
        const auto fit = std::upper_bound(freqTimes.begin(),
                                          freqTimes.end(), t);
        if (fit != freqTimes.begin()) {
            const std::size_t k = static_cast<std::size_t>(
                fit - freqTimes.begin() - 1);
            phase -= 2.0 * kPi * kDtNs *
                     (static_cast<double>(t) * freqPrefix[k] -
                      freqTimePrefix[k]);
        }
        return phase;
    }

    /**
     * Decompose the frame phase at sample t into an affine function of
     * the sample midpoint: frame(t) = static + rate * t_mid. Between
     * events both parts are constant in t, which is what lets the step
     * kernel's identical-modulation fast path recognize runs whose
     * baked drive value rotates sample to sample. Derivation from
     * at(): with t * kDtNs = t_mid - kDtNs / 2,
     *   frame(t) = phasePrefix - 2 pi kDtNs (t F - FT)
     *            = [phasePrefix + 2 pi kDtNs FT + pi F kDtNs]
     *              + (-2 pi F) t_mid.
     */
    void split(long t, double &static_part, double &rate) const
    {
        static_part = 0.0;
        rate = 0.0;
        const auto pit = std::upper_bound(phaseTimes.begin(),
                                          phaseTimes.end(), t);
        if (pit != phaseTimes.begin())
            static_part += phasePrefix[static_cast<std::size_t>(
                pit - phaseTimes.begin() - 1)];
        const auto fit = std::upper_bound(freqTimes.begin(),
                                          freqTimes.end(), t);
        if (fit != freqTimes.begin()) {
            const std::size_t k = static_cast<std::size_t>(
                fit - freqTimes.begin() - 1);
            static_part += 2.0 * kPi * kDtNs * freqTimePrefix[k] +
                           kPi * kDtNs * freqPrefix[k];
            rate -= 2.0 * kPi * freqPrefix[k];
        }
    }
};

} // namespace

PulseSimulator::PulseSimulator(TransmonModel model)
    : model_(std::move(model))
{
    staticH_ = model_.staticHamiltonian();
    for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
        const double omega =
            2.0 * kPi * model_.qubit(j).driveStrengthGhz;
        raising_.push_back(model_.lowering(j).adjoint() *
                           Complex{omega / 2.0, 0.0});
    }
    if (model_.coupling()) {
        const auto &coupling = *model_.coupling();
        const double j_rad = 2.0 * kPi * coupling.strengthGhz;
        couplingOp_ = model_.lowering(coupling.qubitA).adjoint() *
                      model_.lowering(coupling.qubitB) *
                      Complex{j_rad, 0.0};
        couplingDetuning_ =
            2.0 * kPi * (model_.qubit(coupling.qubitA).frequencyGhz -
                         model_.qubit(coupling.qubitB).frequencyGhz);
        hasCoupling_ = true;
        couplingA_ = coupling.qubitA;
        couplingB_ = coupling.qubitB;
    }

    // Drift-frame prediagonalization: the static Hamiltonian is fixed
    // per model, so diagonalize it exactly once and pre-rotate every
    // drive/coupling operator into its eigenbasis. The per-sample
    // kernel then never touches H0 beyond adding a real diagonal.
    const std::size_t dim = model_.dim();
    driftDiagonal_ = true;
    for (std::size_t r = 0; r < dim && driftDiagonal_; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            if (r != c && staticH_(r, c) != Complex{0.0, 0.0}) {
                driftDiagonal_ = false;
                break;
            }
    if (driftDiagonal_) {
        // Transmon models produce a diagonal H0 (anharmonicity only);
        // keep the natural basis order so the drift kernel's free-
        // evolution path matches the legacy diagonal fast path exactly.
        driftValues_.resize(dim);
        for (std::size_t i = 0; i < dim; ++i)
            driftValues_[i] = staticH_(i, i).real();
        driftVectors_ = Matrix::identity(dim);
        raisingDrift_ = raising_;
        couplingOpDrift_ = couplingOp_;
        // Generator building blocks for the identical-modulation fast
        // path: number operators are diagonal in the natural (= drift)
        // basis.
        occupations_.resize(model_.numTransmons());
        for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
            const Matrix n_j = model_.number(j);
            occupations_[j].resize(dim);
            for (std::size_t i = 0; i < dim; ++i)
                occupations_[j][i] = n_j(i, i).real();
        }
    } else {
        const EigenSystem es = eigHermitian(staticH_);
        driftValues_ = es.values;
        driftVectors_ = es.vectors;
        const Matrix v0dag = driftVectors_.adjoint();
        raisingDrift_.reserve(raising_.size());
        for (const Matrix &op : raising_)
            raisingDrift_.push_back(v0dag * op * driftVectors_);
        if (hasCoupling_)
            couplingOpDrift_ = v0dag * couplingOp_ * driftVectors_;
    }

    // Fingerprint of everything the prediagonalization consumed. Mixed
    // into every PropagatorKey so recalibration (a new simulator over
    // changed model parameters) can never hit propagators cached under
    // a stale basis, even when the caller keeps sharing one cache.
    std::uint64_t h = 0xCBF29CE484222325ull;
    h = fnvMixMatrix(h, staticH_);
    for (const Matrix &op : raising_)
        h = fnvMixMatrix(h, op);
    if (hasCoupling_) {
        h = fnvMixMatrix(h, couplingOp_);
        h = fnvMixDouble(h, couplingDetuning_);
    }
    basisVersion_ = h;
}

void
PulseSimulator::setControlChannel(std::size_t index,
                                  const ControlChannelSpec &spec)
{
    qpulseRequire(spec.driveTransmon < model_.numTransmons(),
                  "control channel drives an unknown transmon");
    controlChannels_[index] = spec;
}

std::vector<std::vector<Complex>>
PulseSimulator::buildDriveTimeline(const Schedule &schedule, long duration,
                                   std::vector<double> *frame_out,
                                   DriveModulation *mod_out) const
{
    std::vector<std::vector<Complex>> drives(
        model_.numTransmons(),
        std::vector<Complex>(static_cast<std::size_t>(duration),
                             Complex{0.0, 0.0}));
    if (mod_out) {
        mod_out->env.assign(
            model_.numTransmons(),
            std::vector<Complex>(static_cast<std::size_t>(duration),
                                 Complex{0.0, 0.0}));
        mod_out->rate.assign(
            model_.numTransmons(),
            std::vector<double>(static_cast<std::size_t>(duration),
                                0.0));
    }

    // Per-channel phase/frequency events, sorted once and folded into
    // prefix sums so the per-sample frame lookup is O(log events).
    struct PhaseEvent { long time; double phase; };
    struct FreqEvent { long time; double freqGhz; };
    std::map<Channel, std::vector<PhaseEvent>> phase_events;
    std::map<Channel, std::vector<FreqEvent>> freq_events;
    for (const auto &inst : schedule.instructions()) {
        if (inst.kind == PulseInstructionKind::ShiftPhase)
            phase_events[inst.channel].push_back(
                {inst.startTime, inst.phase});
        else if (inst.kind == PulseInstructionKind::ShiftFrequency)
            freq_events[inst.channel].push_back(
                {inst.startTime, inst.frequencyGhz});
    }

    std::map<Channel, FrameTrack> frames;
    for (auto &entry : phase_events) {
        std::sort(entry.second.begin(), entry.second.end(),
                  [](const PhaseEvent &a, const PhaseEvent &b) {
                      return a.time < b.time;
                  });
        FrameTrack &track = frames[entry.first];
        double total = 0.0;
        for (const auto &event : entry.second) {
            total += event.phase;
            track.phaseTimes.push_back(event.time);
            track.phasePrefix.push_back(total);
        }
    }
    for (auto &entry : freq_events) {
        std::sort(entry.second.begin(), entry.second.end(),
                  [](const FreqEvent &a, const FreqEvent &b) {
                      return a.time < b.time;
                  });
        FrameTrack &track = frames[entry.first];
        double f_total = 0.0, ft_total = 0.0;
        for (const auto &event : entry.second) {
            f_total += event.freqGhz;
            ft_total += event.freqGhz * static_cast<double>(event.time);
            track.freqTimes.push_back(event.time);
            track.freqPrefix.push_back(f_total);
            track.freqTimePrefix.push_back(ft_total);
        }
    }

    for (const auto &inst : schedule.instructions()) {
        if (inst.kind != PulseInstructionKind::Play)
            continue;

        std::size_t transmon;
        double detuning = 0.0;
        if (inst.channel.kind == ChannelKind::Drive) {
            transmon = inst.channel.index;
            qpulseRequire(transmon < model_.numTransmons(),
                          "schedule drives transmon ", transmon,
                          " outside the ", model_.numTransmons(),
                          "-transmon model");
        } else if (inst.channel.kind == ChannelKind::Control) {
            const auto it = controlChannels_.find(inst.channel.index);
            qpulseRequire(it != controlChannels_.end(),
                          "unmapped control channel u",
                          inst.channel.index);
            transmon = it->second.driveTransmon;
            detuning = it->second.detuningRadPerNs;
        } else {
            continue; // Measurement stimulus does not drive qubits.
        }

        const auto track_it = frames.find(inst.channel);
        const FrameTrack *track =
            track_it != frames.end() ? &track_it->second : nullptr;
        for (long k = 0; k < inst.duration; ++k) {
            const long ts = inst.startTime + k;
            if (ts >= duration)
                break;
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            // In the transmon's own rotating frame a drive at
            // omega_drive couples through a^dag with phase
            // e^{+i (omega_own - omega_drive) t} = e^{+i detuning t}.
            const double frame = track ? track->at(ts) : 0.0;
            const Complex value =
                inst.waveform->sample(k) *
                std::exp(Complex{0.0, frame + detuning * t_mid});
            // Last line of defence under the validation gate: a
            // NaN/Inf sample would otherwise poison the quantized
            // propagator-cache key (llround on NaN is undefined) and
            // every eigendecomposition derived from it.
            if (!std::isfinite(value.real()) ||
                !std::isfinite(value.imag()))
                throw StatusError(Status::error(
                    ErrorCode::NonFiniteSample,
                    "non-finite drive sample on " +
                        inst.channel.toString() + " at t=" +
                        std::to_string(ts) +
                        " reached the simulator; validate the "
                        "schedule (device/schedule_validation.h)"));
            drives[transmon][static_cast<std::size_t>(ts)] += value;

            // Envelope/rate view of the same sample: the phase above
            // is static + rate * t_mid with the static part constant
            // between frame events, so flat-top samples share one
            // bitwise (env, rate) pair even when `value` rotates.
            if (mod_out) {
                double static_part = 0.0;
                double frame_rate = 0.0;
                if (track)
                    track->split(ts, static_part, frame_rate);
                const double rate = frame_rate + detuning;
                const Complex env =
                    inst.waveform->sample(k) *
                    std::exp(Complex{0.0, static_part});
                Complex &env_acc =
                    mod_out->env[transmon][static_cast<std::size_t>(ts)];
                double &rate_acc =
                    mod_out
                        ->rate[transmon][static_cast<std::size_t>(ts)];
                if (env_acc == Complex{0.0, 0.0}) {
                    env_acc = env;
                    rate_acc = rate;
                } else if (rate_acc == rate) {
                    env_acc += env;
                } else {
                    // Overlapping plays at different rates: no single
                    // d = env exp(i rate t) decomposition exists. NaN
                    // never compares equal, so the sample can neither
                    // start nor extend a run.
                    rate_acc =
                        std::numeric_limits<double>::quiet_NaN();
                }
            }
        }
    }

    if (frame_out) {
        frame_out->assign(model_.numTransmons(), 0.0);
        for (const auto &inst : schedule.instructions())
            if (inst.kind == PulseInstructionKind::ShiftPhase &&
                inst.channel.kind == ChannelKind::Drive)
                (*frame_out)[inst.channel.index] += inst.phase;
    }
    return drives;
}

PropagatorKey
PulseSimulator::makeKey(const std::vector<Complex> &drives,
                        double t_mid_ns) const
{
    PropagatorKey key;
    key.words.reserve(1 + 2 * drives.size() + (hasCoupling_ ? 2 : 0));
    // The basis fingerprint leads every key: two simulators sharing a
    // cache but prediagonalized over different model parameters can
    // never exchange propagators.
    key.words.push_back(static_cast<std::int64_t>(basisVersion_));
    const auto quantize = [](double x) {
        return static_cast<std::int64_t>(
            std::llround(x / kDriveQuantum));
    };
    for (const Complex &d : drives) {
        key.words.push_back(quantize(d.real()));
        key.words.push_back(quantize(d.imag()));
    }
    if (hasCoupling_) {
        // The coupling term rotates at the qubit-qubit detuning, so
        // the sample time enters the Hamiltonian only through this
        // phase; keying on it makes time-dependence explicit.
        const Complex phase =
            std::exp(Complex{0.0, couplingDetuning_ * t_mid_ns});
        key.words.push_back(quantize(phase.real()));
        key.words.push_back(quantize(phase.imag()));
    }
    return key;
}

std::vector<PulseSimulator::DriveStep>
PulseSimulator::compileSteps(
    const std::vector<std::vector<Complex>> &drives,
    long duration) const
{
    std::vector<DriveStep> steps;
    std::vector<Complex> sample(model_.numTransmons());
    for (long ts = 0; ts < duration; ++ts) {
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            sample[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        PropagatorKey key = makeKey(sample, t_mid);
        if (!steps.empty() && steps.back().key == key) {
            ++steps.back().count;
            continue;
        }
        steps.push_back(
            DriveStep{std::move(key), sample, t_mid, 1});
    }
    return steps;
}

void
PulseSimulator::throwIfInterrupted() const
{
    if (cancelToken_.cancelled())
        throw StatusError(cancelToken_.reason());
    if (wallDeadline_.expired())
        throw StatusError(Status::error(
            ErrorCode::DeadlineExceeded,
            "wall-clock deadline passed mid-evolution"));
}

PropagatorCache *
PulseSimulator::activeCache(
    std::unique_ptr<PropagatorCache> &local) const
{
    if (!cachingEnabled_)
        return nullptr;
    if (cache_)
        return cache_.get();
    local = std::make_unique<PropagatorCache>();
    return local.get();
}

Matrix
PulseSimulator::stepPropagator(double t_mid_ns,
                               const std::vector<Complex> &drives) const
{
    Matrix h = staticH_;
    bool any_drive = false;
    for (std::size_t j = 0; j < drives.size(); ++j) {
        if (drives[j] == Complex{0.0, 0.0})
            continue;
        any_drive = true;
        const Matrix term = raising_[j] * drives[j];
        h += term + term.adjoint();
    }
    if (hasCoupling_) {
        const Complex phase =
            std::exp(Complex{0.0, couplingDetuning_ * t_mid_ns});
        const Matrix term = couplingOp_ * phase;
        h += term + term.adjoint();
    }
    if (!any_drive && !hasCoupling_) {
        // Diagonal fast path: free evolution under the static part.
        std::vector<Complex> phases(model_.dim());
        for (std::size_t idx = 0; idx < model_.dim(); ++idx)
            phases[idx] = std::exp(
                Complex{0.0, -staticH_(idx, idx).real() * kDtNs});
        return Matrix::diagonal(phases);
    }
    // Floor tolerance, not the library default: evolve composes ~10^3
    // of these per schedule and any per-step convergence slack
    // accumulates linearly across the product (kEigFloorTol).
    return expMinusIHt(h, kDtNs, kEigFloorTol);
}

void
PulseSimulator::stepPropagatorInto(
    StepKernel &kernel, double t_mid_ns,
    const std::vector<Complex> &drives,
    const std::vector<Complex> &env,
    const std::vector<double> &rates) const
{
    const std::size_t dim = model_.dim();

    // Identical-modulation fast path. Write each drive as
    //   d_j(t) = env_j exp(i r_j t)
    // (buildDriveTimeline's DriveModulation). While (env, rate)
    // repeats bitwise — AWG flat-tops, constant CR tones, idle
    // stretches — there is a diagonal generator w = sum_j c_j n_j with
    //   H(t) = W H(t0) W^dag,  W = diag(exp(i (t - t0) w)),
    // because conjugating by W rotates transmon j's drive term by
    // exp(i c_j (t - t0)) and the coupling term by
    // exp(i (c_A - c_B)(t - t0)) while commuting with the diagonal
    // drift. Matching coefficients (c_j = r_j on driven transmons,
    // c_A - c_B = Delta; see record_run below) therefore turns the
    // step propagator into an elementwise rescale of the run-initial
    // one — no eigensolve at all:
    //   U(t)(r, c) = exp(i (t - t0) (w_r - w_c)) U(t0)(r, c).
    // This fires even when the baked drive value rotates every sample
    // (a CR tone played at the target's frequency has r = Delta), the
    // case that dominates two-qubit schedules. Samples whose envelope
    // actually changes (Gaussian ramps) take the full solve below.
    static telemetry::Counter &c_run_steps =
        telemetry::MetricsRegistry::global().counter(
            "sim.kernel.run_steps");
    // Cap on the rescaled steps derived from one anchor: the anchor's
    // eigensolve error (~1e-15) repeats coherently in every derived
    // step, so an unbounded run would amplify it linearly (480 flat
    // samples x 1e-15 ~ 5e-13, eating the 1e-12 agreement budget). Re-
    // anchoring every 32 samples bounds the coherent factor at 32
    // while keeping ~32x fewer eigensolves on flat-tops.
    constexpr long kMaxRunLen = 32;
    if (kernel.haveRun && env == kernel.runEnv &&
        rates == kernel.runRates && kernel.runLen < kMaxRunLen) {
        ++kernel.runLen;
        c_run_steps.increment();
        if (kernel.runWZero)
            return; // H constant across the run: kernel.u is exact.
        // Rotation angle per transmon, as fl(c_j t) - fl(c_j t0): the
        // first term rounds exactly like the legacy path's per-sample
        // phase arguments (fl(detuning t_mid), fl(Delta t_mid)), so
        // the fast path tracks the legacy trajectory to the addition
        // rounding (~1 ulp/sample) instead of accumulating an
        // independent-rounding random walk.
        const std::size_t nt = model_.numTransmons();
        kernel.runDelta.resize(nt);
        for (std::size_t j = 0; j < nt; ++j)
            kernel.runDelta[j] =
                kernel.runC[j] == 0.0
                    ? 0.0
                    : kernel.runC[j] * t_mid_ns - kernel.runAngle0[j];
        kernel.phases.resize(dim);
        for (std::size_t i = 0; i < dim; ++i) {
            double theta = 0.0;
            for (std::size_t j = 0; j < nt; ++j)
                if (kernel.runDelta[j] != 0.0)
                    theta += kernel.runDelta[j] * occupations_[j][i];
            kernel.phases[i] = std::exp(Complex{0.0, theta});
        }
        for (std::size_t r = 0; r < dim; ++r)
            for (std::size_t c = 0; c < dim; ++c)
                kernel.u(r, c) = kernel.u0(r, c) * kernel.phases[r] *
                                 std::conj(kernel.phases[c]);
        return;
    }

    bool any_drive = false;
    for (const Complex &d : drives)
        if (d != Complex{0.0, 0.0}) {
            any_drive = true;
            break;
        }

    // Remember this sample as the anchor of a (potential) run once the
    // slow path below has produced kernel.u: solve for the generator
    // coefficients c_j and precompute w_i and the reference angles
    // w_i t0. On failure the previous anchor is kept — the rescale
    // identity only relates samples to their anchor, so intervening
    // non-run samples do not invalidate it.
    const auto record_run = [&] {
        if (!driftDiagonal_)
            return;
        const std::size_t nt = model_.numTransmons();
        bool ok = true;
        for (std::size_t j = 0; j < nt; ++j)
            if (env[j] != Complex{0.0, 0.0} &&
                !(rates[j] == rates[j]))
                ok = false; // NaN rate: overlap conflict, no run.
        double c_a = 0.0;
        double c_b = 0.0;
        if (ok && hasCoupling_) {
            const bool driven_a =
                env[couplingA_] != Complex{0.0, 0.0};
            const bool driven_b =
                env[couplingB_] != Complex{0.0, 0.0};
            if (driven_a && driven_b) {
                // Both sides pinned by their drives: the coupling
                // constraint must already hold. It does, exactly, for
                // CR tones played at the other qubit's frequency —
                // calibration computes the channel detuning with the
                // same expression as couplingDetuning_.
                c_a = rates[couplingA_];
                c_b = rates[couplingB_];
                ok = (c_a - c_b == couplingDetuning_);
            } else if (driven_a) {
                c_a = rates[couplingA_];
                c_b = c_a - couplingDetuning_;
            } else if (driven_b) {
                c_b = rates[couplingB_];
                c_a = c_b + couplingDetuning_;
            } else {
                c_a = couplingDetuning_;
                c_b = 0.0;
            }
        }
        if (!ok)
            return;
        kernel.runC.resize(nt);
        kernel.runAngle0.resize(nt);
        bool w_zero = true;
        for (std::size_t j = 0; j < nt; ++j) {
            double c_j;
            if (hasCoupling_ && j == couplingA_)
                c_j = c_a;
            else if (hasCoupling_ && j == couplingB_)
                c_j = c_b;
            else
                c_j = env[j] != Complex{0.0, 0.0} ? rates[j] : 0.0;
            kernel.runC[j] = c_j;
            kernel.runAngle0[j] = c_j * t_mid_ns;
            if (c_j != 0.0)
                w_zero = false;
        }
        kernel.runEnv = env;
        kernel.runRates = rates;
        kernel.u0 = kernel.u;
        kernel.runLen = 0;
        kernel.runWZero = w_zero;
        kernel.haveRun = true;
    };

    if (!any_drive && !hasCoupling_) {
        // Free evolution is diagonal in the drift frame. With a
        // diagonal H0 this reproduces the legacy fast path bit-for-bit
        // (driftValues_ keeps the natural basis order).
        Matrix &u_drift = driftDiagonal_
            ? kernel.u
            : kernel.simWs.matrix(2, dim, dim);
        u_drift.resize(dim, dim);
        u_drift.setZero();
        for (std::size_t i = 0; i < dim; ++i)
            u_drift(i, i) =
                std::exp(Complex{0.0, -driftValues_[i] * kDtNs});
        if (!driftDiagonal_) {
            Matrix &tmp = kernel.simWs.matrix(3, dim, dim);
            gemmInto(tmp, driftVectors_, u_drift);
            gemmAdjBInto(kernel.u, tmp, driftVectors_);
        }
        record_run();
        return;
    }

    // Build H in the drift eigenbasis: a real diagonal plus the
    // pre-rotated drive/coupling terms, Hermitian by construction.
    Matrix &h = kernel.simWs.matrix(0, dim, dim);
    h.setZero();
    for (std::size_t i = 0; i < dim; ++i)
        h(i, i) = Complex{driftValues_[i], 0.0};
    for (std::size_t j = 0; j < drives.size(); ++j)
        if (drives[j] != Complex{0.0, 0.0})
            addScaledPlusAdjoint(h, raisingDrift_[j], drives[j]);
    if (hasCoupling_) {
        const Complex phase =
            std::exp(Complex{0.0, couplingDetuning_ * t_mid_ns});
        addScaledPlusAdjoint(h, couplingOpDrift_, phase);
    }

    // Adjacent AWG samples differ by O(dt) in drive amplitude, so the
    // previous sample's eigenvectors make a near-perfect seed: the
    // warm solve typically needs 1-2 sweeps against ~7 cold
    // (sim.eig.* counters track the actual counts).
    const Matrix *seed = kernel.warm ? &kernel.vectors : nullptr;
    eigHermitianInPlace(h, seed, kernel.values, kernel.vectors,
                        kernel.eigWs, /*sortAscending=*/false);
    kernel.warm = true;

    // U = V diag(exp(-i values dt)) V^dag, then back to the lab frame
    // (a no-op when the drift basis is the natural basis).
    kernel.phases.resize(dim);
    for (std::size_t i = 0; i < dim; ++i)
        kernel.phases[i] =
            std::exp(Complex{0.0, -kernel.values[i] * kDtNs});
    Matrix &scaled = kernel.simWs.matrix(1, dim, dim);
    scaled.resize(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            scaled(r, c) = kernel.vectors(r, c) * kernel.phases[c];
    if (driftDiagonal_) {
        gemmAdjBInto(kernel.u, scaled, kernel.vectors);
    } else {
        Matrix &u_drift = kernel.simWs.matrix(2, dim, dim);
        gemmAdjBInto(u_drift, scaled, kernel.vectors);
        Matrix &tmp = kernel.simWs.matrix(3, dim, dim);
        gemmInto(tmp, driftVectors_, u_drift);
        gemmAdjBInto(kernel.u, tmp, driftVectors_);
    }
    record_run();
}

UnitaryResult
PulseSimulator::evolveUnitary(const Schedule &schedule) const
{
    telemetry::TraceSpan span("sim.evolve_unitary");
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter(
            "sim.evolve_unitary.calls");
    const long duration = schedule.duration();
    countEvolve(c_calls, duration);
    UnitaryResult result;
    result.duration = duration;
    std::vector<double> frames;
    DriveModulation mod;
    const bool want_mod = !cachingEnabled_ && driftKernelEnabled_;
    const auto drives = buildDriveTimeline(schedule, duration, &frames,
                                           want_mod ? &mod : nullptr);
    result.framePhase = frames;

    Matrix u = Matrix::identity(model_.dim());
    if (cachingEnabled_) {
        std::unique_ptr<PropagatorCache> local;
        PropagatorCache *cache = activeCache(local);
        Workspace pow_ws;
        Matrix step_u, u_pow, u_next;
        for (const DriveStep &step : compileSteps(drives, duration)) {
            checkInterrupt();
            cache->getOrComputeInto(
                step.key,
                [this, &step] {
                    return stepPropagator(step.tMidNs, step.drives);
                },
                step_u);
            powmInto(u_pow, step_u, static_cast<std::uint64_t>(step.count),
                     pow_ws);
            gemmInto(u_next, u_pow, u);
            std::swap(u, u_next);
        }
    } else if (driftKernelEnabled_) {
        // Exact per-sample path through the drift-frame kernel:
        // warm-started Jacobi, zero heap allocations per sample once
        // the kernel workspaces are warm.
        StepKernel kernel;
        std::vector<Complex> step_drives(model_.numTransmons());
        std::vector<Complex> step_env(model_.numTransmons());
        std::vector<double> step_rates(model_.numTransmons());
        Matrix u_next;
        for (long ts = 0; ts < duration; ++ts) {
            if ((ts % kInterruptStride) == 0)
                checkInterrupt();
            for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
                const std::size_t sts = static_cast<std::size_t>(ts);
                step_drives[j] = drives[j][sts];
                step_env[j] = mod.env[j][sts];
                step_rates[j] = mod.rate[j][sts];
            }
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            stepPropagatorInto(kernel, t_mid, step_drives, step_env,
                               step_rates);
            gemmInto(u_next, kernel.u, u);
            std::swap(u, u_next);
        }
    } else {
        // Pre-overhaul exact path: one cold propagator per AWG sample.
        std::vector<Complex> step_drives(model_.numTransmons());
        for (long ts = 0; ts < duration; ++ts) {
            if ((ts % kInterruptStride) == 0)
                checkInterrupt();
            for (std::size_t j = 0; j < model_.numTransmons(); ++j)
                step_drives[j] =
                    drives[j][static_cast<std::size_t>(ts)];
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            u = stepPropagator(t_mid, step_drives) * u;
        }
    }
    result.unitary = std::move(u);
    return result;
}

Matrix
PulseSimulator::effectiveUnitary(const UnitaryResult &result) const
{
    // A pulse played with frame phase phi acts as
    // exp(i phi n) U_pulse exp(-i phi n), so a schedule whose frames
    // accumulate to phi satisfies U_raw = exp(i phi n) U_logical, i.e.
    // the logical (compiler-intended) unitary is recovered by applying
    // exp(-i phi n) on the left.
    Matrix correction = Matrix::identity(model_.dim());
    for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
        const double phi = result.framePhase[j];
        if (phi == 0.0)
            continue;
        std::vector<Complex> phases(model_.dim());
        const Matrix n = model_.number(j);
        for (std::size_t idx = 0; idx < model_.dim(); ++idx)
            phases[idx] =
                std::exp(Complex{0.0, -phi * n(idx, idx).real()});
        correction = Matrix::diagonal(phases) * correction;
    }
    return correction * result.unitary;
}

Vector
PulseSimulator::evolveState(const Schedule &schedule,
                            const Vector &initial) const
{
    qpulseRequire(initial.size() == model_.dim(),
                  "evolveState dimension mismatch");
    telemetry::TraceSpan span("sim.evolve_state");
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter(
            "sim.evolve_state.calls");
    const long duration = schedule.duration();
    countEvolve(c_calls, duration);
    DriveModulation mod;
    const bool want_mod = !cachingEnabled_ && driftKernelEnabled_;
    const auto drives = buildDriveTimeline(schedule, duration, nullptr,
                                           want_mod ? &mod : nullptr);

    Vector state = initial;
    Vector state_next;
    if (cachingEnabled_) {
        std::unique_ptr<PropagatorCache> local;
        PropagatorCache *cache = activeCache(local);
        Workspace pow_ws;
        Matrix step_u, u_pow;
        for (const DriveStep &step : compileSteps(drives, duration)) {
            checkInterrupt();
            cache->getOrComputeInto(
                step.key,
                [this, &step] {
                    return stepPropagator(step.tMidNs, step.drives);
                },
                step_u);
            // Long runs (idle stretches, flat-tops): binary powering
            // costs log2(count) matmuls instead of count matvecs.
            if (step.count >= 8) {
                powmInto(u_pow, step_u,
                         static_cast<std::uint64_t>(step.count), pow_ws);
                applyInto(state_next, u_pow, state);
                std::swap(state, state_next);
            } else {
                for (long k = 0; k < step.count; ++k) {
                    applyInto(state_next, step_u, state);
                    std::swap(state, state_next);
                }
            }
        }
        return state;
    }
    std::vector<Complex> step_drives(model_.numTransmons());
    if (driftKernelEnabled_) {
        StepKernel kernel;
        std::vector<Complex> step_env(model_.numTransmons());
        std::vector<double> step_rates(model_.numTransmons());
        for (long ts = 0; ts < duration; ++ts) {
            if ((ts % kInterruptStride) == 0)
                checkInterrupt();
            for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
                const std::size_t sts = static_cast<std::size_t>(ts);
                step_drives[j] = drives[j][sts];
                step_env[j] = mod.env[j][sts];
                step_rates[j] = mod.rate[j][sts];
            }
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            stepPropagatorInto(kernel, t_mid, step_drives, step_env,
                               step_rates);
            applyInto(state_next, kernel.u, state);
            std::swap(state, state_next);
        }
        return state;
    }
    for (long ts = 0; ts < duration; ++ts) {
        if ((ts % kInterruptStride) == 0)
            checkInterrupt();
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            step_drives[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        state = stepPropagator(t_mid, step_drives).apply(state);
    }
    return state;
}

namespace {

/**
 * Schedule-independent decoherence tables for the operator-split
 * Lindblad step, hoisted out of the sample loop: per transmon a
 * dim x dim matrix of coherence decay factors, the n -> n-1 transfer
 * coefficients, and the lowered index. Applying them per sample is
 * then exp-free. Shared by the single-rho and batched paths so both
 * apply bit-identical damping.
 */
struct DecoherenceModel
{
    std::size_t dim = 0;
    std::size_t numTransmons = 0;
    std::vector<std::vector<double>> decayFactor;
    std::vector<std::vector<double>> transferCoef;
    std::vector<std::vector<std::size_t>> lowerIndex;

    explicit DecoherenceModel(const TransmonModel &model)
        : dim(model.dim()), numTransmons(model.numTransmons())
    {
        // Per-transmon decay rates (per ns).
        std::vector<double> gamma1(numTransmons);
        std::vector<double> gamma_phi(numTransmons);
        for (std::size_t j = 0; j < numTransmons; ++j) {
            const auto &params = model.qubit(j);
            const double t1_ns = params.t1Us * 1000.0;
            const double t2_ns = params.t2Us * 1000.0;
            gamma1[j] = 1.0 / t1_ns;
            gamma_phi[j] = std::max(0.0, 1.0 / t2_ns - 0.5 / t1_ns);
        }

        // Decompose a full-space index into per-transmon levels.
        const std::size_t levels = model.levels();
        auto level_of = [&](std::size_t index, std::size_t j) {
            std::size_t divisor = 1;
            for (std::size_t k = numTransmons; k-- > j + 1;)
                divisor *= levels;
            return (index / divisor) % levels;
        };

        decayFactor.assign(numTransmons,
                           std::vector<double>(dim * dim));
        transferCoef.assign(numTransmons,
                            std::vector<double>(dim, 0.0));
        lowerIndex.assign(numTransmons,
                          std::vector<std::size_t>(dim, 0));
        for (std::size_t j = 0; j < numTransmons; ++j) {
            const double g1 = gamma1[j] * kDtNs;
            const double gp = gamma_phi[j] * kDtNs;
            for (std::size_t r = 0; r < dim; ++r) {
                const double nr = static_cast<double>(level_of(r, j));
                for (std::size_t c = 0; c < dim; ++c) {
                    const double nc =
                        static_cast<double>(level_of(c, j));
                    const double relax = g1 * (nr + nc) / 2.0;
                    const double diff = nr - nc;
                    const double dephase = gp * diff * diff;
                    decayFactor[j][r * dim + c] =
                        std::exp(-(relax + dephase));
                }
                const std::size_t n = level_of(r, j);
                if (n == 0)
                    continue;
                std::size_t divisor = 1;
                for (std::size_t k = numTransmons; k-- > j + 1;)
                    divisor *= levels;
                lowerIndex[j][r] = r - divisor;
                transferCoef[j][r] =
                    std::expm1(static_cast<double>(n) * g1);
            }
        }
    }

    /**
     * Operator-split decoherence for one dt on a row-major dim x dim
     * block: coherence decay followed by the trace-preserving
     * population transfer n -> n-1 (the diagonal decay removed
     * exactly exp(-n g1 dt) from rho(r,r)).
     */
    void apply(Complex *rho) const
    {
        for (std::size_t j = 0; j < numTransmons; ++j) {
            const std::vector<double> &factor = decayFactor[j];
            for (std::size_t r = 0; r < dim; ++r)
                for (std::size_t c = 0; c < dim; ++c)
                    rho[r * dim + c] *= factor[r * dim + c];
            for (std::size_t r = 0; r < dim; ++r) {
                if (transferCoef[j][r] == 0.0)
                    continue;
                const double transfer =
                    transferCoef[j][r] * rho[r * dim + r].real();
                const std::size_t lo = lowerIndex[j][r];
                rho[lo * dim + lo] += Complex{transfer, 0.0};
            }
        }
    }
};

} // namespace

Matrix
PulseSimulator::evolveLindblad(const Schedule &schedule,
                               const Matrix &rho0) const
{
    qpulseRequire(rho0.rows() == model_.dim() &&
                      rho0.cols() == model_.dim(),
                  "evolveLindblad dimension mismatch");
    telemetry::TraceSpan span("sim.evolve_lindblad");
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter(
            "sim.evolve_lindblad.calls");
    const long duration = schedule.duration();
    countEvolve(c_calls, duration);
    DriveModulation mod;
    const bool want_mod = !cachingEnabled_ && driftKernelEnabled_;
    const auto drives = buildDriveTimeline(schedule, duration, nullptr,
                                           want_mod ? &mod : nullptr);

    const DecoherenceModel deco(model_);
    const auto apply_decoherence = [&](Matrix &rho) {
        deco.apply(rho.data().data());
    };

    Matrix rho = rho0;
    Matrix u_rho, rho_next;
    if (cachingEnabled_) {
        std::unique_ptr<PropagatorCache> local;
        PropagatorCache *cache = activeCache(local);
        Matrix step_u;
        for (const DriveStep &step : compileSteps(drives, duration)) {
            checkInterrupt();
            // The decoherence split interleaves with every sample, so
            // runs reuse the propagator but still step sample-wise.
            cache->getOrComputeInto(
                step.key,
                [this, &step] {
                    return stepPropagator(step.tMidNs, step.drives);
                },
                step_u);
            for (long k = 0; k < step.count; ++k) {
                gemmInto(u_rho, step_u, rho);
                gemmAdjBInto(rho_next, u_rho, step_u);
                std::swap(rho, rho_next);
                apply_decoherence(rho);
            }
        }
        return rho;
    }
    std::vector<Complex> step_drives(model_.numTransmons());
    if (driftKernelEnabled_) {
        StepKernel kernel;
        std::vector<Complex> step_env(model_.numTransmons());
        std::vector<double> step_rates(model_.numTransmons());
        for (long ts = 0; ts < duration; ++ts) {
            if ((ts % kInterruptStride) == 0)
                checkInterrupt();
            for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
                const std::size_t sts = static_cast<std::size_t>(ts);
                step_drives[j] = drives[j][sts];
                step_env[j] = mod.env[j][sts];
                step_rates[j] = mod.rate[j][sts];
            }
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            stepPropagatorInto(kernel, t_mid, step_drives, step_env,
                               step_rates);
            gemmInto(u_rho, kernel.u, rho);
            gemmAdjBInto(rho_next, u_rho, kernel.u);
            std::swap(rho, rho_next);
            apply_decoherence(rho);
        }
        return rho;
    }
    for (long ts = 0; ts < duration; ++ts) {
        if ((ts % kInterruptStride) == 0)
            checkInterrupt();
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            step_drives[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        const Matrix u = stepPropagator(t_mid, step_drives);
        rho = u * rho * u.adjoint();
        apply_decoherence(rho);
    }
    return rho;
}

namespace {

/** Work counters for one batched evolve (thread-count invariant):
 *  calls, states packed into the panel, and AWG samples walked —
 *  sim.batch.states / sim.batch.calls is the realized mean batch
 *  width K. */
void
countBatch(long duration, std::size_t width)
{
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter("sim.batch.calls");
    static telemetry::Counter &c_states =
        telemetry::MetricsRegistry::global().counter(
            "sim.batch.states");
    static telemetry::Counter &c_samples =
        telemetry::MetricsRegistry::global().counter(
            "sim.batch.samples");
    c_calls.increment();
    c_states.add(static_cast<std::uint64_t>(width));
    c_samples.add(
        static_cast<std::uint64_t>(duration >= 0 ? duration : 0));
}

} // namespace

void
PulseSimulator::evolveStatesBatched(const Schedule &schedule,
                                    StatePanel &panel,
                                    Workspace &ws) const
{
    qpulseRequire(panel.dim() == model_.dim(),
                  "evolveStatesBatched dimension mismatch");
    const std::size_t width = panel.width();
    if (width == 0)
        return;
    telemetry::TraceSpan span("sim.evolve_batched");
    const long duration = schedule.duration();
    countBatch(duration, width);
    DriveModulation mod;
    const bool want_mod = !cachingEnabled_ && driftKernelEnabled_;
    const auto drives = buildDriveTimeline(schedule, duration, nullptr,
                                           want_mod ? &mod : nullptr);

    const std::size_t dim = model_.dim();
    // Scratch: state-panel slot 0 (ping-pong target) plus matrix slots
    // 0-3 (0-1 are powmInto's, 2-3 hold the step propagator and its
    // binary power). All reuse capacity across calls, so the loop is
    // heap-silent once `ws` has warmed at this width.
    StatePanel &next = ws.statePanel(0, dim, width);
    if (cachingEnabled_) {
        std::unique_ptr<PropagatorCache> local;
        PropagatorCache *cache = activeCache(local);
        Matrix &step_u = ws.matrix(2, dim, dim);
        Matrix &u_pow = ws.matrix(3, dim, dim);
        for (const DriveStep &step : compileSteps(drives, duration)) {
            checkInterrupt();
            cache->getOrComputeInto(
                step.key,
                [this, &step] {
                    return stepPropagator(step.tMidNs, step.drives);
                },
                step_u);
            // Long runs (idle stretches, flat-tops): binary powering
            // costs log2(count) matmuls instead of count panel gemms.
            if (step.count >= 8) {
                powmInto(u_pow, step_u,
                         static_cast<std::uint64_t>(step.count), ws);
                applyPanelInto(next, u_pow, panel);
                std::swap(panel, next);
            } else {
                for (long k = 0; k < step.count; ++k) {
                    applyPanelInto(next, step_u, panel);
                    std::swap(panel, next);
                }
            }
        }
        return;
    }
    std::vector<Complex> step_drives(model_.numTransmons());
    if (driftKernelEnabled_) {
        StepKernel kernel;
        std::vector<Complex> step_env(model_.numTransmons());
        std::vector<double> step_rates(model_.numTransmons());
        for (long ts = 0; ts < duration; ++ts) {
            if ((ts % kInterruptStride) == 0)
                checkInterrupt();
            for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
                const std::size_t sts = static_cast<std::size_t>(ts);
                step_drives[j] = drives[j][sts];
                step_env[j] = mod.env[j][sts];
                step_rates[j] = mod.rate[j][sts];
            }
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            stepPropagatorInto(kernel, t_mid, step_drives, step_env,
                               step_rates);
            applyPanelInto(next, kernel.u, panel);
            std::swap(panel, next);
        }
        return;
    }
    for (long ts = 0; ts < duration; ++ts) {
        if ((ts % kInterruptStride) == 0)
            checkInterrupt();
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            step_drives[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        applyPanelInto(next, stepPropagator(t_mid, step_drives), panel);
        std::swap(panel, next);
    }
}

void
PulseSimulator::evolveStatesBatched(const Schedule &schedule,
                                    StatePanel &panel) const
{
    evolveStatesBatched(schedule, panel, tlsWorkspace());
}

void
PulseSimulator::evolveLindbladBatched(const Schedule &schedule,
                                      DensityPanel &panel,
                                      Workspace &ws) const
{
    qpulseRequire(panel.dim() == model_.dim(),
                  "evolveLindbladBatched dimension mismatch");
    const std::size_t width = panel.width();
    if (width == 0)
        return;
    telemetry::TraceSpan span("sim.evolve_batched");
    const long duration = schedule.duration();
    countBatch(duration, width);
    DriveModulation mod;
    const bool want_mod = !cachingEnabled_ && driftKernelEnabled_;
    const auto drives = buildDriveTimeline(schedule, duration, nullptr,
                                           want_mod ? &mod : nullptr);

    const DecoherenceModel deco(model_);
    const std::size_t dim = model_.dim();
    // One dt of decoherence on every block of the panel.
    const auto apply_decoherence_panel = [&](DensityPanel &p) {
        Complex *base = p.storage().data().data();
        for (std::size_t i = 0; i < width; ++i)
            deco.apply(base + i * dim * dim);
    };

    // Scratch: density-panel slots 0 (ping-pong target) and 1
    // (conjugation staging), matrix slot 2 for the step propagator.
    DensityPanel &next = ws.densityPanel(0, dim, width);
    DensityPanel &stage = ws.densityPanel(1, dim, width);
    if (cachingEnabled_) {
        std::unique_ptr<PropagatorCache> local;
        PropagatorCache *cache = activeCache(local);
        Matrix &step_u = ws.matrix(2, dim, dim);
        for (const DriveStep &step : compileSteps(drives, duration)) {
            checkInterrupt();
            // The decoherence split interleaves with every sample, so
            // runs reuse the propagator but still step sample-wise.
            cache->getOrComputeInto(
                step.key,
                [this, &step] {
                    return stepPropagator(step.tMidNs, step.drives);
                },
                step_u);
            for (long k = 0; k < step.count; ++k) {
                conjugatePanelInto(next, step_u, panel, stage);
                std::swap(panel, next);
                apply_decoherence_panel(panel);
            }
        }
        return;
    }
    std::vector<Complex> step_drives(model_.numTransmons());
    if (driftKernelEnabled_) {
        StepKernel kernel;
        std::vector<Complex> step_env(model_.numTransmons());
        std::vector<double> step_rates(model_.numTransmons());
        for (long ts = 0; ts < duration; ++ts) {
            if ((ts % kInterruptStride) == 0)
                checkInterrupt();
            for (std::size_t j = 0; j < model_.numTransmons(); ++j) {
                const std::size_t sts = static_cast<std::size_t>(ts);
                step_drives[j] = drives[j][sts];
                step_env[j] = mod.env[j][sts];
                step_rates[j] = mod.rate[j][sts];
            }
            const double t_mid =
                (static_cast<double>(ts) + 0.5) * kDtNs;
            stepPropagatorInto(kernel, t_mid, step_drives, step_env,
                               step_rates);
            conjugatePanelInto(next, kernel.u, panel, stage);
            std::swap(panel, next);
            apply_decoherence_panel(panel);
        }
        return;
    }
    for (long ts = 0; ts < duration; ++ts) {
        if ((ts % kInterruptStride) == 0)
            checkInterrupt();
        for (std::size_t j = 0; j < model_.numTransmons(); ++j)
            step_drives[j] = drives[j][static_cast<std::size_t>(ts)];
        const double t_mid = (static_cast<double>(ts) + 0.5) * kDtNs;
        conjugatePanelInto(next, stepPropagator(t_mid, step_drives),
                           panel, stage);
        std::swap(panel, next);
        apply_decoherence_panel(panel);
    }
}

std::vector<double>
PulseSimulator::populations(const Vector &state) const
{
    std::vector<double> pops(state.size());
    for (std::size_t i = 0; i < state.size(); ++i)
        pops[i] = std::norm(state[i]);
    return pops;
}

} // namespace qpulse
