#include "compile/compiler.h"

#include <cmath>

#include "common/constants.h"
#include "compile/compile_cache.h"
#include "device/schedule_validation.h"
#include "store/artifact_store.h"
#include "store/serde.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

double
CompileResult::durationNs() const
{
    return dtToNs(durationDt);
}

PulseCompiler::PulseCompiler(std::shared_ptr<const PulseBackend> backend,
                             CompileMode mode)
    : backend_(std::move(backend)), mode_(mode)
{
    qpulseRequire(backend_ != nullptr, "PulseCompiler needs a backend");
    for (const auto &cr : backend_->library().crs)
        target_.edges.emplace_back(cr.control, cr.target);
    target_.augmented = mode_ == CompileMode::Optimized;
    generation_ = calibrationGeneration(backend_->library(), 0);
    passFingerprint_ = passConfigFingerprint(target_, mode_);
}

void
PulseCompiler::setCompileCache(std::shared_ptr<CompileCache> cache)
{
    cache_ = std::move(cache);
}

CompileKey
PulseCompiler::cacheKey(const QuantumCircuit &circuit) const
{
    CompileKey key;
    key.circuitFingerprint =
        circuitFingerprint(circuit, backend_->config());
    key.mode = static_cast<std::uint32_t>(mode_);
    key.calibrationGeneration = generation_;
    key.passConfigFingerprint = passFingerprint_;
    return key;
}

QuantumCircuit
PulseCompiler::transpile(const QuantumCircuit &circuit) const
{
    const PassManager manager = mode_ == CompileMode::Optimized
        ? optimizedPassManager(target_)
        : standardPassManager(target_);
    return manager.run(circuit);
}

RoutingResult
PulseCompiler::route(const QuantumCircuit &circuit) const
{
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (const auto &edge : backend_->config().couplings)
        edges.emplace_back(edge.control, edge.target);
    const CouplingGraph graph(backend_->config().numQubits,
                              std::move(edges));
    return routeCircuit(circuit, graph);
}

CompileResult
PulseCompiler::compile(const QuantumCircuit &circuit) const
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_compiles =
        registry.counter("compile.calls");
    static telemetry::Counter &c_gates_in =
        registry.counter("compile.gates_in");
    static telemetry::Counter &c_gates_out =
        registry.counter("compile.gates_out");
    static telemetry::Counter &c_pulses =
        registry.counter("compile.pulses");
    static telemetry::Histogram &h_wall =
        registry.histogram("compile.wall_us",
                           telemetry::defaultLatencyBoundsUs());
    c_compiles.increment();
    c_gates_in.add(circuit.gates().size());

    const std::uint64_t t0 = telemetry::Tracer::nowNs();
    telemetry::TraceSpan total_span("compile.total");

    CompileResult result = [&] {
        if (cache_ == nullptr)
            return compileUncached(circuit);
        bool from_cache = false;
        CompileResult cached = cache_->getOrCompile(
            cacheKey(circuit),
            [&] { return compileUncached(circuit); }, &from_cache);
        if (from_cache) {
            // A hit skips every pass, but is never trusted blindly:
            // re-validate against the *current* library and channel
            // budget so a miscalibrated cmd_def (or a stale record)
            // cannot be served unchecked.
            telemetry::TraceSpan span("compile.validate");
            cached.validation =
                validateSchedule(cached.schedule, backend_->config());
        }
        return cached;
    }();

    c_gates_out.add(result.basisCircuit.gates().size());
    c_pulses.add(result.pulseCount);
    // Wall-clock is scheduling-dependent by nature, so it lives in a
    // histogram (excluded from the cross-thread determinism contract)
    // rather than a counter. compile.wall_us covers *every* compile
    // (cache hits included); compile.uncached_wall_us, observed in
    // compileUncached, isolates fresh pipeline runs.
    h_wall.observe(
        static_cast<double>(telemetry::Tracer::nowNs() - t0) / 1e3);
    return result;
}

CompileResult
PulseCompiler::compileUncached(const QuantumCircuit &circuit) const
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Histogram &h_uncached =
        registry.histogram("compile.uncached_wall_us",
                           telemetry::defaultLatencyBoundsUs());
    const std::uint64_t t0 = telemetry::Tracer::nowNs();

    CompileResult result = [&] {
        telemetry::TraceSpan span("compile.transpile");
        return CompileResult{transpile(circuit)};
    }();
    result.mode = mode_;
    {
        telemetry::TraceSpan span("compile.schedule");
        result.schedule =
            backend_->scheduleCircuit(result.basisCircuit);
    }
    result.durationDt = result.schedule.duration();
    {
        telemetry::TraceSpan span("compile.analyze");
        for (const auto &inst : result.schedule.instructions()) {
            if (inst.kind == PulseInstructionKind::Play &&
                inst.channel.kind != ChannelKind::Measure)
                ++result.pulseCount;
            else if (inst.kind == PulseInstructionKind::ShiftPhase)
                ++result.frameChangeCount;
        }
    }
    {
        telemetry::TraceSpan span("compile.validate");
        result.validation =
            validateSchedule(result.schedule, backend_->config());
    }
    h_uncached.observe(
        static_cast<double>(telemetry::Tracer::nowNs() - t0) / 1e3);
    return result;
}

NoiseInfoProvider
PulseCompiler::noiseProvider() const
{
    const std::shared_ptr<const PulseBackend> backend = backend_;
    return [backend](const Gate &gate) {
        GateNoiseInfo info;
        if (gateIsDirective(gate.type)) {
            if (gate.type == GateType::Measure)
                info.duration = backend->config().measureDuration;
            return info;
        }
        const Schedule schedule = backend->schedule(gate);
        info.duration = schedule.duration();
        const auto &library = backend->library();
        for (const auto &inst : schedule.instructions()) {
            if (inst.kind != PulseInstructionKind::Play)
                continue;
            const double peak = inst.waveform->peakAmplitude();
            info.peakAmplitude = std::max(info.peakAmplitude, peak);
            if (inst.channel.kind == ChannelKind::Drive) {
                // Error source 2: each calibrated 1q pulse application
                // weighted by its squared relative amplitude (an
                // amplitude-downscaled pulse carries proportionally
                // less calibration error).
                const double cal_amp =
                    library.qubits[inst.channel.index].x180Amp;
                const double ratio = peak / std::max(cal_amp, 1e-12);
                info.error1qWeight += ratio * ratio;
            } else if (inst.channel.kind == ChannelKind::Control) {
                // CR pulse halves weighted by their stretch fraction:
                // a shorter (stretched-down) CR pulse accumulates
                // proportionally less coherent error.
                const auto &cr = library.crs[inst.channel.index];
                const long full =
                    cr.flatFor90 + 2 * cr.risefall;
                info.error2qWeight +=
                    static_cast<double>(inst.waveform->duration()) /
                    static_cast<double>(std::max(full, 1L));
            }
        }
        return info;
    };
}

DensitySimulator
PulseCompiler::makeSimulator() const
{
    return DensitySimulator(backend_->config(), noiseProvider());
}

std::shared_ptr<const PulseBackend>
makeCalibratedBackend(const BackendConfig &config, bool include_qutrit)
{
    Calibrator calibrator(config);
    return std::make_shared<const PulseBackend>(
        calibrator.calibrateAll(include_qutrit));
}

std::shared_ptr<const PulseBackend>
makeCalibratedBackend(const BackendConfig &config, bool include_qutrit,
                      const std::shared_ptr<store::ArtifactStore> &store,
                      bool *loaded_from_snapshot)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_loads =
        registry.counter("calibration.snapshot.loads");
    static telemetry::Counter &c_writes =
        registry.counter("calibration.snapshot.writes");

    if (loaded_from_snapshot != nullptr)
        *loaded_from_snapshot = false;
    if (store == nullptr)
        return makeCalibratedBackend(config, include_qutrit);

    const store::ArtifactKey key =
        calibrationSnapshotKey(config, include_qutrit);
    PulseLibrary library;
    if (store::getPulseLibrary(*store, key, library).ok() &&
        store::hashBackendConfig(library.config) ==
            store::hashBackendConfig(config)) {
        // The snapshot's embedded config matches the requested one
        // exactly — bootstrap from it and skip the full sweep.
        c_loads.increment();
        if (loaded_from_snapshot != nullptr)
            *loaded_from_snapshot = true;
        return std::make_shared<const PulseBackend>(std::move(library));
    }

    // Miss, corrupt record, or foreign config: run the sweep and
    // persist its result (flushed immediately so a concurrent or
    // subsequent process can bootstrap).
    Calibrator calibrator(config);
    PulseLibrary fresh = calibrator.calibrateAll(include_qutrit);
    if (store::putPulseLibrary(*store, key, fresh).ok() &&
        store->flush().ok())
        c_writes.increment();
    return std::make_shared<const PulseBackend>(std::move(fresh));
}

} // namespace qpulse
