/**
 * @file
 * Two-tier memoized compile cache (docs/PERFORMANCE.md "Compile
 * path"). The paper's variational workloads recompile the same circuit
 * shape on every parameter update; a compile is a pure function of
 * (circuit, mode, calibration, pass configuration), so its result is
 * content-addressable exactly like a propagator block.
 *
 * Tier 1 is a bounded in-memory LRU of CompileResults. Tier 2 is the
 * persistent ArtifactStore (PR 8): a miss that finds a CompiledSchedule
 * record on disk decodes it instead of re-running the pass pipeline,
 * and a fresh compile writes its record back for the next process.
 *
 * Key derivation:
 *  - circuitFingerprint: canonical, platform-independent hash of the
 *    register width, the gate list (type, wires, parameters quantized
 *    at kDriveQuantum like PropagatorKey words), and the backend's
 *    coupling/routing topology;
 *  - CompileKey adds the compile mode, the calibration generation
 *    (content hash of the PulseLibrary mixed with the recalibration
 *    epoch), and the pass-configuration fingerprint.
 * Recalibration bumps the generation, so every schedule compiled under
 * the old calibration becomes unreachable — the same
 * invalidation-by-unreachability contract the ArtifactStore uses.
 *
 * A cache hit is NOT trusted blindly: PulseCompiler re-runs
 * validateSchedule against the *current* channel budget on every hit,
 * so a miscalibrated cmd_def (or a hash-colliding record) can never be
 * served stale. Results whose validation failed are never inserted.
 *
 * Lock order (the propagator_cache.h contract): the LRU mutex here is
 * a LEAF lock. The compile factory and all ArtifactStore calls (which
 * take the store's own leaf mutex) run with the LRU mutex released;
 * no code path holds both at once. Single-flight waiters block on a
 * per-key condition variable outside the LRU mutex, so N concurrent
 * compiles of one key cost one pass-pipeline run.
 */
#ifndef QPULSE_COMPILE_COMPILE_CACHE_H
#define QPULSE_COMPILE_COMPILE_CACHE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "compile/compiler.h"
#include "store/artifact_store.h"
#include "store/serde.h"

namespace qpulse {

/**
 * Content address of one compile: everything the result is a pure
 * function of.
 */
struct CompileKey
{
    std::uint64_t circuitFingerprint = 0;
    std::uint32_t mode = 0; ///< CompileMode.
    std::uint64_t calibrationGeneration = 0;
    std::uint64_t passConfigFingerprint = 0;

    bool operator==(const CompileKey &other) const
    {
        return circuitFingerprint == other.circuitFingerprint &&
               mode == other.mode &&
               calibrationGeneration == other.calibrationGeneration &&
               passConfigFingerprint == other.passConfigFingerprint;
    }
};

struct CompileKeyHash
{
    std::size_t operator()(const CompileKey &key) const;
};

/**
 * Canonical platform-independent fingerprint of a circuit as a compile
 * input: register width, gate list (parameters quantized at
 * kDriveQuantum, the PropagatorKey quantum) and the coupling topology
 * the router sees. Two circuits that fingerprint equal compile to the
 * same schedule under the same mode/calibration/pass configuration.
 */
std::uint64_t circuitFingerprint(const QuantumCircuit &circuit,
                                 const BackendConfig &config);

/**
 * Fingerprint of the transpiler pipeline configuration: pass-pipeline
 * version, mode, augmented-basis flag and the CR edge list the
 * template passes match against.
 */
std::uint64_t passConfigFingerprint(const TranspilerTarget &target,
                                    CompileMode mode);

/**
 * Calibration generation for compile keys: content hash of the pulse
 * library mixed with the recalibration epoch. Deliberately does NOT
 * mix in a backend/member name — fleet members sharing a calibration
 * share compiled schedules (the failover path re-serves the same
 * record instead of recompiling per hop).
 */
std::uint64_t calibrationGeneration(const PulseLibrary &library,
                                    std::uint64_t epoch);

/** Monotonic counters (mirrored into compile.cache.* telemetry). */
struct CompileCacheStats
{
    std::uint64_t hits = 0;        ///< In-memory LRU hits.
    std::uint64_t misses = 0;      ///< Fresh pass-pipeline runs.
    std::uint64_t persistHits = 0; ///< Served from a disk record.
    std::uint64_t persistFallbacks = 0; ///< Bad record -> recompiled.
    std::uint64_t coalesced = 0;   ///< Single-flight waiters served.
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    double hitRate() const
    {
        const std::uint64_t total = hits + persistHits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits + persistHits) /
                                static_cast<double>(total);
    }
};

/**
 * Bounded LRU of CompileResults over an optional persistent tier.
 * Thread-safe; shareable across compilers (and fleet members — the
 * key carries the calibration generation, so two members only share
 * entries when their libraries actually match).
 */
class CompileCache
{
  public:
    /** Default entry bound: compile results are a few tens of KiB. */
    static constexpr std::size_t kDefaultCapacity = 256;

    /** Auto-flush the persistent tier after this many write-backs. */
    static constexpr std::size_t kAutoFlushPuts = 16;

    explicit CompileCache(
        std::size_t capacity = kDefaultCapacity,
        std::shared_ptr<store::ArtifactStore> store = nullptr);
    ~CompileCache();

    CompileCache(const CompileCache &) = delete;
    CompileCache &operator=(const CompileCache &) = delete;

    /**
     * Look up `key`; on a miss, probe the persistent tier, then run
     * `compileFn` (outside every cache lock) and insert + write back
     * the result when its validation passed. Concurrent callers of the
     * same key are coalesced behind a single compile (single-flight).
     * `from_cache` (optional) is set true when the result did NOT come
     * from this caller's own compileFn run — memory hit, disk hit, or
     * coalesced wait — i.e. exactly when the caller must re-validate
     * against its current library.
     */
    CompileResult
    getOrCompile(const CompileKey &key,
                 const std::function<CompileResult()> &compileFn,
                 bool *from_cache = nullptr);

    /** Flush buffered write-backs to disk (no-op without a store). */
    Status flush();

    /** Drop every memory-tier entry (counters preserved). */
    void clear();

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    bool hasStore() const { return store_ != nullptr; }
    const std::shared_ptr<store::ArtifactStore> &artifactStore() const
    {
        return store_;
    }

    CompileCacheStats stats() const;

  private:
    struct InFlight
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const CompileResult> result;
    };

    struct Entry
    {
        CompileKey key;
        std::shared_ptr<const CompileResult> result;
    };
    using LruList = std::list<Entry>;

    /** Disk probe (no LRU lock held). True -> `out` holds the record. */
    bool loadPersistent(const CompileKey &key, CompileResult &out);
    /** Serialize + buffer a write-back (no LRU lock held). */
    void storePersistent(const CompileKey &key,
                         const CompileResult &result);

    std::size_t capacity_;
    std::shared_ptr<store::ArtifactStore> store_;
    LruList lru_; // Front = most recently used.
    std::unordered_map<CompileKey, LruList::iterator, CompileKeyHash>
        index_;
    std::unordered_map<CompileKey, std::shared_ptr<InFlight>,
                       CompileKeyHash>
        inflight_;
    CompileCacheStats stats_;
    std::atomic<std::size_t> pendingPuts_{0};
    mutable std::mutex mutex_; ///< Leaf lock (see file comment).
};

/**
 * Serialize a CompileResult into a CompiledSchedule record payload /
 * decode one back. The payload leads with the format version and a
 * full CompileKey echo (collision guard), then the basis circuit, the
 * schedule (samples materialized), and the result metadata. Exposed
 * for tests and the CI corruption-fuzz gate.
 */
void serializeCompileResult(const CompileKey &key,
                            const CompileResult &result,
                            store::ByteWriter &w);
Status deserializeCompileResult(store::ByteReader &r,
                                const CompileKey &expected_key,
                                CompileResult &out);

/** ArtifactStore key a CompileKey persists under. */
store::ArtifactKey compileArtifactKey(const CompileKey &key);

/**
 * ArtifactStore key a CalibrationSnapshot persists under. The key is
 * fixed per (config, include_qutrit) — generation 0 — so "the latest
 * snapshot" is simply the newest record for the key (duplicate puts
 * are newest-wins in the store index). Staleness of *schedules* is
 * handled by the compile generation, not the snapshot key.
 */
store::ArtifactKey calibrationSnapshotKey(const BackendConfig &config,
                                          bool include_qutrit);

/**
 * Whether a library carries qutrit sideband calibrations (any qubit
 * with a non-zero x12Amp). Recovers the `include_qutrit` flag a
 * library was calibrated with, so a recalibration owner holding only
 * the PulseLibrary can re-derive the right calibrationSnapshotKey.
 */
bool libraryHasQutrit(const PulseLibrary &library);

/**
 * Persist `library` as the latest CalibrationSnapshot for its own
 * config (key re-derived via libraryHasQutrit) and flush immediately,
 * so the next process bootstraps from it. Counts
 * calibration.snapshot.writes on success. Recalibration owners (the
 * service watchdog hook, BackendPool drain/readmit) call this; a
 * failure is structured but non-fatal — the snapshot is an
 * accelerator, never a correctness dependency.
 */
Status writeCalibrationSnapshot(store::ArtifactStore &store,
                                const PulseLibrary &library);

} // namespace qpulse

#endif // QPULSE_COMPILE_COMPILE_CACHE_H
