#include "compile/zne.h"

#include <cmath>

#include "common/thread_pool.h"
#include "linalg/eigen.h"
#include "noisesim/statevector.h"

namespace qpulse {

double
richardsonExtrapolate(const std::vector<double> &xs,
                      const std::vector<double> &ys)
{
    qpulseRequire(xs.size() == ys.size() && xs.size() >= 2,
                  "richardsonExtrapolate needs >= 2 points");
    // Lagrange evaluation at x = 0:
    // p(0) = sum_i y_i * prod_{j != i} (-x_j) / (x_i - x_j).
    double total = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double weight = 1.0;
        for (std::size_t j = 0; j < xs.size(); ++j) {
            if (j == i)
                continue;
            const double denom = xs[i] - xs[j];
            qpulseRequire(std::abs(denom) > 1e-12,
                          "richardsonExtrapolate: duplicate stretch "
                          "factors");
            weight *= -xs[j] / denom;
        }
        total += ys[i] * weight;
    }
    return total;
}

ZneResult
zeroNoiseExtrapolate(const PulseCompiler &compiler,
                     const QuantumCircuit &circuit,
                     const DiagonalObservable &observable,
                     const std::vector<double> &stretches, long shots,
                     Rng &rng)
{
    qpulseRequire(!stretches.empty(), "ZNE needs stretch factors");
    qpulseRequire(observable.size() ==
                      (std::size_t{1} << circuit.numQubits()),
                  "observable length must be 2^n");

    const NoiseInfoProvider base = compiler.noiseProvider();
    QuantumCircuit measured = circuit;
    measured.measureAll();
    const QuantumCircuit basis = compiler.transpile(measured);

    for (const double stretch : stretches)
        qpulseRequire(stretch >= 1.0,
                      "stretch factors must be >= 1 (pulses can only "
                      "be stretched, not compressed below calibration)");

    // Phase 1 — parallel: the density simulations are deterministic
    // (no RNG), so the per-stretch sweep fans out over the thread
    // pool. Pulse stretching dilates every gate's schedule and scales
    // the accumulated control error proportionally.
    std::vector<NoisyRunResult> runs(stretches.size());
    parallelFor(stretches.size(), [&](std::size_t index) {
        const double stretch = stretches[index];
        const NoiseInfoProvider provider =
            [base, stretch](const Gate &gate) {
                GateNoiseInfo info = base(gate);
                if (gateIsDirective(gate.type))
                    return info;
                info.duration = static_cast<long>(
                    std::llround(info.duration * stretch));
                info.error1qWeight *= stretch;
                info.error2qWeight *= stretch;
                return info;
            };
        DensitySimulator simulator(compiler.backend().config(),
                                   provider);
        runs[index] = simulator.run(basis);
    });

    // Phase 2 — sequential: shot sampling consumes the caller's rng
    // in stretch order, so results are bit-identical to a fully
    // sequential sweep regardless of thread count.
    ZneResult result;
    const DensitySimulator sampler(compiler.backend().config(), base);
    for (std::size_t index = 0; index < stretches.size(); ++index) {
        const double stretch = stretches[index];
        const auto counts =
            sampler.sampleCounts(runs[index], shots, rng);
        std::vector<double> probs(counts.size());
        for (std::size_t i = 0; i < counts.size(); ++i)
            probs[i] = static_cast<double>(counts[i]) /
                       static_cast<double>(shots);
        const double value = diagonalExpectation(probs, observable);
        result.stretchFactors.push_back(stretch);
        result.measured.push_back(value);
        if (std::abs(stretch - 1.0) < 1e-12)
            result.unmitigated = value;
    }
    result.extrapolated =
        richardsonExtrapolate(result.stretchFactors, result.measured);
    return result;
}

} // namespace qpulse
