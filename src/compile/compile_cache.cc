#include "compile/compile_cache.h"

#include <cmath>
#include <utility>

#include "telemetry/metrics.h"

namespace qpulse {

namespace {

/**
 * Bumped whenever the pass pipeline's observable behavior changes in a
 * way the TranspilerTarget does not capture (new pass, reordered
 * pipeline): old persisted schedules must stop being addressable.
 */
constexpr std::uint32_t kPassPipelineVersion = 1;

telemetry::Counter &
cacheCounter(const char *name)
{
    return telemetry::MetricsRegistry::global().counter(name);
}

} // namespace

std::size_t
CompileKeyHash::operator()(const CompileKey &key) const
{
    std::uint64_t h = store::mixHash(key.circuitFingerprint, key.mode);
    h = store::mixHash(h, key.calibrationGeneration);
    h = store::mixHash(h, key.passConfigFingerprint);
    return static_cast<std::size_t>(h);
}

std::uint64_t
circuitFingerprint(const QuantumCircuit &circuit,
                   const BackendConfig &config)
{
    store::ByteWriter w;
    w.u64(circuit.numQubits());
    w.u64(circuit.gates().size());
    for (const Gate &gate : circuit.gates()) {
        w.u32(static_cast<std::uint32_t>(gate.type));
        w.u64(gate.qubits.size());
        for (std::size_t q : gate.qubits)
            w.u64(q);
        w.u64(gate.params.size());
        // Angles quantized like PropagatorKey words: two parameters
        // within half a kDriveQuantum fingerprint equal (and differ by
        // far less than any downstream tolerance); any larger change
        // reroutes the key.
        for (double p : gate.params)
            w.i64(std::llround(p / kDriveQuantum));
    }
    // The routing/coupling topology the transpiler schedules against:
    // the same gate list on a different coupling map compiles to a
    // different schedule.
    w.u64(config.numQubits);
    w.u64(config.couplings.size());
    for (const CouplingEdge &edge : config.couplings) {
        w.u64(edge.control);
        w.u64(edge.target);
    }
    return store::hashBytes(w.bytes().data(), w.size());
}

std::uint64_t
passConfigFingerprint(const TranspilerTarget &target, CompileMode mode)
{
    store::ByteWriter w;
    w.u32(kPassPipelineVersion);
    w.u32(static_cast<std::uint32_t>(mode));
    w.u8(target.augmented ? 1 : 0);
    w.u64(target.edges.size());
    for (const auto &edge : target.edges) {
        w.u64(edge.first);
        w.u64(edge.second);
    }
    return store::hashBytes(w.bytes().data(), w.size());
}

std::uint64_t
calibrationGeneration(const PulseLibrary &library, std::uint64_t epoch)
{
    return store::mixHash(store::hashPulseLibrary(library), epoch);
}

// ------------------------------------------------------------------
// CompiledSchedule record payload
// ------------------------------------------------------------------

void
serializeCompileResult(const CompileKey &key, const CompileResult &result,
                       store::ByteWriter &w)
{
    w.u32(store::kFormatVersion);
    w.u64(key.circuitFingerprint);
    w.u32(key.mode);
    w.u64(key.calibrationGeneration);
    w.u64(key.passConfigFingerprint);
    store::serializeCircuit(result.basisCircuit, w);
    store::serializeScheduleRle(result.schedule, w);
    w.i64(result.durationDt);
    w.u64(result.pulseCount);
    w.u64(result.frameChangeCount);
    w.u32(static_cast<std::uint32_t>(result.mode));
    w.u8(result.validation.ok() ? 1 : 0);
    // Scan sidecar: the memoized per-waveform validation scans, in
    // instruction order. Seeding these into the decoded waveforms lets
    // a disk hit re-validate in O(instructions) instead of re-scanning
    // every sample — which would otherwise dominate the served path.
    // The scans are already memoized here (compile() validated this
    // schedule), so serialization costs no extra sample pass.
    std::uint64_t scanned = 0;
    for (const auto &inst : result.schedule.instructions())
        if (inst.kind == PulseInstructionKind::Play &&
            inst.waveform != nullptr)
            ++scanned;
    w.u64(scanned);
    for (const auto &inst : result.schedule.instructions()) {
        if (inst.kind != PulseInstructionKind::Play ||
            inst.waveform == nullptr)
            continue;
        const WaveformScan &scan = inst.waveform->sampleScan();
        w.f64(scan.peak);
        w.i64(static_cast<std::int64_t>(scan.firstNonFinite));
    }
}

Status
deserializeCompileResult(store::ByteReader &r,
                         const CompileKey &expected_key,
                         CompileResult &out)
{
    std::uint32_t version = 0;
    if (Status s = r.u32(version); !s.ok())
        return s;
    if (version != store::kFormatVersion)
        return Status::error(ErrorCode::StoreVersionMismatch,
                             "compiled schedule payload version " +
                                 std::to_string(version));
    CompileKey echo;
    if (Status s = r.u64(echo.circuitFingerprint); !s.ok())
        return s;
    if (Status s = r.u32(echo.mode); !s.ok())
        return s;
    if (Status s = r.u64(echo.calibrationGeneration); !s.ok())
        return s;
    if (Status s = r.u64(echo.passConfigFingerprint); !s.ok())
        return s;
    if (!(echo == expected_key))
        return Status::error(ErrorCode::StoreCorrupt,
                             "compiled schedule key echo mismatch "
                             "(hash collision or mis-keyed record)");
    if (Status s = store::deserializeCircuit(r, out.basisCircuit);
        !s.ok())
        return s;
    if (Status s = store::deserializeScheduleRle(r, out.schedule);
        !s.ok())
        return s;
    std::int64_t duration = 0;
    if (Status s = r.i64(duration); !s.ok())
        return s;
    out.durationDt = static_cast<long>(duration);
    std::uint64_t count = 0;
    if (Status s = r.u64(count); !s.ok())
        return s;
    out.pulseCount = static_cast<std::size_t>(count);
    if (Status s = r.u64(count); !s.ok())
        return s;
    out.frameChangeCount = static_cast<std::size_t>(count);
    std::uint32_t mode = 0;
    if (Status s = r.u32(mode); !s.ok())
        return s;
    if (mode > static_cast<std::uint32_t>(CompileMode::Optimized))
        return Status::error(ErrorCode::StoreCorrupt,
                             "unknown compile mode " +
                                 std::to_string(mode));
    out.mode = static_cast<CompileMode>(mode);
    std::uint8_t validationOk = 0;
    if (Status s = r.u8(validationOk); !s.ok())
        return s;
    // Only validation-Ok results are ever persisted; the flag is kept
    // in the payload for format stability. The consumer re-validates
    // against its current library regardless.
    out.validation = Status::okStatus();

    // Scan sidecar (see serializeCompileResult). The count must match
    // the waveform-carrying instructions that were just decoded; a
    // mismatch means a truncated or mis-spliced record.
    std::vector<const Waveform *> waveforms;
    for (const auto &inst : out.schedule.instructions())
        if (inst.kind == PulseInstructionKind::Play &&
            inst.waveform != nullptr)
            waveforms.push_back(inst.waveform.get());
    std::uint64_t scanned = 0;
    if (Status s = r.u64(scanned); !s.ok())
        return s;
    if (scanned != waveforms.size())
        return Status::error(ErrorCode::StoreCorrupt,
                             "scan sidecar covers " +
                                 std::to_string(scanned) +
                                 " waveforms, schedule has " +
                                 std::to_string(waveforms.size()));
    for (const Waveform *waveform : waveforms) {
        WaveformScan scan;
        if (Status s = r.f64(scan.peak); !s.ok())
            return s;
        std::int64_t first = -1;
        if (Status s = r.i64(first); !s.ok())
            return s;
        scan.firstNonFinite = static_cast<long>(first);
        waveform->seedSampleScan(scan);
    }
    return Status::okStatus();
}

store::ArtifactKey
calibrationSnapshotKey(const BackendConfig &config, bool include_qutrit)
{
    store::ArtifactKey key;
    key.contentHash = store::hashBackendConfig(config);
    key.generation = 0; // Fixed key: newest record is "the latest".
    key.configFingerprint = include_qutrit ? 1 : 0;
    key.kind = static_cast<std::uint32_t>(
        store::ArtifactKind::CalibrationSnapshot);
    return key;
}

bool
libraryHasQutrit(const PulseLibrary &library)
{
    for (const QubitCalibration &qubit : library.qubits)
        if (qubit.x12Amp != 0.0)
            return true;
    return false;
}

Status
writeCalibrationSnapshot(store::ArtifactStore &store,
                         const PulseLibrary &library)
{
    static telemetry::Counter &c_writes =
        telemetry::MetricsRegistry::global().counter(
            "calibration.snapshot.writes");
    const store::ArtifactKey key = calibrationSnapshotKey(
        library.config, libraryHasQutrit(library));
    if (Status put = store::putPulseLibrary(store, key, library);
        !put.ok())
        return put;
    Status flushed = store.flush();
    if (flushed.ok())
        c_writes.increment();
    return flushed;
}

store::ArtifactKey
compileArtifactKey(const CompileKey &key)
{
    store::ArtifactKey akey;
    akey.contentHash = key.circuitFingerprint;
    akey.generation = key.calibrationGeneration;
    akey.configFingerprint =
        store::mixHash(key.passConfigFingerprint, key.mode);
    akey.kind =
        static_cast<std::uint32_t>(store::ArtifactKind::CompiledSchedule);
    return akey;
}

// ------------------------------------------------------------------
// CompileCache
// ------------------------------------------------------------------

CompileCache::CompileCache(std::size_t capacity,
                           std::shared_ptr<store::ArtifactStore> store)
    : capacity_(capacity == 0 ? 1 : capacity), store_(std::move(store))
{}

CompileCache::~CompileCache()
{
    // Best effort: don't lose buffered write-backs on teardown.
    if (store_ != nullptr)
        (void)store_->flush();
}

bool
CompileCache::loadPersistent(const CompileKey &key, CompileResult &out)
{
    if (store_ == nullptr)
        return false;
    store::ArtifactView view;
    const Status get = store_->get(compileArtifactKey(key), view);
    if (!get.ok()) {
        // Quarantined (corrupt/foreign-version) records fall back to a
        // fresh compile — fail closed, never decode untrusted bytes.
        if (get.code() == ErrorCode::StoreCorrupt ||
            get.code() == ErrorCode::StoreVersionMismatch) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.persistFallbacks;
        }
        return false;
    }
    store::ByteReader r(view.data, view.size);
    if (!deserializeCompileResult(r, key, out).ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.persistFallbacks;
        return false;
    }
    return true;
}

void
CompileCache::storePersistent(const CompileKey &key,
                              const CompileResult &result)
{
    if (store_ == nullptr)
        return;
    store::ByteWriter w;
    serializeCompileResult(key, result, w);
    if (!store_->put(compileArtifactKey(key), w.bytes()).ok())
        return;
    if (pendingPuts_.fetch_add(1, std::memory_order_acq_rel) + 1 >=
        kAutoFlushPuts) {
        pendingPuts_.store(0, std::memory_order_release);
        (void)store_->flush();
    }
}

CompileResult
CompileCache::getOrCompile(const CompileKey &key,
                           const std::function<CompileResult()> &compileFn,
                           bool *from_cache)
{
    static telemetry::Counter &c_hits =
        cacheCounter("compile.cache.hits");
    static telemetry::Counter &c_misses =
        cacheCounter("compile.cache.misses");
    static telemetry::Counter &c_persist_hits =
        cacheCounter("compile.cache.persist_hits");
    static telemetry::Counter &c_coalesced =
        cacheCounter("compile.cache.singleflight_coalesced");

    if (from_cache != nullptr)
        *from_cache = false;

    for (;;) {
        std::shared_ptr<InFlight> flight;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = index_.find(key);
            if (it != index_.end()) {
                lru_.splice(lru_.begin(), lru_, it->second);
                ++stats_.hits;
                c_hits.increment();
                if (from_cache != nullptr)
                    *from_cache = true;
                return *it->second->result;
            }
            auto fit = inflight_.find(key);
            if (fit != inflight_.end()) {
                flight = fit->second;
            } else {
                flight = std::make_shared<InFlight>();
                inflight_.emplace(key, flight);
                leader = true;
            }
        }

        if (!leader) {
            // Single-flight follower: block until the leader finishes,
            // then serve its result without recompiling.
            std::shared_ptr<const CompileResult> result;
            {
                std::unique_lock<std::mutex> fl(flight->m);
                flight->cv.wait(fl, [&] { return flight->done; });
                result = flight->result;
            }
            if (result == nullptr)
                continue; // Leader failed; retry (maybe as leader).
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.coalesced;
            }
            c_coalesced.increment();
            if (from_cache != nullptr)
                *from_cache = true;
            return *result;
        }

        // Leader: probe the persistent tier, else compile. Both run
        // with every cache lock released (leaf-lock contract).
        std::shared_ptr<const CompileResult> result;
        bool persist_hit = false;
        try {
            CompileResult loaded{QuantumCircuit(1)};
            if (loadPersistent(key, loaded)) {
                persist_hit = true;
                result = std::make_shared<const CompileResult>(
                    std::move(loaded));
            } else {
                result =
                    std::make_shared<const CompileResult>(compileFn());
            }
        } catch (...) {
            // Unblock followers (they will retry) before propagating.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                inflight_.erase(key);
            }
            {
                std::lock_guard<std::mutex> fl(flight->m);
                flight->done = true;
            }
            flight->cv.notify_all();
            throw;
        }

        // Results that failed validation are served but never cached:
        // a miscalibrated cmd_def must keep failing loudly, not get
        // pinned into the cache.
        const bool cacheable = result->validation.ok();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (persist_hit)
                ++stats_.persistHits;
            else
                ++stats_.misses;
            if (cacheable) {
                lru_.push_front(Entry{key, result});
                index_[key] = lru_.begin();
                ++stats_.insertions;
                if (lru_.size() > capacity_) {
                    index_.erase(lru_.back().key);
                    lru_.pop_back();
                    ++stats_.evictions;
                }
            }
            inflight_.erase(key);
        }
        if (persist_hit)
            c_persist_hits.increment();
        else
            c_misses.increment();
        {
            std::lock_guard<std::mutex> fl(flight->m);
            flight->result = result;
            flight->done = true;
        }
        flight->cv.notify_all();
        if (!persist_hit && cacheable)
            storePersistent(key, *result);
        if (from_cache != nullptr)
            *from_cache = persist_hit;
        return *result;
    }
}

Status
CompileCache::flush()
{
    if (store_ == nullptr)
        return Status::okStatus();
    pendingPuts_.store(0, std::memory_order_release);
    return store_->flush();
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
}

std::size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

CompileCacheStats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace qpulse
