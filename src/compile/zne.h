/**
 * @file
 * Zero-noise extrapolation (ZNE) via pulse stretching — the other
 * application of OpenPulse control the paper cites ([8], Garmon et
 * al., "Benchmarking noise extrapolation with OpenPulse"). Because
 * pulse-level control lets the compiler stretch every pulse by a
 * global factor c >= 1, the same computation can be executed at
 * amplified noise levels; Richardson-extrapolating the measured
 * expectation value back to c = 0 estimates the noise-free result.
 *
 * The stretch is implemented exactly as hardware would realise it:
 * every gate's schedule duration and pulse-error weights scale by c
 * in the duration-aware noise model (time-dilated pulses decohere and
 * accumulate control error proportionally).
 */
#ifndef QPULSE_COMPILE_ZNE_H
#define QPULSE_COMPILE_ZNE_H

#include "compile/compiler.h"

namespace qpulse {

/** Result of a zero-noise extrapolation run. */
struct ZneResult
{
    std::vector<double> stretchFactors; ///< The c values executed.
    std::vector<double> measured;       ///< Expectation at each c.
    double extrapolated = 0.0;          ///< Richardson estimate at c=0.
    double unmitigated = 0.0;           ///< The c = 1 value.
};

/**
 * A diagonal observable: eigenvalue per computational basis state
 * (e.g. ZZ parity = +1/-1/-1/+1, or a MAXCUT value vector).
 */
using DiagonalObservable = std::vector<double>;

/**
 * Run ZNE: execute the circuit at each stretch factor through the
 * compiler's noise model, measure the observable from `shots` sampled
 * counts, and Richardson-extrapolate to zero noise (polynomial of
 * degree len(stretches) - 1 through the points, evaluated at c = 0).
 *
 * @param compiler   Compiler/backend pair to execute with.
 * @param circuit    The program (no measure gates; added internally).
 * @param observable Per-basis-state eigenvalues, length 2^n.
 * @param stretches  Stretch factors, ascending, starting at 1.0.
 */
ZneResult zeroNoiseExtrapolate(const PulseCompiler &compiler,
                               const QuantumCircuit &circuit,
                               const DiagonalObservable &observable,
                               const std::vector<double> &stretches,
                               long shots, Rng &rng);

/** Richardson extrapolation helper: the unique polynomial through
 *  (x_i, y_i) evaluated at x = 0. */
double richardsonExtrapolate(const std::vector<double> &xs,
                             const std::vector<double> &ys);

} // namespace qpulse

#endif // QPULSE_COMPILE_ZNE_H
