/**
 * @file
 * PulseCompiler: the end-to-end compiler of Figure 1. It owns a
 * calibrated PulseBackend and a transpiler pipeline, and lowers
 * hardware-agnostic assembly circuits down to pulse schedules in one
 * of two modes:
 *
 *  - Standard:  the conventional Qiskit-style flow — every 1q gate
 *    becomes a U3 (two X90 pulses + frame changes, Equation 2), every
 *    two-qubit operation goes through monolithic calibrated CNOTs.
 *  - Optimized: this paper's flow — the augmented basis gates
 *    (DirectX / DirectRx / CR(theta) / CR halves) plus the CD + ABGD
 *    template passes, yielding shorter schedules with fewer calibrated
 *    pulse applications.
 *
 * The compiler also produces the per-gate noise accounting consumed by
 * the duration-aware density-matrix simulator, so that compiled
 * programs can be executed under the paper's three-source error model.
 */
#ifndef QPULSE_COMPILE_COMPILER_H
#define QPULSE_COMPILE_COMPILER_H

#include <memory>

#include "device/pulse_backend.h"
#include "noisesim/density_sim.h"
#include "transpile/passes.h"
#include "transpile/routing.h"

namespace qpulse {

/** Which of the two Figure 1 flows to run. */
enum class CompileMode
{
    Standard,
    Optimized,
};

/** Everything a compile produces. */
struct CompileResult
{
    explicit CompileResult(QuantumCircuit basis)
        : basisCircuit(std::move(basis))
    {}

    QuantumCircuit basisCircuit;  ///< After the transpiler pipeline.
    Schedule schedule;            ///< The lowered pulse schedule.
    long durationDt = 0;          ///< Schedule makespan in dt.
    std::size_t pulseCount = 0;   ///< Play instructions (non-measure).
    std::size_t frameChangeCount = 0; ///< Virtual-Z instructions.
    CompileMode mode = CompileMode::Standard;

    /**
     * Structural validation of the lowered schedule against the
     * backend's channel budget (device/schedule_validation.h), run as
     * part of compile(). The compiler's own output always passes on a
     * healthy library; a non-Ok code here means a cmd_def entry is
     * miscalibrated (e.g. an augmented DirectRx scaled past |d| = 1)
     * and flags it *before* the schedule is submitted anywhere —
     * consumers can divert to the standard decomposition instead of
     * letting PulseBackend::runShots throw.
     */
    Status validation;

    /** Makespan in nanoseconds. */
    double durationNs() const;
};

/**
 * The end-to-end gate-to-pulse compiler.
 */
class PulseCompiler
{
  public:
    PulseCompiler(std::shared_ptr<const PulseBackend> backend,
                  CompileMode mode);

    CompileMode mode() const { return mode_; }
    const PulseBackend &backend() const { return *backend_; }

    /** Run the transpiler pipeline only (assembly -> basis gates). */
    QuantumCircuit transpile(const QuantumCircuit &circuit) const;

    /**
     * Route a circuit onto the backend's coupling graph (greedy SWAP
     * insertion). Needed before compile() when the circuit touches
     * non-neighbouring pairs; remember to read measurement outcomes
     * through the returned final layout.
     */
    RoutingResult route(const QuantumCircuit &circuit) const;

    /** Full lowering: assembly -> basis gates -> pulse schedule. */
    CompileResult compile(const QuantumCircuit &circuit) const;

    /**
     * Per-gate noise accounting for the DensitySimulator, computed
     * from the backend's cmd_def schedules: duration, per-pulse error
     * weights and peak amplitude.
     */
    NoiseInfoProvider noiseProvider() const;

    /** Convenience: a density simulator wired to this backend. */
    DensitySimulator makeSimulator() const;

  private:
    std::shared_ptr<const PulseBackend> backend_;
    CompileMode mode_;
    TranspilerTarget target_;
};

/** Build a calibrated backend for a config (runs the calibration). */
std::shared_ptr<const PulseBackend>
makeCalibratedBackend(const BackendConfig &config,
                      bool include_qutrit = false);

} // namespace qpulse

#endif // QPULSE_COMPILE_COMPILER_H
