/**
 * @file
 * PulseCompiler: the end-to-end compiler of Figure 1. It owns a
 * calibrated PulseBackend and a transpiler pipeline, and lowers
 * hardware-agnostic assembly circuits down to pulse schedules in one
 * of two modes:
 *
 *  - Standard:  the conventional Qiskit-style flow — every 1q gate
 *    becomes a U3 (two X90 pulses + frame changes, Equation 2), every
 *    two-qubit operation goes through monolithic calibrated CNOTs.
 *  - Optimized: this paper's flow — the augmented basis gates
 *    (DirectX / DirectRx / CR(theta) / CR halves) plus the CD + ABGD
 *    template passes, yielding shorter schedules with fewer calibrated
 *    pulse applications.
 *
 * The compiler also produces the per-gate noise accounting consumed by
 * the duration-aware density-matrix simulator, so that compiled
 * programs can be executed under the paper's three-source error model.
 */
#ifndef QPULSE_COMPILE_COMPILER_H
#define QPULSE_COMPILE_COMPILER_H

#include <cstdint>
#include <memory>

#include "device/pulse_backend.h"
#include "noisesim/density_sim.h"
#include "transpile/passes.h"
#include "transpile/routing.h"

namespace qpulse {

class CompileCache;
struct CompileKey;
namespace store {
class ArtifactStore;
}

/** Which of the two Figure 1 flows to run. */
enum class CompileMode
{
    Standard,
    Optimized,
};

/** Everything a compile produces. */
struct CompileResult
{
    explicit CompileResult(QuantumCircuit basis)
        : basisCircuit(std::move(basis))
    {}

    QuantumCircuit basisCircuit;  ///< After the transpiler pipeline.
    Schedule schedule;            ///< The lowered pulse schedule.
    long durationDt = 0;          ///< Schedule makespan in dt.
    std::size_t pulseCount = 0;   ///< Play instructions (non-measure).
    std::size_t frameChangeCount = 0; ///< Virtual-Z instructions.
    CompileMode mode = CompileMode::Standard;

    /**
     * Structural validation of the lowered schedule against the
     * backend's channel budget (device/schedule_validation.h), run as
     * part of compile(). The compiler's own output always passes on a
     * healthy library; a non-Ok code here means a cmd_def entry is
     * miscalibrated (e.g. an augmented DirectRx scaled past |d| = 1)
     * and flags it *before* the schedule is submitted anywhere —
     * consumers can divert to the standard decomposition instead of
     * letting PulseBackend::runShots throw.
     */
    Status validation;

    /** Makespan in nanoseconds. */
    double durationNs() const;
};

/**
 * The end-to-end gate-to-pulse compiler.
 */
class PulseCompiler
{
  public:
    PulseCompiler(std::shared_ptr<const PulseBackend> backend,
                  CompileMode mode);

    CompileMode mode() const { return mode_; }
    const PulseBackend &backend() const { return *backend_; }

    /** Run the transpiler pipeline only (assembly -> basis gates). */
    QuantumCircuit transpile(const QuantumCircuit &circuit) const;

    /**
     * Route a circuit onto the backend's coupling graph (greedy SWAP
     * insertion). Needed before compile() when the circuit touches
     * non-neighbouring pairs; remember to read measurement outcomes
     * through the returned final layout.
     */
    RoutingResult route(const QuantumCircuit &circuit) const;

    /**
     * Full lowering: assembly -> basis gates -> pulse schedule. With a
     * compile cache attached, a key hit skips the whole pipeline but
     * still re-runs validateSchedule against the current library
     * before the result is returned (a stale or miscalibrated record
     * can never be served unchecked).
     */
    CompileResult compile(const QuantumCircuit &circuit) const;

    /**
     * Attach a (shareable) two-tier compile cache; nullptr detaches.
     * Without a cache, compile() behaves exactly as before — the
     * no-cache path stays bit-identical.
     */
    void setCompileCache(std::shared_ptr<CompileCache> cache);
    const std::shared_ptr<CompileCache> &compileCache() const
    {
        return cache_;
    }

    /**
     * Generation component of this compiler's cache keys. Defaults to
     * calibrationGeneration(library, 0); recalibration owners bump it
     * so schedules compiled under the old calibration miss.
     */
    std::uint64_t compileGeneration() const { return generation_; }
    void setCompileGeneration(std::uint64_t generation)
    {
        generation_ = generation;
    }

    /** The exact key compile(circuit) memoizes under (for dedup). */
    CompileKey cacheKey(const QuantumCircuit &circuit) const;

    /**
     * Per-gate noise accounting for the DensitySimulator, computed
     * from the backend's cmd_def schedules: duration, per-pulse error
     * weights and peak amplitude.
     */
    NoiseInfoProvider noiseProvider() const;

    /** Convenience: a density simulator wired to this backend. */
    DensitySimulator makeSimulator() const;

  private:
    /** The original uncached pipeline (transpile/schedule/validate). */
    CompileResult compileUncached(const QuantumCircuit &circuit) const;

    std::shared_ptr<const PulseBackend> backend_;
    CompileMode mode_;
    TranspilerTarget target_;
    std::shared_ptr<CompileCache> cache_;
    std::uint64_t generation_ = 0;
    std::uint64_t passFingerprint_ = 0;
};

/** Build a calibrated backend for a config (runs the calibration). */
std::shared_ptr<const PulseBackend>
makeCalibratedBackend(const BackendConfig &config,
                      bool include_qutrit = false);

/**
 * Snapshot-bootstrapped calibration: when `store` holds a
 * CalibrationSnapshot for this exact config (hashBackendConfig keyed),
 * the backend is built from the persisted PulseLibrary and the full
 * calibration sweep is skipped entirely; otherwise the sweep runs and
 * its library is written back (and flushed) for the next process.
 * `loaded_from_snapshot` reports which path ran. A corrupt or
 * mismatched snapshot falls back to the fresh sweep (fail closed).
 */
std::shared_ptr<const PulseBackend>
makeCalibratedBackend(const BackendConfig &config, bool include_qutrit,
                      const std::shared_ptr<store::ArtifactStore> &store,
                      bool *loaded_from_snapshot = nullptr);

} // namespace qpulse

#endif // QPULSE_COMPILE_COMPILER_H
