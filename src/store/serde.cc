#include "store/serde.h"

#include <array>
#include <bit>
#include <cstring>

#include "common/constants.h"
#include "linalg/simd.h"
#include "pulsesim/simulator.h"

namespace qpulse {
namespace store {

namespace {

/**
 * Lazily built CRC-64/XZ tables (ECMA-182 polynomial, reflected),
 * slice-by-16: table[0] is the classic byte-at-a-time table; table[k]
 * advances a byte through k additional zero bytes, so sixteen input
 * bytes fold per loop iteration. Identical output to the byte-wise
 * loop — record validation sits on the cold-start serve path, and the
 * update is a serial dependency chain, so halving the iterations
 * (vs slice-by-8) is a direct latency win worth the 32 KiB of tables.
 */
const std::array<std::array<std::uint64_t, 256>, 16> &
crcTables()
{
    static const std::array<std::array<std::uint64_t, 256>, 16>
        tables = [] {
            std::array<std::array<std::uint64_t, 256>, 16> t{};
            constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ull;
            for (std::uint64_t i = 0; i < 256; ++i) {
                std::uint64_t crc = i;
                for (int bit = 0; bit < 8; ++bit)
                    crc = (crc >> 1) ^ (kPoly & (0ull - (crc & 1)));
                t[0][i] = crc;
            }
            for (std::size_t k = 1; k < 16; ++k)
                for (std::size_t i = 0; i < 256; ++i)
                    t[k][i] = (t[k - 1][i] >> 8) ^
                              t[0][t[k - 1][i] & 0xFF];
            return t;
        }();
    return tables;
}

Status
corrupt(const std::string &what)
{
    return Status::error(ErrorCode::StoreCorrupt, what);
}

constexpr bool kHostLittleEndian =
    std::endian::native == std::endian::little;

constexpr std::uint64_t
byteswap64(std::uint64_t v)
{
    v = ((v & 0x00FF00FF00FF00FFull) << 8) |
        ((v >> 8) & 0x00FF00FF00FF00FFull);
    v = ((v & 0x0000FFFF0000FFFFull) << 16) |
        ((v >> 16) & 0x0000FFFF0000FFFFull);
    return (v << 32) | (v >> 32);
}

} // namespace

std::uint64_t
crc64(const void *bytes, std::size_t size, std::uint64_t seed)
{
    const auto &t = crcTables();
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    std::uint64_t crc = ~seed;
    while (size >= 16) {
        std::uint64_t lo, hi;
        std::memcpy(&lo, p, 8);
        std::memcpy(&hi, p + 8, 8);
        if constexpr (!kHostLittleEndian) {
            lo = byteswap64(lo);
            hi = byteswap64(hi);
        }
        lo ^= crc;
        crc = t[15][lo & 0xFF] ^ t[14][(lo >> 8) & 0xFF] ^
              t[13][(lo >> 16) & 0xFF] ^ t[12][(lo >> 24) & 0xFF] ^
              t[11][(lo >> 32) & 0xFF] ^ t[10][(lo >> 40) & 0xFF] ^
              t[9][(lo >> 48) & 0xFF] ^ t[8][lo >> 56] ^
              t[7][hi & 0xFF] ^ t[6][(hi >> 8) & 0xFF] ^
              t[5][(hi >> 16) & 0xFF] ^ t[4][(hi >> 24) & 0xFF] ^
              t[3][(hi >> 32) & 0xFF] ^ t[2][(hi >> 40) & 0xFF] ^
              t[1][(hi >> 48) & 0xFF] ^ t[0][hi >> 56];
        p += 16;
        size -= 16;
    }
    while (size >= 8) {
        std::uint64_t block;
        std::memcpy(&block, p, 8);
        if constexpr (!kHostLittleEndian)
            block = byteswap64(block);
        crc ^= block;
        crc = t[7][crc & 0xFF] ^ t[6][(crc >> 8) & 0xFF] ^
              t[5][(crc >> 16) & 0xFF] ^ t[4][(crc >> 24) & 0xFF] ^
              t[3][(crc >> 32) & 0xFF] ^ t[2][(crc >> 40) & 0xFF] ^
              t[1][(crc >> 48) & 0xFF] ^ t[0][crc >> 56];
        p += 8;
        size -= 8;
    }
    for (std::size_t i = 0; i < size; ++i)
        crc = t[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

std::uint64_t
hashBytes(const void *bytes, std::size_t size, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

std::uint64_t
mixHash(std::uint64_t a, std::uint64_t b)
{
    // splitmix64 finalizer over the ordered pair.
    std::uint64_t z = a + 0x9E3779B97F4A7C15ull + (b << 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31) ^ b;
}

// ------------------------------------------------------------------
// ByteWriter
// ------------------------------------------------------------------

void
ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
ByteWriter::c128(const Complex &v)
{
    f64(v.real());
    f64(v.imag());
}

void
ByteWriter::str(const std::string &v)
{
    u64(v.size());
    raw(v.data(), v.size());
}

void
ByteWriter::raw(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    bytes_.insert(bytes_.end(), p, p + size);
}

void
ByteWriter::i64Array(const std::int64_t *src, std::size_t count)
{
    if constexpr (kHostLittleEndian) {
        raw(src, count * sizeof(std::int64_t));
    } else {
        for (std::size_t i = 0; i < count; ++i)
            i64(src[i]);
    }
}

void
ByteWriter::f64Array(const double *src, std::size_t count)
{
    if constexpr (kHostLittleEndian) {
        raw(src, count * sizeof(double));
    } else {
        for (std::size_t i = 0; i < count; ++i)
            f64(src[i]);
    }
}

// ------------------------------------------------------------------
// ByteReader
// ------------------------------------------------------------------

Status
ByteReader::need(std::size_t n)
{
    if (size_ - pos_ < n)
        return corrupt("record payload truncated: wanted " +
                       std::to_string(n) + " bytes, have " +
                       std::to_string(size_ - pos_));
    return Status::okStatus();
}

Status
ByteReader::u8(std::uint8_t &v)
{
    if (Status s = need(1); !s.ok())
        return s;
    v = data_[pos_++];
    return Status::okStatus();
}

Status
ByteReader::u32(std::uint32_t &v)
{
    if (Status s = need(4); !s.ok())
        return s;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return Status::okStatus();
}

Status
ByteReader::u64(std::uint64_t &v)
{
    if (Status s = need(8); !s.ok())
        return s;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return Status::okStatus();
}

Status
ByteReader::i64(std::int64_t &v)
{
    std::uint64_t raw = 0;
    if (Status s = u64(raw); !s.ok())
        return s;
    v = static_cast<std::int64_t>(raw);
    return Status::okStatus();
}

Status
ByteReader::f64(double &v)
{
    std::uint64_t raw = 0;
    if (Status s = u64(raw); !s.ok())
        return s;
    v = std::bit_cast<double>(raw);
    return Status::okStatus();
}

Status
ByteReader::c128(Complex &v)
{
    double re = 0.0, im = 0.0;
    if (Status s = f64(re); !s.ok())
        return s;
    if (Status s = f64(im); !s.ok())
        return s;
    v = Complex{re, im};
    return Status::okStatus();
}

Status
ByteReader::str(std::string &v)
{
    std::uint64_t size = 0;
    if (Status s = u64(size); !s.ok())
        return s;
    // Compare in u64 before narrowing: on a 32-bit size_t a huge
    // length would otherwise truncate and pass the bounds check.
    if (size > remaining())
        return corrupt("string of " + std::to_string(size) +
                       " bytes beyond the payload");
    v.assign(reinterpret_cast<const char *>(data_ + pos_),
             static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return Status::okStatus();
}

Status
ByteReader::i64Array(std::int64_t *dst, std::size_t count)
{
    // Division, not `need(count * 8)`: a huge count must not wrap the
    // byte total past the bounds check.
    if (count > remaining() / sizeof(std::int64_t))
        return corrupt("array of " + std::to_string(count) +
                       " words beyond the payload");
    if constexpr (kHostLittleEndian) {
        std::memcpy(dst, data_ + pos_, count * sizeof(std::int64_t));
        pos_ += count * sizeof(std::int64_t);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            i64(dst[i]);
    }
    return Status::okStatus();
}

Status
ByteReader::f64Array(double *dst, std::size_t count)
{
    if (count > remaining() / sizeof(double))
        return corrupt("array of " + std::to_string(count) +
                       " values beyond the payload");
    if constexpr (kHostLittleEndian) {
        std::memcpy(dst, data_ + pos_, count * sizeof(double));
        pos_ += count * sizeof(double);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            f64(dst[i]);
    }
    return Status::okStatus();
}

// ------------------------------------------------------------------
// Matrix / PropagatorKey
// ------------------------------------------------------------------

void
serializeMatrix(const Matrix &m, ByteWriter &w)
{
    w.u64(m.rows());
    w.u64(m.cols());
    // std::complex<double> is layout-compatible with double[2]
    // (re, im) — the bulk append writes the same consecutive
    // little-endian f64 pairs c128 would.
    w.f64Array(reinterpret_cast<const double *>(m.data().data()),
               m.data().size() * 2);
}

Status
deserializeMatrix(ByteReader &r, Matrix &out)
{
    std::uint64_t rows = 0, cols = 0;
    if (Status s = r.u64(rows); !s.ok())
        return s;
    if (Status s = r.u64(cols); !s.ok())
        return s;
    // Entries are 16 bytes each; bound the claimed shape by the bytes
    // actually present so a corrupt header cannot trigger a huge
    // allocation before the payload read fails. The product is tested
    // by division — `rows * cols` itself can wrap u64 (e.g. 2^33 x
    // 2^33) and slip past a multiplied check, yielding a Matrix whose
    // rows()/cols() disagree with its backing storage.
    const std::uint64_t max_entries = r.remaining() / 16;
    if (rows != 0 && cols > max_entries / rows)
        return corrupt("matrix header claims " + std::to_string(rows) +
                       "x" + std::to_string(cols) +
                       " entries beyond the payload");
    out.resize(static_cast<std::size_t>(rows),
               static_cast<std::size_t>(cols));
    return r.f64Array(reinterpret_cast<double *>(out.data().data()),
                      out.data().size() * 2);
}

void
serializePropagatorKey(const PropagatorKey &key, ByteWriter &w)
{
    w.u64(key.words.size());
    w.i64Array(key.words.data(), key.words.size());
}

Status
deserializePropagatorKey(ByteReader &r, PropagatorKey &out)
{
    std::uint64_t count = 0;
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 8)
        return corrupt("propagator key claims " + std::to_string(count) +
                       " words beyond the payload");
    out.words.resize(static_cast<std::size_t>(count));
    return r.i64Array(out.words.data(), out.words.size());
}

// ------------------------------------------------------------------
// Schedule
// ------------------------------------------------------------------

void
serializeSchedule(const Schedule &schedule, ByteWriter &w)
{
    w.str(schedule.name());
    const auto &instructions = schedule.instructions();
    w.u64(instructions.size());
    for (const PulseInstruction &instr : instructions) {
        w.u8(static_cast<std::uint8_t>(instr.kind));
        w.u8(static_cast<std::uint8_t>(instr.channel.kind));
        w.u64(instr.channel.index);
        w.i64(instr.startTime);
        w.f64(instr.phase);
        w.f64(instr.frequencyGhz);
        w.i64(instr.duration);
        if (instr.kind == PulseInstructionKind::Play &&
            instr.waveform != nullptr) {
            const std::vector<Complex> samples =
                instr.waveform->samples();
            w.str(instr.waveform->name());
            w.u64(samples.size());
            for (const Complex &sample : samples)
                w.c128(sample);
        } else {
            w.str(std::string());
            w.u64(0);
        }
    }
}

Status
deserializeSchedule(ByteReader &r, Schedule &out)
{
    std::string name;
    if (Status s = r.str(name); !s.ok())
        return s;
    out = Schedule(std::move(name));
    std::uint64_t count = 0;
    if (Status s = r.u64(count); !s.ok())
        return s;
    for (std::uint64_t i = 0; i < count; ++i) {
        PulseInstruction instr;
        std::uint8_t kind = 0, chanKind = 0;
        std::uint64_t chanIndex = 0;
        if (Status s = r.u8(kind); !s.ok())
            return s;
        if (kind > static_cast<std::uint8_t>(
                       PulseInstructionKind::Acquire))
            return corrupt("unknown instruction kind " +
                           std::to_string(kind));
        if (Status s = r.u8(chanKind); !s.ok())
            return s;
        if (chanKind >
            static_cast<std::uint8_t>(ChannelKind::Acquire))
            return corrupt("unknown channel kind " +
                           std::to_string(chanKind));
        if (Status s = r.u64(chanIndex); !s.ok())
            return s;
        instr.kind = static_cast<PulseInstructionKind>(kind);
        instr.channel.kind = static_cast<ChannelKind>(chanKind);
        instr.channel.index = static_cast<std::size_t>(chanIndex);
        if (Status s = r.i64(instr.startTime); !s.ok())
            return s;
        if (Status s = r.f64(instr.phase); !s.ok())
            return s;
        if (Status s = r.f64(instr.frequencyGhz); !s.ok())
            return s;
        if (Status s = r.i64(instr.duration); !s.ok())
            return s;
        std::string label;
        if (Status s = r.str(label); !s.ok())
            return s;
        std::uint64_t sampleCount = 0;
        if (Status s = r.u64(sampleCount); !s.ok())
            return s;
        if (sampleCount > r.remaining() / 16)
            return corrupt("waveform claims " +
                           std::to_string(sampleCount) +
                           " samples beyond the payload");
        if (sampleCount > 0) {
            std::vector<Complex> samples(
                static_cast<std::size_t>(sampleCount));
            for (Complex &sample : samples)
                if (Status s = r.c128(sample); !s.ok())
                    return s;
            instr.waveform = std::make_shared<SampledWaveform>(
                std::move(samples), std::move(label));
        }
        out.addInstruction(std::move(instr));
    }
    return Status::okStatus();
}

// ------------------------------------------------------------------
// PulseLibrary (calibration snapshot)
// ------------------------------------------------------------------

namespace {

void
serializeBackendConfig(const BackendConfig &config, ByteWriter &w)
{
    w.str(config.name);
    w.u64(config.numQubits);
    w.u64(config.qubits.size());
    for (const TransmonParams &q : config.qubits) {
        w.f64(q.frequencyGhz);
        w.f64(q.anharmonicityGhz);
        w.f64(q.driveStrengthGhz);
        w.f64(q.t1Us);
        w.f64(q.t2Us);
    }
    w.u64(config.couplings.size());
    for (const CouplingEdge &edge : config.couplings) {
        w.u64(edge.control);
        w.u64(edge.target);
        w.f64(edge.strengthGhz);
    }
    w.u64(config.readout.size());
    for (const ReadoutError &err : config.readout) {
        w.f64(err.probFlip0to1);
        w.f64(err.probFlip1to0);
    }
    w.f64(config.noise.perPulseError1q);
    w.f64(config.noise.perPulseError2q);
    w.f64(config.noise.amplitudeError);
    w.f64(config.noise.leakagePerAmpSq);
    w.i64(config.pulseDuration);
    w.f64(config.pulseSigma);
    w.i64(config.crRisefall);
    w.f64(config.crAmplitude);
    w.i64(config.measureDuration);
}

Status
deserializeBackendConfig(ByteReader &r, BackendConfig &out)
{
    if (Status s = r.str(out.name); !s.ok())
        return s;
    std::uint64_t numQubits = 0;
    if (Status s = r.u64(numQubits); !s.ok())
        return s;
    out.numQubits = static_cast<std::size_t>(numQubits);
    std::uint64_t count = 0;
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 40)
        return corrupt("config claims too many qubits");
    out.qubits.resize(static_cast<std::size_t>(count));
    for (TransmonParams &q : out.qubits) {
        if (Status s = r.f64(q.frequencyGhz); !s.ok())
            return s;
        if (Status s = r.f64(q.anharmonicityGhz); !s.ok())
            return s;
        if (Status s = r.f64(q.driveStrengthGhz); !s.ok())
            return s;
        if (Status s = r.f64(q.t1Us); !s.ok())
            return s;
        if (Status s = r.f64(q.t2Us); !s.ok())
            return s;
    }
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 24)
        return corrupt("config claims too many couplings");
    out.couplings.resize(static_cast<std::size_t>(count));
    for (CouplingEdge &edge : out.couplings) {
        std::uint64_t control = 0, target = 0;
        if (Status s = r.u64(control); !s.ok())
            return s;
        if (Status s = r.u64(target); !s.ok())
            return s;
        edge.control = static_cast<std::size_t>(control);
        edge.target = static_cast<std::size_t>(target);
        if (Status s = r.f64(edge.strengthGhz); !s.ok())
            return s;
    }
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 16)
        return corrupt("config claims too many readout entries");
    out.readout.resize(static_cast<std::size_t>(count));
    for (ReadoutError &err : out.readout) {
        if (Status s = r.f64(err.probFlip0to1); !s.ok())
            return s;
        if (Status s = r.f64(err.probFlip1to0); !s.ok())
            return s;
    }
    if (Status s = r.f64(out.noise.perPulseError1q); !s.ok())
        return s;
    if (Status s = r.f64(out.noise.perPulseError2q); !s.ok())
        return s;
    if (Status s = r.f64(out.noise.amplitudeError); !s.ok())
        return s;
    if (Status s = r.f64(out.noise.leakagePerAmpSq); !s.ok())
        return s;
    if (Status s = r.i64(out.pulseDuration); !s.ok())
        return s;
    if (Status s = r.f64(out.pulseSigma); !s.ok())
        return s;
    if (Status s = r.i64(out.crRisefall); !s.ok())
        return s;
    if (Status s = r.f64(out.crAmplitude); !s.ok())
        return s;
    if (Status s = r.i64(out.measureDuration); !s.ok())
        return s;
    return Status::okStatus();
}

} // namespace

void
serializePulseLibrary(const PulseLibrary &library, ByteWriter &w)
{
    serializeBackendConfig(library.config, w);
    w.u64(library.qubits.size());
    for (const QubitCalibration &cal : library.qubits) {
        w.i64(cal.duration);
        w.f64(cal.sigma);
        w.f64(cal.x90Amp);
        w.f64(cal.x180Amp);
        w.f64(cal.dragBeta);
        w.f64(cal.x12Amp);
        w.f64(cal.x02Amp);
        w.i64(cal.qutritDuration);
    }
    w.u64(library.crs.size());
    for (const CrCalibration &cr : library.crs) {
        w.u64(cr.control);
        w.u64(cr.target);
        w.f64(cr.amplitude);
        w.i64(cr.risefall);
        w.f64(cr.sigma);
        w.i64(cr.flatFor90);
        w.f64(cr.radPerDtFlat);
        w.f64(cr.radAtZeroFlat);
        w.f64(cr.phaseFixControl);
        w.f64(cr.phaseFixTarget);
        w.f64(cr.axisPhaseTarget);
        w.u64(cr.fixTable.size());
        for (const CrCalibration::PhaseFixPoint &fix : cr.fixTable) {
            w.f64(fix.theta);
            w.f64(fix.control);
            w.f64(fix.target);
            w.f64(fix.axis);
        }
    }
}

Status
deserializePulseLibrary(ByteReader &r, PulseLibrary &out)
{
    if (Status s = deserializeBackendConfig(r, out.config); !s.ok())
        return s;
    std::uint64_t count = 0;
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 64)
        return corrupt("library claims too many qubit calibrations");
    out.qubits.resize(static_cast<std::size_t>(count));
    for (QubitCalibration &cal : out.qubits) {
        if (Status s = r.i64(cal.duration); !s.ok())
            return s;
        if (Status s = r.f64(cal.sigma); !s.ok())
            return s;
        if (Status s = r.f64(cal.x90Amp); !s.ok())
            return s;
        if (Status s = r.f64(cal.x180Amp); !s.ok())
            return s;
        if (Status s = r.f64(cal.dragBeta); !s.ok())
            return s;
        if (Status s = r.f64(cal.x12Amp); !s.ok())
            return s;
        if (Status s = r.f64(cal.x02Amp); !s.ok())
            return s;
        if (Status s = r.i64(cal.qutritDuration); !s.ok())
            return s;
    }
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 96)
        return corrupt("library claims too many CR calibrations");
    out.crs.resize(static_cast<std::size_t>(count));
    for (CrCalibration &cr : out.crs) {
        std::uint64_t control = 0, target = 0;
        if (Status s = r.u64(control); !s.ok())
            return s;
        if (Status s = r.u64(target); !s.ok())
            return s;
        cr.control = static_cast<std::size_t>(control);
        cr.target = static_cast<std::size_t>(target);
        if (Status s = r.f64(cr.amplitude); !s.ok())
            return s;
        if (Status s = r.i64(cr.risefall); !s.ok())
            return s;
        if (Status s = r.f64(cr.sigma); !s.ok())
            return s;
        if (Status s = r.i64(cr.flatFor90); !s.ok())
            return s;
        if (Status s = r.f64(cr.radPerDtFlat); !s.ok())
            return s;
        if (Status s = r.f64(cr.radAtZeroFlat); !s.ok())
            return s;
        if (Status s = r.f64(cr.phaseFixControl); !s.ok())
            return s;
        if (Status s = r.f64(cr.phaseFixTarget); !s.ok())
            return s;
        if (Status s = r.f64(cr.axisPhaseTarget); !s.ok())
            return s;
        std::uint64_t fixCount = 0;
        if (Status s = r.u64(fixCount); !s.ok())
            return s;
        if (fixCount > r.remaining() / 32)
            return corrupt("CR fix table beyond the payload");
        cr.fixTable.resize(static_cast<std::size_t>(fixCount));
        for (CrCalibration::PhaseFixPoint &fix : cr.fixTable) {
            if (Status s = r.f64(fix.theta); !s.ok())
                return s;
            if (Status s = r.f64(fix.control); !s.ok())
                return s;
            if (Status s = r.f64(fix.target); !s.ok())
                return s;
            if (Status s = r.f64(fix.axis); !s.ok())
                return s;
        }
    }
    return Status::okStatus();
}

// ------------------------------------------------------------------
// Content hashes / fingerprints
// ------------------------------------------------------------------

std::uint64_t
hashSchedule(const Schedule &schedule)
{
    ByteWriter w;
    serializeSchedule(schedule, w);
    return hashBytes(w.bytes().data(), w.size());
}

std::uint64_t
hashPulseLibrary(const PulseLibrary &library)
{
    ByteWriter w;
    serializePulseLibrary(library, w);
    return hashBytes(w.bytes().data(), w.size());
}

std::uint64_t
simConfigFingerprint(const PulseSimulator &sim)
{
    ByteWriter w;
    w.u32(kFormatVersion);
    w.u64(sim.model().dim());
    w.u64(sim.model().numTransmons());
    w.u64(sim.model().levels());
    w.f64(kDtNs);
    w.f64(kDriveQuantum);
    // Propagator values depend on the active SIMD tier within the
    // 1e-12 agreement budget; a cross-tier disk serve must miss and
    // re-derive rather than smuggle another tier's rounding in.
    w.u8(static_cast<std::uint8_t>(kernels::activeSimd()));
    return hashBytes(w.bytes().data(), w.size());
}

} // namespace store
} // namespace qpulse
