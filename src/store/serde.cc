#include "store/serde.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/constants.h"
#include "linalg/simd.h"
#include "pulsesim/simulator.h"

namespace qpulse {
namespace store {

namespace {

/**
 * Lazily built CRC-64/XZ tables (ECMA-182 polynomial, reflected),
 * slice-by-16: table[0] is the classic byte-at-a-time table; table[k]
 * advances a byte through k additional zero bytes, so sixteen input
 * bytes fold per loop iteration. Identical output to the byte-wise
 * loop — record validation sits on the cold-start serve path, and the
 * update is a serial dependency chain, so halving the iterations
 * (vs slice-by-8) is a direct latency win worth the 32 KiB of tables.
 */
const std::array<std::array<std::uint64_t, 256>, 16> &
crcTables()
{
    static const std::array<std::array<std::uint64_t, 256>, 16>
        tables = [] {
            std::array<std::array<std::uint64_t, 256>, 16> t{};
            constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ull;
            for (std::uint64_t i = 0; i < 256; ++i) {
                std::uint64_t crc = i;
                for (int bit = 0; bit < 8; ++bit)
                    crc = (crc >> 1) ^ (kPoly & (0ull - (crc & 1)));
                t[0][i] = crc;
            }
            for (std::size_t k = 1; k < 16; ++k)
                for (std::size_t i = 0; i < 256; ++i)
                    t[k][i] = (t[k - 1][i] >> 8) ^
                              t[0][t[k - 1][i] & 0xFF];
            return t;
        }();
    return tables;
}

Status
corrupt(const std::string &what)
{
    return Status::error(ErrorCode::StoreCorrupt, what);
}

constexpr bool kHostLittleEndian =
    std::endian::native == std::endian::little;

constexpr std::uint64_t
byteswap64(std::uint64_t v)
{
    v = ((v & 0x00FF00FF00FF00FFull) << 8) |
        ((v >> 8) & 0x00FF00FF00FF00FFull);
    v = ((v & 0x0000FFFF0000FFFFull) << 16) |
        ((v >> 16) & 0x0000FFFF0000FFFFull);
    return (v << 32) | (v >> 32);
}

/**
 * Raw CRC state update (no pre/post inversion): runs the slice-by-16
 * table loop over `size` bytes starting from `crc`. Both the public
 * crc64() and the carry-less-multiply fast path bottom out here (the
 * latter for its residual block and tail).
 */
std::uint64_t
crcTableUpdate(std::uint64_t crc, const std::uint8_t *p,
               std::size_t size)
{
    const auto &t = crcTables();
    while (size >= 16) {
        std::uint64_t lo, hi;
        std::memcpy(&lo, p, 8);
        std::memcpy(&hi, p + 8, 8);
        if constexpr (!kHostLittleEndian) {
            lo = byteswap64(lo);
            hi = byteswap64(hi);
        }
        lo ^= crc;
        crc = t[15][lo & 0xFF] ^ t[14][(lo >> 8) & 0xFF] ^
              t[13][(lo >> 16) & 0xFF] ^ t[12][(lo >> 24) & 0xFF] ^
              t[11][(lo >> 32) & 0xFF] ^ t[10][(lo >> 40) & 0xFF] ^
              t[9][(lo >> 48) & 0xFF] ^ t[8][lo >> 56] ^
              t[7][hi & 0xFF] ^ t[6][(hi >> 8) & 0xFF] ^
              t[5][(hi >> 16) & 0xFF] ^ t[4][(hi >> 24) & 0xFF] ^
              t[3][(hi >> 32) & 0xFF] ^ t[2][(hi >> 40) & 0xFF] ^
              t[1][(hi >> 48) & 0xFF] ^ t[0][hi >> 56];
        p += 16;
        size -= 16;
    }
    while (size >= 8) {
        std::uint64_t block;
        std::memcpy(&block, p, 8);
        if constexpr (!kHostLittleEndian)
            block = byteswap64(block);
        crc ^= block;
        crc = t[7][crc & 0xFF] ^ t[6][(crc >> 8) & 0xFF] ^
              t[5][(crc >> 16) & 0xFF] ^ t[4][(crc >> 24) & 0xFF] ^
              t[3][(crc >> 32) & 0xFF] ^ t[2][(crc >> 40) & 0xFF] ^
              t[1][(crc >> 48) & 0xFF] ^ t[0][crc >> 56];
        p += 8;
        size -= 8;
    }
    for (std::size_t i = 0; i < size; ++i)
        crc = t[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return crc;
}

#if defined(__x86_64__)

/**
 * Solve A(k) = target over GF(2), where the linear operator A is given
 * by its images on the 64 basis vectors (img[i] = A(e_i)). Gaussian
 * elimination via an XOR basis; returns false when target is outside
 * A's column space.
 */
bool
solveGf2(const std::array<std::uint64_t, 64> &img,
         std::uint64_t target, std::uint64_t &solution)
{
    std::array<std::uint64_t, 64> val{};  // Basis value, leading bit b.
    std::array<std::uint64_t, 64> coef{}; // e_i combination behind it.
    for (int i = 0; i < 64; ++i) {
        std::uint64_t v = img[static_cast<std::size_t>(i)];
        std::uint64_t c = 1ull << i;
        for (int b = 63; b >= 0 && v != 0; --b) {
            if (((v >> b) & 1) == 0)
                continue;
            if (val[static_cast<std::size_t>(b)] == 0) {
                val[static_cast<std::size_t>(b)] = v;
                coef[static_cast<std::size_t>(b)] = c;
                break;
            }
            v ^= val[static_cast<std::size_t>(b)];
            c ^= coef[static_cast<std::size_t>(b)];
        }
    }
    std::uint64_t v = target;
    std::uint64_t s = 0;
    for (int b = 63; b >= 0 && v != 0; --b) {
        if (((v >> b) & 1) == 0)
            continue;
        if (val[static_cast<std::size_t>(b)] == 0)
            return false;
        v ^= val[static_cast<std::size_t>(b)];
        s ^= coef[static_cast<std::size_t>(b)];
    }
    solution = s;
    return true;
}

/**
 * Folding constants for the PCLMULQDQ CRC path, derived numerically
 * from the table CRC instead of transcribed from a reference: the
 * 16-byte fold step must satisfy crc0(fold(V)) == crc0(V || 0^16) for
 * every 128-bit accumulator V, which (by linearity in each 64-bit
 * half) pins klo/khi as the solutions of A16(k) = crc0(e_0 || 0^16)
 * and A16(k) = crc0(e_64 || 0^16), where A16 is the advance-by-16-
 * zero-bytes state operator. A one-time differential self-check
 * (clmulCrcUsable) guards the whole path, so a derivation bug can
 * only ever cost speed, never correctness.
 */
struct ClmulCrcConsts
{
    std::uint64_t klo = 0;
    std::uint64_t khi = 0;
    bool solved = false;
};

const ClmulCrcConsts &
clmulCrcConsts()
{
    static const ClmulCrcConsts consts = [] {
        ClmulCrcConsts out;
        std::array<std::uint64_t, 64> img{};
        const std::uint8_t zeros[16] = {};
        for (int i = 0; i < 64; ++i)
            img[static_cast<std::size_t>(i)] =
                crcTableUpdate(1ull << i, zeros, 16);
        std::uint8_t msg[32] = {};
        msg[0] = 1;
        const std::uint64_t clo = crcTableUpdate(0, msg, 32);
        msg[0] = 0;
        msg[8] = 1;
        const std::uint64_t chi = crcTableUpdate(0, msg, 32);
        out.solved = solveGf2(img, clo, out.klo) &&
                     solveGf2(img, chi, out.khi);
        return out;
    }();
    return consts;
}

/**
 * Fold `blocks` 16-byte blocks into one 128-bit residual: V' =
 * clmul(V.lo, klo) ^ clmul(V.hi, khi) ^ D maintains crc0(V as 16-byte
 * message) == crc0(prefix), with the initial CRC state injected into
 * the first block's low half (the standard reflected-CRC identity).
 * The caller finishes by running the table CRC over the residual plus
 * any tail bytes. Requires blocks >= 1.
 */
__attribute__((target("pclmul,sse2"))) void
crc64ClmulFold(std::uint64_t state, const std::uint8_t *p,
               std::size_t blocks, std::uint8_t out[16])
{
    const ClmulCrcConsts &cc = clmulCrcConsts();
    const __m128i k = _mm_set_epi64x(static_cast<long long>(cc.khi),
                                     static_cast<long long>(cc.klo));
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    v = _mm_xor_si128(v, _mm_cvtsi64_si128(
                             static_cast<long long>(state)));
    p += 16;
    for (std::size_t i = 1; i < blocks; ++i, p += 16) {
        const __m128i d =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        v = _mm_xor_si128(
            _mm_xor_si128(_mm_clmulepi64_si128(v, k, 0x00),
                          _mm_clmulepi64_si128(v, k, 0x11)),
            d);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out), v);
}

std::uint64_t
crc64Clmul(const std::uint8_t *p, std::size_t size, std::uint64_t seed)
{
    const std::size_t blocks = size / 16;
    std::uint8_t residual[16];
    crc64ClmulFold(~seed, p, blocks, residual);
    std::uint64_t crc = crcTableUpdate(0, residual, 16);
    crc = crcTableUpdate(crc, p + blocks * 16, size % 16);
    return ~crc;
}

/**
 * One-time differential check of the carry-less path against the
 * table path (varied lengths, tails and seeds). Only ever consulted
 * after pclmulSupported() returned true.
 */
bool
clmulCrcUsable()
{
    static std::atomic<int> verdict{-1};
    int v = verdict.load(std::memory_order_relaxed);
    if (v < 0) {
        bool ok = clmulCrcConsts().solved;
        if (ok) {
            std::uint8_t buf[257];
            std::uint32_t x = 0x6d5a56e1u;
            for (auto &b : buf) {
                x = x * 1664525u + 1013904223u;
                b = static_cast<std::uint8_t>(x >> 24);
            }
            static constexpr std::size_t kSizes[] = {16, 32, 64, 96,
                                                     240, 255, 257};
            static constexpr std::uint64_t kSeeds[] = {
                0, 0xDEADBEEFCAFEF00Dull};
            for (std::size_t n : kSizes)
                for (std::uint64_t seed : kSeeds)
                    ok = ok &&
                         crc64Clmul(buf, n, seed) ==
                             ~crcTableUpdate(~seed, buf, n);
        }
        v = ok ? 1 : 0;
        verdict.store(v, std::memory_order_relaxed);
    }
    return v == 1;
}

#endif // defined(__x86_64__)

/** Minimum size for which the folding path is dispatched. */
constexpr std::size_t kClmulMinBytes = 64;

} // namespace

std::uint64_t
crc64(const void *bytes, std::size_t size, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(bytes);
#if defined(__x86_64__)
    if (size >= kClmulMinBytes && kernels::pclmulSupported() &&
        clmulCrcUsable())
        return crc64Clmul(p, size, seed);
#endif
    return ~crcTableUpdate(~seed, p, size);
}

const char *
crc64ActivePath(std::size_t size)
{
#if defined(__x86_64__)
    if (size >= kClmulMinBytes && kernels::pclmulSupported() &&
        clmulCrcUsable())
        return "clmul";
#endif
    (void)size;
    return "table";
}

std::uint64_t
hashBytes(const void *bytes, std::size_t size, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

std::uint64_t
mixHash(std::uint64_t a, std::uint64_t b)
{
    // splitmix64 finalizer over the ordered pair.
    std::uint64_t z = a + 0x9E3779B97F4A7C15ull + (b << 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31) ^ b;
}

// ------------------------------------------------------------------
// ByteWriter
// ------------------------------------------------------------------

void
ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
ByteWriter::c128(const Complex &v)
{
    f64(v.real());
    f64(v.imag());
}

void
ByteWriter::str(const std::string &v)
{
    u64(v.size());
    raw(v.data(), v.size());
}

void
ByteWriter::raw(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    bytes_.insert(bytes_.end(), p, p + size);
}

void
ByteWriter::i64Array(const std::int64_t *src, std::size_t count)
{
    if constexpr (kHostLittleEndian) {
        raw(src, count * sizeof(std::int64_t));
    } else {
        for (std::size_t i = 0; i < count; ++i)
            i64(src[i]);
    }
}

void
ByteWriter::f64Array(const double *src, std::size_t count)
{
    if constexpr (kHostLittleEndian) {
        raw(src, count * sizeof(double));
    } else {
        for (std::size_t i = 0; i < count; ++i)
            f64(src[i]);
    }
}

// ------------------------------------------------------------------
// ByteReader
// ------------------------------------------------------------------

Status
ByteReader::need(std::size_t n)
{
    if (size_ - pos_ < n)
        return corrupt("record payload truncated: wanted " +
                       std::to_string(n) + " bytes, have " +
                       std::to_string(size_ - pos_));
    return Status::okStatus();
}

Status
ByteReader::u8(std::uint8_t &v)
{
    if (Status s = need(1); !s.ok())
        return s;
    v = data_[pos_++];
    return Status::okStatus();
}

Status
ByteReader::u32(std::uint32_t &v)
{
    if (Status s = need(4); !s.ok())
        return s;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return Status::okStatus();
}

Status
ByteReader::u64(std::uint64_t &v)
{
    if (Status s = need(8); !s.ok())
        return s;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return Status::okStatus();
}

Status
ByteReader::i64(std::int64_t &v)
{
    std::uint64_t raw = 0;
    if (Status s = u64(raw); !s.ok())
        return s;
    v = static_cast<std::int64_t>(raw);
    return Status::okStatus();
}

Status
ByteReader::f64(double &v)
{
    std::uint64_t raw = 0;
    if (Status s = u64(raw); !s.ok())
        return s;
    v = std::bit_cast<double>(raw);
    return Status::okStatus();
}

Status
ByteReader::c128(Complex &v)
{
    double re = 0.0, im = 0.0;
    if (Status s = f64(re); !s.ok())
        return s;
    if (Status s = f64(im); !s.ok())
        return s;
    v = Complex{re, im};
    return Status::okStatus();
}

Status
ByteReader::str(std::string &v)
{
    std::uint64_t size = 0;
    if (Status s = u64(size); !s.ok())
        return s;
    // Compare in u64 before narrowing: on a 32-bit size_t a huge
    // length would otherwise truncate and pass the bounds check.
    if (size > remaining())
        return corrupt("string of " + std::to_string(size) +
                       " bytes beyond the payload");
    v.assign(reinterpret_cast<const char *>(data_ + pos_),
             static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return Status::okStatus();
}

Status
ByteReader::i64Array(std::int64_t *dst, std::size_t count)
{
    // Division, not `need(count * 8)`: a huge count must not wrap the
    // byte total past the bounds check.
    if (count > remaining() / sizeof(std::int64_t))
        return corrupt("array of " + std::to_string(count) +
                       " words beyond the payload");
    if constexpr (kHostLittleEndian) {
        std::memcpy(dst, data_ + pos_, count * sizeof(std::int64_t));
        pos_ += count * sizeof(std::int64_t);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            i64(dst[i]);
    }
    return Status::okStatus();
}

Status
ByteReader::f64Array(double *dst, std::size_t count)
{
    if (count > remaining() / sizeof(double))
        return corrupt("array of " + std::to_string(count) +
                       " values beyond the payload");
    if constexpr (kHostLittleEndian) {
        std::memcpy(dst, data_ + pos_, count * sizeof(double));
        pos_ += count * sizeof(double);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            f64(dst[i]);
    }
    return Status::okStatus();
}

// ------------------------------------------------------------------
// Matrix / PropagatorKey
// ------------------------------------------------------------------

void
serializeMatrix(const Matrix &m, ByteWriter &w)
{
    w.u64(m.rows());
    w.u64(m.cols());
    // std::complex<double> is layout-compatible with double[2]
    // (re, im) — the bulk append writes the same consecutive
    // little-endian f64 pairs c128 would.
    w.f64Array(reinterpret_cast<const double *>(m.data().data()),
               m.data().size() * 2);
}

Status
deserializeMatrix(ByteReader &r, Matrix &out)
{
    std::uint64_t rows = 0, cols = 0;
    if (Status s = r.u64(rows); !s.ok())
        return s;
    if (Status s = r.u64(cols); !s.ok())
        return s;
    // Entries are 16 bytes each; bound the claimed shape by the bytes
    // actually present so a corrupt header cannot trigger a huge
    // allocation before the payload read fails. The product is tested
    // by division — `rows * cols` itself can wrap u64 (e.g. 2^33 x
    // 2^33) and slip past a multiplied check, yielding a Matrix whose
    // rows()/cols() disagree with its backing storage.
    const std::uint64_t max_entries = r.remaining() / 16;
    if (rows != 0 && cols > max_entries / rows)
        return corrupt("matrix header claims " + std::to_string(rows) +
                       "x" + std::to_string(cols) +
                       " entries beyond the payload");
    out.resize(static_cast<std::size_t>(rows),
               static_cast<std::size_t>(cols));
    return r.f64Array(reinterpret_cast<double *>(out.data().data()),
                      out.data().size() * 2);
}

void
serializePropagatorKey(const PropagatorKey &key, ByteWriter &w)
{
    w.u64(key.words.size());
    w.i64Array(key.words.data(), key.words.size());
}

Status
deserializePropagatorKey(ByteReader &r, PropagatorKey &out)
{
    std::uint64_t count = 0;
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 8)
        return corrupt("propagator key claims " + std::to_string(count) +
                       " words beyond the payload");
    out.words.resize(static_cast<std::size_t>(count));
    return r.i64Array(out.words.data(), out.words.size());
}

// ------------------------------------------------------------------
// Schedule
// ------------------------------------------------------------------

namespace {

/** Run detection compares bit patterns, not values: -0.0 vs 0.0 and
 *  NaN payloads must round-trip exactly (a NaN sample is precisely
 *  what schedule validation exists to catch). */
bool
sameSampleBits(const Complex &a, const Complex &b)
{
    return std::memcmp(&a, &b, sizeof(Complex)) == 0;
}

/** Runs shorter than this stay in literal blocks (a run block costs
 *  21 bytes; four literal samples cost 64). */
constexpr std::size_t kMinRun = 4;

/** Decoder guard: a corrupt run count must not balloon allocation. */
constexpr std::uint64_t kMaxRleSamples = 1ull << 22;

/**
 * Sample block codec for the RLE schedule encoding: a sequence of
 * tagged blocks covering sampleCount samples in order. Tag 0 is a
 * literal block (u32 count, count c128 samples); tag 1 is a run
 * (u32 count, one c128 repeated). Calibrated pulses are dominated by
 * gaussian-square flat-tops — long runs of one sample value — so this
 * typically shrinks records ~3x, which the cold-start serve path pays
 * for directly in CRC + page-in + decode time.
 */
void
writeSampleBlocks(const std::vector<Complex> &samples, ByteWriter &w)
{
    const std::size_t n = samples.size();
    std::size_t i = 0;
    while (i < n) {
        std::size_t run = 1;
        while (i + run < n && sameSampleBits(samples[i + run], samples[i]))
            ++run;
        if (run >= kMinRun) {
            w.u8(1);
            w.u32(static_cast<std::uint32_t>(run));
            w.c128(samples[i]);
            i += run;
            continue;
        }
        // Literal block: extend until the next >= kMinRun run starts.
        std::size_t j = i;
        while (j < n) {
            std::size_t r = 1;
            while (j + r < n && sameSampleBits(samples[j + r], samples[j]))
                ++r;
            if (r >= kMinRun)
                break;
            j += r;
        }
        w.u8(0);
        w.u32(static_cast<std::uint32_t>(j - i));
        w.f64Array(reinterpret_cast<const double *>(samples.data() + i),
                   (j - i) * 2);
        i = j;
    }
}

Status
readSampleBlocks(ByteReader &r, std::uint64_t sampleCount,
                 std::vector<Complex> &samples)
{
    if (sampleCount > kMaxRleSamples)
        return corrupt("RLE waveform claims " +
                       std::to_string(sampleCount) + " samples");
    samples.resize(static_cast<std::size_t>(sampleCount));
    std::size_t pos = 0;
    while (pos < samples.size()) {
        std::uint8_t tag = 0;
        std::uint32_t count = 0;
        if (Status s = r.u8(tag); !s.ok())
            return s;
        if (Status s = r.u32(count); !s.ok())
            return s;
        if (count == 0 || count > samples.size() - pos)
            return corrupt("RLE block of " + std::to_string(count) +
                           " samples overflows the waveform");
        if (tag == 1) {
            Complex value;
            if (Status s = r.c128(value); !s.ok())
                return s;
            std::fill(samples.begin() + static_cast<std::ptrdiff_t>(pos),
                      samples.begin() +
                          static_cast<std::ptrdiff_t>(pos + count),
                      value);
        } else if (tag == 0) {
            if (Status s = r.f64Array(
                    reinterpret_cast<double *>(samples.data() + pos),
                    static_cast<std::size_t>(count) * 2);
                !s.ok())
                return s;
        } else {
            return corrupt("unknown RLE block tag " +
                           std::to_string(tag));
        }
        pos += count;
    }
    return Status::okStatus();
}

void
serializeScheduleImpl(const Schedule &schedule, ByteWriter &w, bool rle)
{
    w.str(schedule.name());
    const auto &instructions = schedule.instructions();
    w.u64(instructions.size());
    for (const PulseInstruction &instr : instructions) {
        w.u8(static_cast<std::uint8_t>(instr.kind));
        w.u8(static_cast<std::uint8_t>(instr.channel.kind));
        w.u64(instr.channel.index);
        w.i64(instr.startTime);
        w.f64(instr.phase);
        w.f64(instr.frequencyGhz);
        w.i64(instr.duration);
        if (instr.kind == PulseInstructionKind::Play &&
            instr.waveform != nullptr) {
            const std::vector<Complex> samples =
                instr.waveform->samples();
            w.str(instr.waveform->name());
            w.u64(samples.size());
            if (rle) {
                writeSampleBlocks(samples, w);
            } else {
                // Same consecutive little-endian (re, im) f64 pairs
                // the per-sample c128 calls produce, via the bulk
                // fast path.
                w.f64Array(
                    reinterpret_cast<const double *>(samples.data()),
                    samples.size() * 2);
            }
        } else {
            w.str(std::string());
            w.u64(0);
        }
    }
}

} // namespace

void
serializeSchedule(const Schedule &schedule, ByteWriter &w)
{
    serializeScheduleImpl(schedule, w, /*rle=*/false);
}

void
serializeScheduleRle(const Schedule &schedule, ByteWriter &w)
{
    serializeScheduleImpl(schedule, w, /*rle=*/true);
}

namespace {

Status
deserializeScheduleImpl(ByteReader &r, Schedule &out, bool rle)
{
    std::string name;
    if (Status s = r.str(name); !s.ok())
        return s;
    out = Schedule(std::move(name));
    std::uint64_t count = 0;
    if (Status s = r.u64(count); !s.ok())
        return s;
    for (std::uint64_t i = 0; i < count; ++i) {
        PulseInstruction instr;
        std::uint8_t kind = 0, chanKind = 0;
        std::uint64_t chanIndex = 0;
        if (Status s = r.u8(kind); !s.ok())
            return s;
        if (kind > static_cast<std::uint8_t>(
                       PulseInstructionKind::Acquire))
            return corrupt("unknown instruction kind " +
                           std::to_string(kind));
        if (Status s = r.u8(chanKind); !s.ok())
            return s;
        if (chanKind >
            static_cast<std::uint8_t>(ChannelKind::Acquire))
            return corrupt("unknown channel kind " +
                           std::to_string(chanKind));
        if (Status s = r.u64(chanIndex); !s.ok())
            return s;
        instr.kind = static_cast<PulseInstructionKind>(kind);
        instr.channel.kind = static_cast<ChannelKind>(chanKind);
        instr.channel.index = static_cast<std::size_t>(chanIndex);
        if (Status s = r.i64(instr.startTime); !s.ok())
            return s;
        if (Status s = r.f64(instr.phase); !s.ok())
            return s;
        if (Status s = r.f64(instr.frequencyGhz); !s.ok())
            return s;
        if (Status s = r.i64(instr.duration); !s.ok())
            return s;
        std::string label;
        if (Status s = r.str(label); !s.ok())
            return s;
        std::uint64_t sampleCount = 0;
        if (Status s = r.u64(sampleCount); !s.ok())
            return s;
        if (!rle && sampleCount > r.remaining() / 16)
            return corrupt("waveform claims " +
                           std::to_string(sampleCount) +
                           " samples beyond the payload");
        if (sampleCount > 0) {
            std::vector<Complex> samples;
            if (rle) {
                if (Status s =
                        readSampleBlocks(r, sampleCount, samples);
                    !s.ok())
                    return s;
            } else {
                samples.resize(static_cast<std::size_t>(sampleCount));
                if (Status s = r.f64Array(
                        reinterpret_cast<double *>(samples.data()),
                        samples.size() * 2);
                    !s.ok())
                    return s;
            }
            instr.waveform = std::make_shared<SampledWaveform>(
                std::move(samples), std::move(label));
        }
        out.addInstruction(std::move(instr));
    }
    return Status::okStatus();
}

} // namespace

Status
deserializeSchedule(ByteReader &r, Schedule &out)
{
    return deserializeScheduleImpl(r, out, /*rle=*/false);
}

Status
deserializeScheduleRle(ByteReader &r, Schedule &out)
{
    return deserializeScheduleImpl(r, out, /*rle=*/true);
}

// ------------------------------------------------------------------
// PulseLibrary (calibration snapshot)
// ------------------------------------------------------------------

namespace {

void
serializeBackendConfig(const BackendConfig &config, ByteWriter &w)
{
    w.str(config.name);
    w.u64(config.numQubits);
    w.u64(config.qubits.size());
    for (const TransmonParams &q : config.qubits) {
        w.f64(q.frequencyGhz);
        w.f64(q.anharmonicityGhz);
        w.f64(q.driveStrengthGhz);
        w.f64(q.t1Us);
        w.f64(q.t2Us);
    }
    w.u64(config.couplings.size());
    for (const CouplingEdge &edge : config.couplings) {
        w.u64(edge.control);
        w.u64(edge.target);
        w.f64(edge.strengthGhz);
    }
    w.u64(config.readout.size());
    for (const ReadoutError &err : config.readout) {
        w.f64(err.probFlip0to1);
        w.f64(err.probFlip1to0);
    }
    w.f64(config.noise.perPulseError1q);
    w.f64(config.noise.perPulseError2q);
    w.f64(config.noise.amplitudeError);
    w.f64(config.noise.leakagePerAmpSq);
    w.i64(config.pulseDuration);
    w.f64(config.pulseSigma);
    w.i64(config.crRisefall);
    w.f64(config.crAmplitude);
    w.i64(config.measureDuration);
}

Status
deserializeBackendConfig(ByteReader &r, BackendConfig &out)
{
    if (Status s = r.str(out.name); !s.ok())
        return s;
    std::uint64_t numQubits = 0;
    if (Status s = r.u64(numQubits); !s.ok())
        return s;
    out.numQubits = static_cast<std::size_t>(numQubits);
    std::uint64_t count = 0;
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 40)
        return corrupt("config claims too many qubits");
    out.qubits.resize(static_cast<std::size_t>(count));
    for (TransmonParams &q : out.qubits) {
        if (Status s = r.f64(q.frequencyGhz); !s.ok())
            return s;
        if (Status s = r.f64(q.anharmonicityGhz); !s.ok())
            return s;
        if (Status s = r.f64(q.driveStrengthGhz); !s.ok())
            return s;
        if (Status s = r.f64(q.t1Us); !s.ok())
            return s;
        if (Status s = r.f64(q.t2Us); !s.ok())
            return s;
    }
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 24)
        return corrupt("config claims too many couplings");
    out.couplings.resize(static_cast<std::size_t>(count));
    for (CouplingEdge &edge : out.couplings) {
        std::uint64_t control = 0, target = 0;
        if (Status s = r.u64(control); !s.ok())
            return s;
        if (Status s = r.u64(target); !s.ok())
            return s;
        edge.control = static_cast<std::size_t>(control);
        edge.target = static_cast<std::size_t>(target);
        if (Status s = r.f64(edge.strengthGhz); !s.ok())
            return s;
    }
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 16)
        return corrupt("config claims too many readout entries");
    out.readout.resize(static_cast<std::size_t>(count));
    for (ReadoutError &err : out.readout) {
        if (Status s = r.f64(err.probFlip0to1); !s.ok())
            return s;
        if (Status s = r.f64(err.probFlip1to0); !s.ok())
            return s;
    }
    if (Status s = r.f64(out.noise.perPulseError1q); !s.ok())
        return s;
    if (Status s = r.f64(out.noise.perPulseError2q); !s.ok())
        return s;
    if (Status s = r.f64(out.noise.amplitudeError); !s.ok())
        return s;
    if (Status s = r.f64(out.noise.leakagePerAmpSq); !s.ok())
        return s;
    if (Status s = r.i64(out.pulseDuration); !s.ok())
        return s;
    if (Status s = r.f64(out.pulseSigma); !s.ok())
        return s;
    if (Status s = r.i64(out.crRisefall); !s.ok())
        return s;
    if (Status s = r.f64(out.crAmplitude); !s.ok())
        return s;
    if (Status s = r.i64(out.measureDuration); !s.ok())
        return s;
    return Status::okStatus();
}

} // namespace

void
serializePulseLibrary(const PulseLibrary &library, ByteWriter &w)
{
    serializeBackendConfig(library.config, w);
    w.u64(library.qubits.size());
    for (const QubitCalibration &cal : library.qubits) {
        w.i64(cal.duration);
        w.f64(cal.sigma);
        w.f64(cal.x90Amp);
        w.f64(cal.x180Amp);
        w.f64(cal.dragBeta);
        w.f64(cal.x12Amp);
        w.f64(cal.x02Amp);
        w.i64(cal.qutritDuration);
    }
    w.u64(library.crs.size());
    for (const CrCalibration &cr : library.crs) {
        w.u64(cr.control);
        w.u64(cr.target);
        w.f64(cr.amplitude);
        w.i64(cr.risefall);
        w.f64(cr.sigma);
        w.i64(cr.flatFor90);
        w.f64(cr.radPerDtFlat);
        w.f64(cr.radAtZeroFlat);
        w.f64(cr.phaseFixControl);
        w.f64(cr.phaseFixTarget);
        w.f64(cr.axisPhaseTarget);
        w.u64(cr.fixTable.size());
        for (const CrCalibration::PhaseFixPoint &fix : cr.fixTable) {
            w.f64(fix.theta);
            w.f64(fix.control);
            w.f64(fix.target);
            w.f64(fix.axis);
        }
    }
}

Status
deserializePulseLibrary(ByteReader &r, PulseLibrary &out)
{
    if (Status s = deserializeBackendConfig(r, out.config); !s.ok())
        return s;
    std::uint64_t count = 0;
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 64)
        return corrupt("library claims too many qubit calibrations");
    out.qubits.resize(static_cast<std::size_t>(count));
    for (QubitCalibration &cal : out.qubits) {
        if (Status s = r.i64(cal.duration); !s.ok())
            return s;
        if (Status s = r.f64(cal.sigma); !s.ok())
            return s;
        if (Status s = r.f64(cal.x90Amp); !s.ok())
            return s;
        if (Status s = r.f64(cal.x180Amp); !s.ok())
            return s;
        if (Status s = r.f64(cal.dragBeta); !s.ok())
            return s;
        if (Status s = r.f64(cal.x12Amp); !s.ok())
            return s;
        if (Status s = r.f64(cal.x02Amp); !s.ok())
            return s;
        if (Status s = r.i64(cal.qutritDuration); !s.ok())
            return s;
    }
    if (Status s = r.u64(count); !s.ok())
        return s;
    if (count > r.remaining() / 96)
        return corrupt("library claims too many CR calibrations");
    out.crs.resize(static_cast<std::size_t>(count));
    for (CrCalibration &cr : out.crs) {
        std::uint64_t control = 0, target = 0;
        if (Status s = r.u64(control); !s.ok())
            return s;
        if (Status s = r.u64(target); !s.ok())
            return s;
        cr.control = static_cast<std::size_t>(control);
        cr.target = static_cast<std::size_t>(target);
        if (Status s = r.f64(cr.amplitude); !s.ok())
            return s;
        if (Status s = r.i64(cr.risefall); !s.ok())
            return s;
        if (Status s = r.f64(cr.sigma); !s.ok())
            return s;
        if (Status s = r.i64(cr.flatFor90); !s.ok())
            return s;
        if (Status s = r.f64(cr.radPerDtFlat); !s.ok())
            return s;
        if (Status s = r.f64(cr.radAtZeroFlat); !s.ok())
            return s;
        if (Status s = r.f64(cr.phaseFixControl); !s.ok())
            return s;
        if (Status s = r.f64(cr.phaseFixTarget); !s.ok())
            return s;
        if (Status s = r.f64(cr.axisPhaseTarget); !s.ok())
            return s;
        std::uint64_t fixCount = 0;
        if (Status s = r.u64(fixCount); !s.ok())
            return s;
        if (fixCount > r.remaining() / 32)
            return corrupt("CR fix table beyond the payload");
        cr.fixTable.resize(static_cast<std::size_t>(fixCount));
        for (CrCalibration::PhaseFixPoint &fix : cr.fixTable) {
            if (Status s = r.f64(fix.theta); !s.ok())
                return s;
            if (Status s = r.f64(fix.control); !s.ok())
                return s;
            if (Status s = r.f64(fix.target); !s.ok())
                return s;
            if (Status s = r.f64(fix.axis); !s.ok())
                return s;
        }
    }
    return Status::okStatus();
}

// ------------------------------------------------------------------
// QuantumCircuit
// ------------------------------------------------------------------

void
serializeCircuit(const QuantumCircuit &circuit, ByteWriter &w)
{
    w.u64(circuit.numQubits());
    w.u64(circuit.gates().size());
    for (const Gate &gate : circuit.gates()) {
        w.u32(static_cast<std::uint32_t>(gate.type));
        w.u64(gate.qubits.size());
        for (std::size_t q : gate.qubits)
            w.u64(q);
        w.u64(gate.params.size());
        w.f64Array(gate.params.data(), gate.params.size());
    }
}

Status
deserializeCircuit(ByteReader &r, QuantumCircuit &out)
{
    std::uint64_t numQubits = 0, gateCount = 0;
    if (Status s = r.u64(numQubits); !s.ok())
        return s;
    if (numQubits == 0)
        return corrupt("circuit claims zero qubits");
    if (Status s = r.u64(gateCount); !s.ok())
        return s;
    // Each gate costs at least 20 bytes (type + two counts).
    if (gateCount > r.remaining() / 20)
        return corrupt("circuit claims " + std::to_string(gateCount) +
                       " gates beyond the payload");
    out = QuantumCircuit(static_cast<std::size_t>(numQubits));
    for (std::uint64_t i = 0; i < gateCount; ++i) {
        std::uint32_t type = 0;
        if (Status s = r.u32(type); !s.ok())
            return s;
        if (type > static_cast<std::uint32_t>(GateType::Barrier))
            return corrupt("unknown gate type " + std::to_string(type));
        Gate gate;
        gate.type = static_cast<GateType>(type);
        std::uint64_t count = 0;
        if (Status s = r.u64(count); !s.ok())
            return s;
        if (count > r.remaining() / 8)
            return corrupt("gate wire list beyond the payload");
        gate.qubits.resize(static_cast<std::size_t>(count));
        for (std::size_t &q : gate.qubits) {
            std::uint64_t wire = 0;
            if (Status s = r.u64(wire); !s.ok())
                return s;
            // Bounds-check here (fail closed) rather than letting the
            // circuit builder's fatal wire validation fire on corrupt
            // payloads.
            if (wire >= numQubits)
                return corrupt("gate wire " + std::to_string(wire) +
                               " outside a " + std::to_string(numQubits) +
                               "-qubit register");
            q = static_cast<std::size_t>(wire);
        }
        if (Status s = r.u64(count); !s.ok())
            return s;
        if (count > r.remaining() / 8)
            return corrupt("gate parameter list beyond the payload");
        gate.params.resize(static_cast<std::size_t>(count));
        if (Status s = r.f64Array(gate.params.data(), gate.params.size());
            !s.ok())
            return s;
        out.gates().push_back(std::move(gate));
    }
    return Status::okStatus();
}

// ------------------------------------------------------------------
// Content hashes / fingerprints
// ------------------------------------------------------------------

std::uint64_t
hashSchedule(const Schedule &schedule)
{
    ByteWriter w;
    serializeSchedule(schedule, w);
    return hashBytes(w.bytes().data(), w.size());
}

std::uint64_t
hashPulseLibrary(const PulseLibrary &library)
{
    ByteWriter w;
    serializePulseLibrary(library, w);
    return hashBytes(w.bytes().data(), w.size());
}

std::uint64_t
hashBackendConfig(const BackendConfig &config)
{
    ByteWriter w;
    w.u32(kFormatVersion);
    serializeBackendConfig(config, w);
    return hashBytes(w.bytes().data(), w.size());
}

std::uint64_t
simConfigFingerprint(const PulseSimulator &sim)
{
    ByteWriter w;
    w.u32(kFormatVersion);
    w.u64(sim.model().dim());
    w.u64(sim.model().numTransmons());
    w.u64(sim.model().levels());
    w.f64(kDtNs);
    w.f64(kDriveQuantum);
    // Propagator values depend on the active SIMD tier within the
    // 1e-12 agreement budget; a cross-tier disk serve must miss and
    // re-derive rather than smuggle another tier's rounding in.
    w.u8(static_cast<std::uint8_t>(kernels::activeSimd()));
    return hashBytes(w.bytes().data(), w.size());
}

} // namespace store
} // namespace qpulse
