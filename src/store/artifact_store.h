/**
 * @file
 * Content-addressed persistent artifact store (docs/PERSISTENCE.md).
 *
 * Derived artifacts — propagator blocks, compiled schedules,
 * calibration snapshots — are pure functions of their inputs, so they
 * are addressed by content, not by name: the key is
 * (content hash, generation, sim-config fingerprint, kind). A fresh
 * process pointed at the same QPULSE_CACHE_DIR finds the artifacts a
 * previous process derived and serves them without paying the
 * derivation cost again.
 *
 * On-disk layout (`<dir>/`):
 *
 *   seg-000001.qps   immutable record segments, written whole via
 *   seg-000002.qps   temp file + fsync + atomic rename — a crash
 *   ...              leaves either the complete segment or no segment,
 *                    never a half-visible one;
 *   index.qpi        key -> (segment, offset) table, rewritten
 *                    atomically after every flush. Advisory only: a
 *                    missing or corrupt index is rebuilt by scanning
 *                    the segments.
 *
 * Each record carries magic, format version, its full key, the payload
 * length and a CRC-64 over everything before the checksum. Reads go
 * through a read-only mmap of the segment; a record is validated once
 * (magic + version + key echo + CRC) and then served as a zero-copy
 * view into the mapping. Every view *pins* its segment mapping
 * (shared ownership): when the size budget drops a segment — or the
 * store itself is destroyed — the file is unlinked and forgotten
 * immediately, but the munmap is deferred until the last outstanding
 * view is gone, so a concurrent reader can never touch unmapped
 * memory. Validation failure quarantines the record for the lifetime
 * of the store — it is never retried, never trusted, and the caller
 * falls back to fresh derivation (fail closed).
 *
 * Invalidation is by *unreachability*, not deletion: recalibration
 * bumps the generation component of the key, so every artifact of the
 * old generation simply stops being addressable. Old bytes are only
 * physically reclaimed by the size budget (QPULSE_CACHE_MAX_BYTES),
 * which drops the oldest whole segments at flush time.
 *
 * Thread safety: all public methods are mutex-protected, and views
 * returned by get() stay readable without the mutex (their mapping is
 * pinned, see above). Cross-process writers are coordinated by the
 * atomic-rename protocol: each process writes its own segments under
 * a (sequence, writer-tag) identity that is unique across writers, so
 * two processes flushing into one directory can never collide on a
 * name or an index identity; the index is last-writer-wins and
 * self-healing.
 */
#ifndef QPULSE_STORE_ARTIFACT_STORE_H
#define QPULSE_STORE_ARTIFACT_STORE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace qpulse {

class Schedule;
struct PulseLibrary;

namespace store {

/** What a persisted payload decodes to. */
enum class ArtifactKind : std::uint32_t
{
    PropagatorBlock = 1,   ///< PropagatorKey words + Matrix.
    CompiledSchedule = 2,  ///< Serialized Schedule.
    CalibrationSnapshot = 3, ///< Serialized PulseLibrary.
};

/** Content address of one artifact (docs/PERSISTENCE.md keying). */
struct ArtifactKey
{
    std::uint64_t contentHash = 0; ///< Hash of the derivation inputs.
    std::uint64_t generation = 0;  ///< Calibration/basis generation.
    std::uint64_t configFingerprint = 0; ///< simConfigFingerprint.
    std::uint32_t kind = 0;        ///< ArtifactKind.

    bool operator==(const ArtifactKey &other) const
    {
        return contentHash == other.contentHash &&
               generation == other.generation &&
               configFingerprint == other.configFingerprint &&
               kind == other.kind;
    }
};

struct ArtifactKeyHash
{
    std::size_t operator()(const ArtifactKey &key) const;
};

/**
 * Zero-copy view of a validated record payload inside an mmap. The
 * view co-owns the segment mapping (`pin`): the bytes stay mapped —
 * and `data` stays readable — until every view of the segment is
 * destroyed, even if a concurrent flush's size budget drops the
 * segment or the store itself is destroyed in the meantime.
 */
struct ArtifactView
{
    const std::uint8_t *data = nullptr;
    std::size_t size = 0;
    std::shared_ptr<const void> pin;
};

/** Monotonic per-store counters (also mirrored into cache.persist.*). */
struct StoreStats
{
    std::uint64_t puts = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t corrupt = 0;         ///< Checksum/framing failures.
    std::uint64_t versionMismatch = 0; ///< Foreign format versions.
    std::uint64_t quarantined = 0;     ///< Records marked untrusted.
    std::uint64_t flushes = 0;
    std::uint64_t segmentsDropped = 0; ///< Reclaimed by the size budget.
    std::uint64_t bytesWritten = 0;
    std::uint64_t bytesRead = 0;
};

class ArtifactStore
{
  public:
    ~ArtifactStore();

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * Open (creating if needed) the store at `dir`. Reads the index if
     * present, else rebuilds it by scanning segments. Returns nullptr
     * with a structured Status on an unusable directory.
     */
    static std::shared_ptr<ArtifactStore>
    open(const std::string &dir, std::uint64_t max_bytes,
         Status *status = nullptr);

    /**
     * Open from QPULSE_CACHE_DIR / QPULSE_CACHE_MAX_BYTES. Unset or
     * empty dir -> nullptr (persistence disabled); an unusable dir
     * warns via envWarn and also returns nullptr, so a bad knob can
     * never take the execution path down.
     */
    static std::shared_ptr<ArtifactStore> openFromEnv();

    /**
     * Buffer one artifact for the next flush(). Duplicate keys (same
     * content re-derived by a racing process) are benign: the newest
     * record wins in the index, both decode identically.
     */
    Status put(const ArtifactKey &key,
               const std::vector<std::uint8_t> &payload);

    /**
     * Write every buffered artifact into a new immutable segment
     * (temp + fsync + atomic rename), update the in-memory index,
     * rewrite the index file atomically, and enforce the size budget
     * by dropping the oldest whole segments. No-op when nothing is
     * buffered.
     */
    Status flush();

    /**
     * Look up `key` and validate its record (first access only).
     * Ok: `view` points at the payload inside the segment mapping and
     * pins that mapping — the bytes stay valid for the lifetime of
     * the view regardless of concurrent flushes, size-budget drops,
     * or even store destruction.
     * Miss: StoreCorrupt/StoreVersionMismatch for quarantined records,
     * InvalidArgument("not found") for absent keys.
     */
    Status get(const ArtifactKey &key, ArtifactView &view);

    /** True if `key` is indexed (validation state notwithstanding). */
    bool contains(const ArtifactKey &key) const;

    /** Indexed record count (including quarantined ones). */
    std::size_t size() const;

    /** Bytes currently on disk across live segments. */
    std::uint64_t diskBytes() const;

    StoreStats stats() const;

    const std::string &directory() const { return dir_; }

  private:
    ArtifactStore(std::string dir, std::uint64_t max_bytes);

    /**
     * One read-only mapped segment file. Shared ownership of the
     * mapping: munmap runs when the last reference (the store's
     * Segment entry or any pinned ArtifactView) is released.
     */
    struct Mapping
    {
        Mapping() = default;
        ~Mapping();
        Mapping(const Mapping &) = delete;
        Mapping &operator=(const Mapping &) = delete;

        const std::uint8_t *base = nullptr;
        std::size_t size = 0;
    };

    struct Segment
    {
        /**
         * Unique identity: (sequence << 32) | writer tag, both parsed
         * from the filename. The sequence orders segments by age for
         * budget eviction; the tag disambiguates two writers that
         * raced to the same sequence number in one directory.
         */
        std::uint64_t uid = 0;
        std::string path;
        std::shared_ptr<const Mapping> map;
        std::size_t size = 0;
    };

    enum class RecordState : std::uint8_t
    {
        Unvalidated,
        Valid,
        QuarantinedCorrupt,
        QuarantinedVersion,
    };

    struct IndexEntry
    {
        std::uint64_t segment = 0; ///< Segment::uid.
        std::uint64_t offset = 0;
        std::uint64_t recordBytes = 0;
        RecordState state = RecordState::Unvalidated;
        std::uint64_t payloadOffset = 0; ///< Set on validation.
        std::uint64_t payloadBytes = 0;
    };

    Status loadExisting();
    Status scanSegment(Segment &segment);
    Status mapSegment(Segment &segment);
    void unmapSegment(Segment &segment);
    Status writeIndexFile();
    Status readIndexFile(bool &usable);
    Status enforceBudget();
    Status validate(const ArtifactKey &key, IndexEntry &entry);
    std::uint32_t nextSegmentSeq() const;

    std::string dir_;
    std::uint64_t maxBytes_ = 0;
    std::uint32_t writerTag_ = 0; ///< Unique per live writer.
    std::vector<Segment> segments_; ///< Ascending id order.
    std::unordered_map<ArtifactKey, IndexEntry, ArtifactKeyHash>
        index_;
    struct Pending
    {
        ArtifactKey key;
        std::vector<std::uint8_t> record; ///< Full framed record.
    };
    std::vector<Pending> pending_;
    StoreStats stats_;
    mutable std::mutex mutex_;
};

/** Serialize-and-put / get-and-deserialize conveniences. */
Status putSchedule(ArtifactStore &store, const ArtifactKey &key,
                   const Schedule &schedule);
Status getSchedule(ArtifactStore &store, const ArtifactKey &key,
                   Schedule &out);

/**
 * CalibrationSnapshot conveniences (serialized PulseLibrary). The
 * payload leads with hashBackendConfig(library.config) as an echo
 * guard: a hash-colliding or mis-keyed record is rejected
 * (StoreCorrupt) instead of bootstrapping a backend from another
 * device's calibration.
 */
Status putPulseLibrary(ArtifactStore &store, const ArtifactKey &key,
                       const PulseLibrary &library);
Status getPulseLibrary(ArtifactStore &store, const ArtifactKey &key,
                       PulseLibrary &out);

} // namespace store
} // namespace qpulse

#endif // QPULSE_STORE_ARTIFACT_STORE_H
