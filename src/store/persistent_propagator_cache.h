/**
 * @file
 * PersistentPropagatorCache: the disk tier under the in-memory
 * PropagatorCache (docs/PERSISTENCE.md).
 *
 * Lookup order per key: memory hit (base LRU) -> disk hit (validated
 * record in the ArtifactStore, deserialized straight out of the mmap)
 * -> derive via the caller's factory and enqueue the result for
 * write-back. flush() drains the write-back queue into the store; the
 * queue also auto-flushes once it crosses kAutoFlushEntries so a
 * long-running service persists progress without being asked.
 *
 * Every disk read is defended: the record checksum and key echo are
 * verified by the store, and the deserialized key words are compared
 * against the requested key here, so a 64-bit content-hash collision
 * (or any corruption that slips framing) falls back to derivation
 * rather than serving a wrong propagator. Corrupt and
 * version-mismatched records fail closed with their structured Status
 * and are quarantined by the store.
 *
 * Invalidation: setGeneration(g) — called on recalibration (single
 * backend) and fleet drain/readmit — clears the memory tier, drops
 * queued write-backs (they belong to the dying generation) and
 * reroutes every subsequent disk key, making all old-generation
 * artifacts unreachable without deleting a byte in place.
 *
 * Lock order (the contract documented in propagator_cache.h): the
 * base LRU mutex and `persistMutex_` are both leaf locks. The factory
 * passed to the base class runs with the LRU mutex *released* and may
 * take `persistMutex_` to enqueue; flush() swaps the queue out under
 * `persistMutex_` and talks to the store (its own leaf mutex) with no
 * cache lock held. Combined snapshots acquire the two locks strictly
 * sequentially — LRU first, then persist — never nested.
 */
#ifndef QPULSE_STORE_PERSISTENT_PROPAGATOR_CACHE_H
#define QPULSE_STORE_PERSISTENT_PROPAGATOR_CACHE_H

#include <memory>
#include <mutex>

#include "pulsesim/propagator_cache.h"
#include "store/artifact_store.h"

namespace qpulse {
namespace store {

/** Monotonic counters of the disk tier (mirrored to cache.persist.*). */
struct PersistStats
{
    std::uint64_t diskHits = 0;   ///< Served from a validated record.
    std::uint64_t diskMisses = 0; ///< Absent key: derived fresh.
    std::uint64_t writeBacks = 0; ///< Derivations queued for persist.
    std::uint64_t fallbacks = 0;  ///< Quarantined/corrupt record:
                                  ///< derived fresh (fail closed).
    std::uint64_t collisions = 0; ///< Key-word mismatch on a record
                                  ///< whose address matched.
};

class PersistentPropagatorCache : public PropagatorCache
{
  public:
    /**
     * @param store       Shared artifact store (non-null).
     * @param generation  Calibration/basis generation key component.
     * @param config_fingerprint  simConfigFingerprint of the model
     *        the propagators are derived under.
     */
    PersistentPropagatorCache(std::shared_ptr<ArtifactStore> store,
                              std::uint64_t generation,
                              std::uint64_t config_fingerprint,
                              std::size_t capacity = kDefaultCapacity);

    /** Flushes pending write-backs (best effort, never throws). */
    ~PersistentPropagatorCache() override;

    /** Queue length at which derive paths trigger an inline flush. */
    static constexpr std::size_t kAutoFlushEntries = 256;

    Matrix getOrCompute(const PropagatorKey &key,
                        const std::function<Matrix()> &compute) override;

    void getOrComputeInto(const PropagatorKey &key,
                          const std::function<Matrix()> &compute,
                          Matrix &out) override;

    /** Drain the write-back queue into the store and flush it. */
    Status flush();

    /**
     * Recalibration invalidation: clear the memory tier, drop queued
     * write-backs, and address all subsequent disk traffic under the
     * new generation. Old-generation records stay on disk, unreachable.
     */
    void setGeneration(std::uint64_t generation);

    std::uint64_t generation() const;

    /** Snapshot of the disk-tier counters. */
    PersistStats persistStats() const;

    /**
     * Combined read-and-clear of base + disk-tier counters under the
     * documented lock order (LRU mutex, then persist mutex, strictly
     * sequential).
     */
    std::pair<PropagatorCacheStats, PersistStats>
    snapshotAndResetAll();

    const std::shared_ptr<ArtifactStore> &artifactStore() const
    {
        return store_;
    }

  private:
    /** Disk probe; returns true and fills `out` on a validated hit. */
    bool loadFromDisk(const PropagatorKey &key, Matrix &out);
    /** Enqueue a derived value; may trigger an inline auto-flush. */
    void queueWriteBack(const PropagatorKey &key, const Matrix &value);
    ArtifactKey diskKey(const PropagatorKey &key) const;

    std::shared_ptr<ArtifactStore> store_;
    std::uint64_t configFingerprint_ = 0;

    // persistMutex_ guards everything below (leaf lock; see file
    // comment for the order contract).
    mutable std::mutex persistMutex_;
    std::uint64_t generation_ = 0;
    struct QueuedRecord
    {
        ArtifactKey key;
        std::vector<std::uint8_t> payload;
    };
    std::vector<QueuedRecord> queue_;
    PersistStats persistStats_;
};

} // namespace store
} // namespace qpulse

#endif // QPULSE_STORE_PERSISTENT_PROPAGATOR_CACHE_H
