/**
 * @file
 * Canonical binary serialization for persisted artifacts
 * (docs/PERSISTENCE.md).
 *
 * Everything the ArtifactStore writes goes through this layer so the
 * on-disk bytes are host-independent and self-validating:
 *
 *  - **explicit endianness**: every value is encoded little-endian,
 *    so an artifact written on any host decodes identically on any
 *    other. Scalar accessors encode by byte shifts; the bulk array
 *    accessors take a memcpy fast path only when the host is
 *    little-endian (std::endian check) and fall back to the same
 *    byte shifts otherwise — the bytes on disk are identical either
 *    way;
 *  - **exact doubles**: f64 values round-trip through their IEEE-754
 *    bit pattern (std::bit_cast to/from uint64), so a deserialized
 *    propagator is *bit-identical* to the one that was derived —
 *    stronger than the repo-wide 1e-12 agreement budget;
 *  - **format version**: kFormatVersion is stamped into every record
 *    header; a decoder never guesses at bytes written by a different
 *    layout (ErrorCode::StoreVersionMismatch, fail closed);
 *  - **per-record checksums**: CRC-64/XZ over the full record; a
 *    truncated or bit-flipped record fails the checksum and is
 *    quarantined, never decoded (ErrorCode::StoreCorrupt).
 *
 * Serializable artifacts: Matrix (propagator/unitary blocks),
 * PropagatorKey, Schedule (waveforms materialized to samples — the
 * parametric Waveform subclasses hold closures-worth of behavior, but
 * their *samples* are the canonical content), and PulseLibrary (the
 * calibration snapshot CmdDef tables are built from; CmdDef itself is
 * a map of std::function builders and is reconstructed from the
 * library, not persisted).
 */
#ifndef QPULSE_STORE_SERDE_H
#define QPULSE_STORE_SERDE_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "common/status.h"
#include "device/calibration.h"
#include "linalg/matrix.h"
#include "pulse/schedule.h"
#include "pulsesim/propagator_cache.h"

namespace qpulse {

class PulseSimulator;

namespace store {

/** On-disk layout version; bump on any encoding change. */
inline constexpr std::uint32_t kFormatVersion = 1;

/** CRC-64/XZ (ECMA-182 polynomial, reflected) over a byte range. */
std::uint64_t crc64(const void *bytes, std::size_t size,
                    std::uint64_t seed = 0);

/**
 * Which implementation crc64() dispatches to for a `size`-byte input:
 * "clmul" (PCLMULQDQ 16-byte folding — used for large inputs when the
 * CPU supports carry-less multiply and the one-time differential
 * self-check against the table path passed) or "table" (slice-by-16).
 * Both produce identical CRCs; exposed so tests can assert the fast
 * path is actually live on capable hardware.
 */
const char *crc64ActivePath(std::size_t size);

/** FNV-1a over a byte range (content hashing, not integrity). */
std::uint64_t hashBytes(const void *bytes, std::size_t size,
                        std::uint64_t seed = 0xCBF29CE484222325ull);

/** Order-dependent combine of two 64-bit hashes. */
std::uint64_t mixHash(std::uint64_t a, std::uint64_t b);

/** Append-only little-endian encoder. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    /** IEEE-754 bit pattern; exact round-trip. */
    void f64(double v);
    void c128(const Complex &v);
    /** u64 length prefix + raw bytes. */
    void str(const std::string &v);
    void raw(const void *data, std::size_t size);
    /**
     * Contiguous value arrays (matrix entries, key words). The
     * encoding is the same consecutive little-endian values the
     * scalar calls produce; on little-endian hosts the whole block
     * is appended with one memcpy instead of a per-byte loop.
     */
    void i64Array(const std::int64_t *src, std::size_t count);
    void f64Array(const double *src, std::size_t count);

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }
    std::size_t size() const { return bytes_.size(); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Bounds-checked little-endian decoder over a borrowed byte range
 * (typically an mmap'ed record payload — the reader never copies the
 * input). Every read returns a Status; a short buffer yields
 * StoreCorrupt, never UB.
 */
class ByteReader
{
  public:
    ByteReader(const void *data, std::size_t size)
        : data_(static_cast<const std::uint8_t *>(data)), size_(size)
    {}

    Status u8(std::uint8_t &v);
    Status u32(std::uint32_t &v);
    Status u64(std::uint64_t &v);
    Status i64(std::int64_t &v);
    Status f64(double &v);
    Status c128(Complex &v);
    Status str(std::string &v);
    /** Bulk counterparts of ByteWriter's array appends (bounds-
     *  checked once for the whole block; memcpy on LE hosts). */
    Status i64Array(std::int64_t *dst, std::size_t count);
    Status f64Array(double *dst, std::size_t count);

    std::size_t remaining() const { return size_ - pos_; }
    bool exhausted() const { return pos_ == size_; }

  private:
    Status need(std::size_t n);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// ------------------------------------------------------------------
// Artifact serializers. Serialize never fails; deserialize returns a
// structured Status (StoreCorrupt on malformed payloads) and leaves
// the output unspecified on failure.
// ------------------------------------------------------------------

void serializeMatrix(const Matrix &m, ByteWriter &w);
Status deserializeMatrix(ByteReader &r, Matrix &out);

void serializePropagatorKey(const PropagatorKey &key, ByteWriter &w);
Status deserializePropagatorKey(ByteReader &r, PropagatorKey &out);

/**
 * Schedule encoding: name + instruction list. Play waveforms are
 * materialized to their samples, so a deserialized schedule carries
 * SampledWaveform envelopes that are sample-for-sample bit-identical
 * to the original parametric pulses.
 */
void serializeSchedule(const Schedule &schedule, ByteWriter &w);
Status deserializeSchedule(ByteReader &r, Schedule &out);

/**
 * Schedule encoding with run-length-coded samples: identical to the
 * serializeSchedule layout except each waveform's samples are stored
 * as tagged literal/run blocks (bit-exact round trip, including NaN
 * payloads and signed zeros). Calibrated pulses are dominated by
 * gaussian-square flat-tops, so this typically shrinks records ~3x —
 * used by the CompiledSchedule payload, where record size is paid on
 * every cold-start serve (CRC + page-in + decode). Not interchangeable
 * with the plain encoding; a record must be read with the variant it
 * was written with.
 */
void serializeScheduleRle(const Schedule &schedule, ByteWriter &w);
Status deserializeScheduleRle(ByteReader &r, Schedule &out);

void serializePulseLibrary(const PulseLibrary &library, ByteWriter &w);
Status deserializePulseLibrary(ByteReader &r, PulseLibrary &out);

/**
 * Circuit encoding: register width + gate list (type, wires, params).
 * Used to round-trip the transpiled basis circuit inside a
 * CompiledSchedule record; the decoder bounds-checks wire indices so a
 * corrupt record fails closed instead of tripping the circuit
 * builder's fatal validation.
 */
void serializeCircuit(const QuantumCircuit &circuit, ByteWriter &w);
Status deserializeCircuit(ByteReader &r, QuantumCircuit &out);

// ------------------------------------------------------------------
// Content hashes / fingerprints (key components, docs/PERSISTENCE.md).
// ------------------------------------------------------------------

/**
 * Stable content hash of a schedule: instruction kinds, channels,
 * times, phases, frequencies, and the bit patterns of every waveform
 * sample. Two schedules that produce the same pulse program hash
 * equal; any sample or timing change reroutes the key.
 */
std::uint64_t hashSchedule(const Schedule &schedule);

/** Content hash of a calibration snapshot. */
std::uint64_t hashPulseLibrary(const PulseLibrary &library);

/**
 * Content hash of a backend configuration (device parameters, coupling
 * map, noise and pulse defaults). Keys CalibrationSnapshot records: a
 * snapshot is only served back to the exact device description it was
 * calibrated for.
 */
std::uint64_t hashBackendConfig(const BackendConfig &config);

/**
 * Fingerprint of the simulation configuration an artifact was derived
 * under: Hilbert-space shape, sample period, drive quantization, the
 * active SIMD tier (propagator values are tier-dependent within the
 * 1e-12 budget, so cross-tier serves must miss and re-derive), and
 * the serialization format version.
 */
std::uint64_t simConfigFingerprint(const PulseSimulator &sim);

} // namespace store
} // namespace qpulse

#endif // QPULSE_STORE_SERDE_H
