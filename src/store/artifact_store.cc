#include "store/artifact_store.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <unordered_set>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/env.h"
#include "pulse/schedule.h"
#include "store/serde.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {
namespace store {

namespace fs = std::filesystem;

namespace {

// Record framing (all integers little-endian, docs/PERSISTENCE.md):
//   u32 magic 'QPSR' | u32 formatVersion | u32 kind | u32 reserved
//   u64 contentHash | u64 generation | u64 configFingerprint
//   u64 payloadBytes | payload... | u64 crc64(header + payload)
constexpr std::uint32_t kRecordMagic = 0x52535051u;  // "QPSR"
constexpr std::uint32_t kIndexMagic = 0x49535051u;   // "QPSI"
constexpr std::size_t kRecordHeaderBytes = 4 * 4 + 4 * 8;
constexpr std::size_t kRecordTrailerBytes = 8;
// Index-file layout version, independent of the record format: v2
// widened the per-entry segment identity from a u32 numeric id to the
// full u64 (sequence, writer-tag) uid. A v1 index simply fails this
// check and the store rebuilds by scanning — the index is advisory.
constexpr std::uint32_t kIndexVersion = 2;

/**
 * Identity of this writer, unique across every live ArtifactStore in
 * every process sharing a directory: the pid separates processes, the
 * low bits separate stores within one process. It is parsed back out
 * of segment filenames, so two writers racing to the same sequence
 * number produce distinct segment uids (and distinct filenames — an
 * id-only scheme would let the second rename clobber the first).
 */
std::uint32_t
makeWriterTag()
{
    static std::atomic<std::uint32_t> ordinal{0};
    return (static_cast<std::uint32_t>(::getpid()) << 10) ^
           ordinal.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
segmentUid(std::uint32_t seq, std::uint32_t tag)
{
    return (static_cast<std::uint64_t>(seq) << 32) | tag;
}

telemetry::Counter &
persistCounter(const char *name)
{
    return telemetry::MetricsRegistry::global().counter(name);
}

std::uint64_t
readLeU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t
readLeU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

/** Write a whole buffer to `path` crash-safely: tmp + fsync + rename. */
Status
atomicWriteFile(const std::string &path,
                const std::uint8_t *data, std::size_t size)
{
    const std::string tmp = path + ".tmp";
    std::FILE *out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr)
        return Status::error(ErrorCode::Unavailable,
                             "cannot open " + tmp + " for writing");
    if (size > 0 && std::fwrite(data, 1, size, out) != size) {
        std::fclose(out);
        std::remove(tmp.c_str());
        return Status::error(ErrorCode::Unavailable,
                             "short write to " + tmp);
    }
    std::fflush(out);
    ::fsync(::fileno(out));
    std::fclose(out);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status::error(ErrorCode::Unavailable,
                             "cannot rename " + tmp + " into place");
    }
    return Status::okStatus();
}

/** Frame one record (header + payload + checksum trailer). */
std::vector<std::uint8_t>
frameRecord(const ArtifactKey &key,
            const std::vector<std::uint8_t> &payload)
{
    ByteWriter w;
    w.u32(kRecordMagic);
    w.u32(kFormatVersion);
    w.u32(key.kind);
    w.u32(0); // Reserved.
    w.u64(key.contentHash);
    w.u64(key.generation);
    w.u64(key.configFingerprint);
    w.u64(payload.size());
    w.raw(payload.data(), payload.size());
    const std::uint64_t checksum = crc64(w.bytes().data(), w.size());
    w.u64(checksum);
    return w.take();
}

} // namespace

std::size_t
ArtifactKeyHash::operator()(const ArtifactKey &key) const
{
    std::uint64_t h = mixHash(key.contentHash, key.generation);
    h = mixHash(h, key.configFingerprint);
    h = mixHash(h, key.kind);
    return static_cast<std::size_t>(h);
}

ArtifactStore::Mapping::~Mapping()
{
    if (base != nullptr)
        ::munmap(const_cast<std::uint8_t *>(base), size);
}

ArtifactStore::ArtifactStore(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), maxBytes_(max_bytes),
      writerTag_(makeWriterTag())
{}

// Mappings are shared with outstanding ArtifactViews; each one is
// unmapped when its last reference dies, which may outlive the store.
ArtifactStore::~ArtifactStore() = default;

std::shared_ptr<ArtifactStore>
ArtifactStore::open(const std::string &dir, std::uint64_t max_bytes,
                    Status *status)
{
    telemetry::TraceSpan span("store.open");
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        const Status s = Status::error(
            ErrorCode::Unavailable,
            "cannot create artifact store directory " + dir + ": " +
                ec.message());
        if (status != nullptr)
            *status = s;
        return nullptr;
    }
    std::shared_ptr<ArtifactStore> store(
        new ArtifactStore(dir, max_bytes));
    const Status s = store->loadExisting();
    if (status != nullptr)
        *status = s;
    if (!s.ok())
        return nullptr;
    return store;
}

std::shared_ptr<ArtifactStore>
ArtifactStore::openFromEnv()
{
    const std::optional<std::string> dir = envCacheDir();
    if (!dir.has_value())
        return nullptr; // Persistence disabled.
    Status status;
    std::shared_ptr<ArtifactStore> store =
        open(*dir, static_cast<std::uint64_t>(envCacheMaxBytes()),
             &status);
    if (store == nullptr)
        envWarn("QPULSE_CACHE_DIR",
                "disabling persistence: " + status.toString());
    return store;
}

Status
ArtifactStore::loadExisting()
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Collect and map existing segments in (sequence, tag) order —
    // oldest first for budget eviction. Both fields are parsed back
    // out of the filename so the uid is stable across processes.
    std::vector<std::pair<std::uint64_t, std::string>> found;
    std::error_code ec;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        unsigned seq = 0, tag = 0;
        if (std::sscanf(name.c_str(), "seg-%u-%u.qps", &seq, &tag) ==
                2 &&
            name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".qps") == 0)
            found.emplace_back(segmentUid(seq, tag),
                               entry.path().string());
    }
    if (ec)
        return Status::error(ErrorCode::Unavailable,
                             "cannot list " + dir_ + ": " +
                                 ec.message());
    std::sort(found.begin(), found.end());
    for (const auto &[uid, path] : found) {
        Segment segment;
        segment.uid = uid;
        segment.path = path;
        if (Status s = mapSegment(segment); !s.ok()) {
            // A transiently unreadable segment is skipped, not fatal:
            // its artifacts simply miss and re-derive.
            ++stats_.corrupt;
            continue;
        }
        segments_.push_back(segment);
    }

    // Prefer the index file; fall back to scanning on any damage.
    bool usable = false;
    if (Status s = readIndexFile(usable); !s.ok())
        return s;
    if (!usable) {
        index_.clear();
        for (Segment &segment : segments_)
            if (Status s = scanSegment(segment); !s.ok())
                return s;
    } else {
        // The index file is last-writer-wins: when two writers flush
        // into one directory concurrently, the loser's segments exist
        // on disk but carry no index entries. Scan any unreferenced
        // segment so every writer's records stay addressable (benign
        // for duplicate keys — content addressing means both records
        // decode identically).
        std::unordered_set<std::uint64_t> referenced;
        for (const auto &[key, entry] : index_)
            referenced.insert(entry.segment);
        for (Segment &segment : segments_)
            if (segment.size > 0 &&
                referenced.count(segment.uid) == 0)
                if (Status s = scanSegment(segment); !s.ok())
                    return s;
    }
    return Status::okStatus();
}

Status
ArtifactStore::mapSegment(Segment &segment)
{
    const int fd = ::open(segment.path.c_str(), O_RDONLY);
    if (fd < 0)
        return Status::error(ErrorCode::Unavailable,
                             "cannot open " + segment.path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return Status::error(ErrorCode::Unavailable,
                             "cannot stat " + segment.path);
    }
    segment.size = static_cast<std::size_t>(st.st_size);
    if (segment.size == 0) {
        segment.map.reset();
        ::close(fd);
        return Status::okStatus();
    }
    void *map =
        ::mmap(nullptr, segment.size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return Status::error(ErrorCode::Unavailable,
                             "cannot mmap " + segment.path);
    // Cold-start serves touch most of the segment in record order;
    // asking the kernel to read ahead overlaps the page-ins with
    // validation instead of faulting one 4 KiB page at a time.
    // Advisory only — a refusal just means slower first touches.
    ::madvise(map, segment.size, MADV_WILLNEED);
    auto mapping = std::make_shared<Mapping>();
    mapping->base = static_cast<const std::uint8_t *>(map);
    mapping->size = segment.size;
    segment.map = std::move(mapping);
    return Status::okStatus();
}

void
ArtifactStore::unmapSegment(Segment &segment)
{
    // Drops the store's reference only: outstanding ArtifactViews
    // keep the mapping alive, and munmap runs when the last of them
    // is destroyed (Mapping::~Mapping).
    segment.map.reset();
}

Status
ArtifactStore::scanSegment(Segment &segment)
{
    // Walk the record chain. Framing damage (bad magic, a record
    // running past the file) makes the rest of the segment
    // unaddressable — stop there and count it; everything before the
    // damage stays served. Checksums are verified lazily on first get.
    std::size_t offset = 0;
    while (offset + kRecordHeaderBytes + kRecordTrailerBytes <=
           segment.size) {
        const std::uint8_t *p = segment.map->base + offset;
        const std::uint32_t magic = readLeU32(p);
        if (magic != kRecordMagic)
            break; // Counted below: offset stops short of the size.
        const std::uint32_t version = readLeU32(p + 4);
        ArtifactKey key;
        key.kind = readLeU32(p + 8);
        key.contentHash = readLeU64(p + 16);
        key.generation = readLeU64(p + 24);
        key.configFingerprint = readLeU64(p + 32);
        const std::uint64_t payloadBytes = readLeU64(p + 40);
        // Bound the claimed payload by the bytes actually left BEFORE
        // computing the record span: a corrupt length near 2^64 would
        // wrap recordBytes to ~0, pass the span check, and the scan
        // would never advance past the damaged record.
        const std::size_t room = segment.size - offset -
                                 kRecordHeaderBytes -
                                 kRecordTrailerBytes;
        if (payloadBytes > room)
            break; // Truncated/corrupt tail; counted below.
        const std::size_t recordBytes =
            kRecordHeaderBytes + static_cast<std::size_t>(payloadBytes) +
            kRecordTrailerBytes;
        IndexEntry entry;
        entry.segment = segment.uid;
        entry.offset = offset;
        entry.recordBytes = recordBytes;
        if (version != kFormatVersion) {
            entry.state = RecordState::QuarantinedVersion;
            ++stats_.versionMismatch;
            ++stats_.quarantined;
        }
        index_[key] = entry; // Newest record for a key wins.
        offset += recordBytes;
    }
    if (offset < segment.size) {
        // Framing damage — bad magic, a record running past the file,
        // or a tail too short to frame one (crash mid-copy of a
        // foreign tool, disk full...). The prefix stays served; the
        // damaged remainder is quarantined as one unit.
        ++stats_.corrupt;
        ++stats_.quarantined;
    }
    return Status::okStatus();
}

Status
ArtifactStore::readIndexFile(bool &usable)
{
    usable = false;
    const std::string path = dir_ + "/index.qpi";
    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (in == nullptr)
        return Status::okStatus(); // No index: rebuild by scan.
    std::fseek(in, 0, SEEK_END);
    const long size = std::ftell(in);
    std::fseek(in, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(in);
        return Status::okStatus();
    }
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    const std::size_t read =
        bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), in);
    std::fclose(in);
    if (read != bytes.size() || bytes.size() < 4 + 4 + 8 + 8)
        return Status::okStatus(); // Short index: rebuild by scan.

    // Trailing CRC over everything before it.
    const std::uint64_t expected =
        readLeU64(bytes.data() + bytes.size() - 8);
    if (crc64(bytes.data(), bytes.size() - 8) != expected) {
        ++stats_.corrupt;
        return Status::okStatus(); // Corrupt index: rebuild by scan.
    }
    if (readLeU32(bytes.data()) != kIndexMagic ||
        readLeU32(bytes.data() + 4) != kIndexVersion) {
        ++stats_.versionMismatch;
        return Status::okStatus();
    }
    const std::uint64_t count = readLeU64(bytes.data() + 8);
    constexpr std::size_t kEntryBytes = 8 * 3 + 4 + 8 * 3;
    if (count > (bytes.size() - 16 - 8) / kEntryBytes ||
        16 + count * kEntryBytes + 8 != bytes.size()) {
        ++stats_.corrupt;
        return Status::okStatus();
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint8_t *p = bytes.data() + 16 + i * kEntryBytes;
        ArtifactKey key;
        key.contentHash = readLeU64(p);
        key.generation = readLeU64(p + 8);
        key.configFingerprint = readLeU64(p + 16);
        key.kind = readLeU32(p + 24);
        IndexEntry entry;
        entry.segment = readLeU64(p + 28);
        entry.offset = readLeU64(p + 36);
        entry.recordBytes = readLeU64(p + 44);
        // Entries must land inside a live, mapped segment; stale ones
        // (dropped segments, foreign writers) are simply skipped. The
        // bounds are checked by subtraction so a corrupt offset near
        // 2^64 cannot wrap the sum past the size.
        const auto segment = std::find_if(
            segments_.begin(), segments_.end(),
            [&](const Segment &s) { return s.uid == entry.segment; });
        if (segment == segments_.end() ||
            entry.recordBytes <
                kRecordHeaderBytes + kRecordTrailerBytes ||
            entry.recordBytes > segment->size ||
            entry.offset > segment->size - entry.recordBytes)
            continue;
        index_[key] = entry;
    }
    usable = true;
    return Status::okStatus();
}

Status
ArtifactStore::writeIndexFile()
{
    ByteWriter w;
    w.u32(kIndexMagic);
    w.u32(kIndexVersion);
    w.u64(index_.size());
    for (const auto &[key, entry] : index_) {
        w.u64(key.contentHash);
        w.u64(key.generation);
        w.u64(key.configFingerprint);
        w.u32(key.kind);
        w.u64(entry.segment);
        w.u64(entry.offset);
        w.u64(entry.recordBytes);
    }
    w.u64(crc64(w.bytes().data(), w.size()));
    return atomicWriteFile(dir_ + "/index.qpi", w.bytes().data(),
                           w.size());
}

Status
ArtifactStore::put(const ArtifactKey &key,
                   const std::vector<std::uint8_t> &payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(Pending{key, frameRecord(key, payload)});
    ++stats_.puts;
    return Status::okStatus();
}

std::uint32_t
ArtifactStore::nextSegmentSeq() const
{
    std::uint32_t next = 1;
    for (const Segment &segment : segments_)
        next = std::max(
            next, static_cast<std::uint32_t>(segment.uid >> 32) + 1);
    return next;
}

Status
ArtifactStore::flush()
{
    static telemetry::Counter &c_flushes =
        persistCounter("cache.persist.flushes");
    static telemetry::Counter &c_bytes =
        persistCounter("cache.persist.bytes_written");
    telemetry::TraceSpan span("cache.persist.flush");

    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.empty())
        return Status::okStatus();

    Segment segment;
    const std::uint32_t seq = nextSegmentSeq();
    // The writer tag keeps two writers flushing into one directory
    // from racing to the same name or the same uid — both parts are
    // parsed back on reload, so each writer's records stay
    // addressable; ordering (budget eviction) stays by sequence.
    segment.uid = segmentUid(seq, writerTag_);
    char name[64];
    std::snprintf(name, sizeof name, "seg-%06u-%u.qps", seq,
                  writerTag_);
    segment.path = dir_ + "/" + name;

    ByteWriter w;
    std::vector<std::pair<ArtifactKey, IndexEntry>> fresh;
    fresh.reserve(pending_.size());
    for (const Pending &p : pending_) {
        IndexEntry entry;
        entry.segment = segment.uid;
        entry.offset = w.size();
        entry.recordBytes = p.record.size();
        entry.state = RecordState::Valid;
        entry.payloadOffset = entry.offset + kRecordHeaderBytes;
        entry.payloadBytes = p.record.size() - kRecordHeaderBytes -
                             kRecordTrailerBytes;
        fresh.emplace_back(p.key, entry);
        w.raw(p.record.data(), p.record.size());
    }

    if (Status s =
            atomicWriteFile(segment.path, w.bytes().data(), w.size());
        !s.ok())
        return s;
    if (Status s = mapSegment(segment); !s.ok())
        return s;
    segments_.push_back(segment);
    for (auto &[key, entry] : fresh)
        index_[key] = entry;
    pending_.clear();
    stats_.bytesWritten += w.size();
    c_bytes.add(w.size());
    ++stats_.flushes;
    c_flushes.increment();

    if (Status s = enforceBudget(); !s.ok())
        return s;
    return writeIndexFile();
}

Status
ArtifactStore::enforceBudget()
{
    if (maxBytes_ == 0)
        return Status::okStatus();
    auto total = [&] {
        std::uint64_t bytes = 0;
        for (const Segment &segment : segments_)
            bytes += segment.size;
        return bytes;
    };
    // Drop oldest whole segments until under budget; the newest one
    // (just flushed) always survives so fresh write-backs are never
    // reclaimed before a single serve.
    while (segments_.size() > 1 && total() > maxBytes_) {
        Segment victim = segments_.front();
        segments_.erase(segments_.begin());
        for (auto it = index_.begin(); it != index_.end();)
            it = it->second.segment == victim.uid ? index_.erase(it)
                                                  : std::next(it);
        unmapSegment(victim);
        std::remove(victim.path.c_str());
        ++stats_.segmentsDropped;
    }
    return Status::okStatus();
}

Status
ArtifactStore::validate(const ArtifactKey &key, IndexEntry &entry)
{
    static telemetry::Counter &c_corrupt =
        persistCounter("cache.persist.corrupt");
    static telemetry::Counter &c_version =
        persistCounter("cache.persist.version_mismatch");
    static telemetry::Counter &c_quarantined =
        persistCounter("cache.persist.quarantined");

    const auto segment = std::find_if(
        segments_.begin(), segments_.end(),
        [&](const Segment &s) { return s.uid == entry.segment; });
    const auto quarantineCorrupt = [&](const std::string &why) {
        entry.state = RecordState::QuarantinedCorrupt;
        ++stats_.corrupt;
        ++stats_.quarantined;
        c_corrupt.increment();
        c_quarantined.increment();
        return Status::error(ErrorCode::StoreCorrupt, why);
    };
    // Subtraction, not addition: a corrupt offset/recordBytes pair
    // near 2^64 must not wrap the bound check.
    if (segment == segments_.end() ||
        entry.recordBytes <
            kRecordHeaderBytes + kRecordTrailerBytes ||
        entry.recordBytes > segment->size ||
        entry.offset > segment->size - entry.recordBytes)
        return quarantineCorrupt("record outside its segment");

    const std::uint8_t *p = segment->map->base + entry.offset;
    if (readLeU32(p) != kRecordMagic)
        return quarantineCorrupt("bad record magic");
    if (readLeU32(p + 4) != kFormatVersion) {
        entry.state = RecordState::QuarantinedVersion;
        ++stats_.versionMismatch;
        ++stats_.quarantined;
        c_version.increment();
        c_quarantined.increment();
        return Status::error(ErrorCode::StoreVersionMismatch,
                             "record format version " +
                                 std::to_string(readLeU32(p + 4)) +
                                 " != " +
                                 std::to_string(kFormatVersion));
    }
    ArtifactKey stored;
    stored.kind = readLeU32(p + 8);
    stored.contentHash = readLeU64(p + 16);
    stored.generation = readLeU64(p + 24);
    stored.configFingerprint = readLeU64(p + 32);
    if (!(stored == key))
        return quarantineCorrupt("record key does not echo the "
                                 "requested key (index damage)");
    const std::uint64_t payloadBytes = readLeU64(p + 40);
    if (kRecordHeaderBytes + payloadBytes + kRecordTrailerBytes !=
        entry.recordBytes)
        return quarantineCorrupt("record length mismatch");
    const std::uint64_t expected =
        readLeU64(p + entry.recordBytes - kRecordTrailerBytes);
    if (crc64(p, static_cast<std::size_t>(entry.recordBytes -
                                          kRecordTrailerBytes)) !=
        expected)
        return quarantineCorrupt("record checksum mismatch");

    entry.state = RecordState::Valid;
    entry.payloadOffset = entry.offset + kRecordHeaderBytes;
    entry.payloadBytes = payloadBytes;
    return Status::okStatus();
}

Status
ArtifactStore::get(const ArtifactKey &key, ArtifactView &view)
{
    static telemetry::Counter &c_read =
        persistCounter("cache.persist.bytes_read");

    std::lock_guard<std::mutex> lock(mutex_);
    view = ArtifactView{};
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return Status::error(ErrorCode::InvalidArgument,
                             "artifact not found");
    }
    IndexEntry &entry = it->second;
    switch (entry.state) {
      case RecordState::QuarantinedCorrupt:
        ++stats_.misses;
        return Status::error(ErrorCode::StoreCorrupt,
                             "record is quarantined");
      case RecordState::QuarantinedVersion:
        ++stats_.misses;
        return Status::error(ErrorCode::StoreVersionMismatch,
                             "record is quarantined (foreign format "
                             "version)");
      case RecordState::Unvalidated:
        if (Status s = validate(key, entry); !s.ok()) {
            ++stats_.misses;
            return s;
        }
        break;
      case RecordState::Valid:
        break;
    }
    const auto segment = std::find_if(
        segments_.begin(), segments_.end(),
        [&](const Segment &s) { return s.uid == entry.segment; });
    if (segment == segments_.end()) {
        ++stats_.misses;
        return Status::error(ErrorCode::StoreCorrupt,
                             "segment dropped");
    }
    view.data = segment->map->base + entry.payloadOffset;
    view.size = static_cast<std::size_t>(entry.payloadBytes);
    // Pin the mapping: the caller may consume the view after this
    // mutex is released, racing a flush whose size budget drops the
    // segment — the munmap is deferred until the view is gone.
    view.pin = segment->map;
    ++stats_.hits;
    stats_.bytesRead += view.size;
    c_read.add(view.size);
    return Status::okStatus();
}

bool
ArtifactStore::contains(const ArtifactKey &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(key) != index_.end();
}

std::size_t
ArtifactStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

std::uint64_t
ArtifactStore::diskBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t bytes = 0;
    for (const Segment &segment : segments_)
        bytes += segment.size;
    return bytes;
}

StoreStats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

Status
putSchedule(ArtifactStore &store, const ArtifactKey &key,
            const Schedule &schedule)
{
    ByteWriter w;
    serializeSchedule(schedule, w);
    return store.put(key, w.bytes());
}

Status
getSchedule(ArtifactStore &store, const ArtifactKey &key,
            Schedule &out)
{
    ArtifactView view;
    if (Status s = store.get(key, view); !s.ok())
        return s;
    ByteReader r(view.data, view.size);
    return deserializeSchedule(r, out);
}

Status
putPulseLibrary(ArtifactStore &store, const ArtifactKey &key,
                const PulseLibrary &library)
{
    ByteWriter w;
    w.u64(hashBackendConfig(library.config));
    serializePulseLibrary(library, w);
    return store.put(key, w.bytes());
}

Status
getPulseLibrary(ArtifactStore &store, const ArtifactKey &key,
                PulseLibrary &out)
{
    ArtifactView view;
    if (Status s = store.get(key, view); !s.ok())
        return s;
    ByteReader r(view.data, view.size);
    std::uint64_t configHash = 0;
    if (Status s = r.u64(configHash); !s.ok())
        return s;
    if (Status s = deserializePulseLibrary(r, out); !s.ok())
        return s;
    if (hashBackendConfig(out.config) != configHash)
        return Status::error(ErrorCode::StoreCorrupt,
                             "calibration snapshot config echo does not "
                             "match its payload");
    return Status::okStatus();
}

} // namespace store
} // namespace qpulse
