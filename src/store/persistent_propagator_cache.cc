#include "store/persistent_propagator_cache.h"

#include "common/logging.h"
#include "store/serde.h"
#include "telemetry/metrics.h"

namespace qpulse {
namespace store {

namespace {

telemetry::Counter &
persistCounter(const char *name)
{
    return telemetry::MetricsRegistry::global().counter(name);
}

} // namespace

PersistentPropagatorCache::PersistentPropagatorCache(
    std::shared_ptr<ArtifactStore> store, std::uint64_t generation,
    std::uint64_t config_fingerprint, std::size_t capacity)
    : PropagatorCache(capacity), store_(std::move(store)),
      configFingerprint_(config_fingerprint), generation_(generation)
{
    qpulseRequire(store_ != nullptr,
                  "PersistentPropagatorCache needs a store; use a "
                  "plain PropagatorCache when persistence is off");
}

PersistentPropagatorCache::~PersistentPropagatorCache()
{
    try {
        flush();
    } catch (...) {
        // Destructors never throw; a failed final flush only costs
        // re-derivation next time.
    }
}

ArtifactKey
PersistentPropagatorCache::diskKey(const PropagatorKey &key) const
{
    // Caller holds persistMutex_ (generation_).
    ArtifactKey disk;
    disk.contentHash = hashBytes(
        key.words.data(), key.words.size() * sizeof(std::int64_t));
    disk.generation = generation_;
    disk.configFingerprint = configFingerprint_;
    disk.kind =
        static_cast<std::uint32_t>(ArtifactKind::PropagatorBlock);
    return disk;
}

bool
PersistentPropagatorCache::loadFromDisk(const PropagatorKey &key,
                                        Matrix &out)
{
    static telemetry::Counter &c_diskHits =
        persistCounter("cache.persist.disk_hits");
    static telemetry::Counter &c_diskMisses =
        persistCounter("cache.persist.disk_misses");
    static telemetry::Counter &c_fallbacks =
        persistCounter("cache.persist.fallbacks");

    ArtifactKey disk;
    {
        std::lock_guard<std::mutex> lock(persistMutex_);
        disk = diskKey(key);
    }
    // The view pins its segment mapping, so deserializing below — with
    // no store lock held — is safe against a concurrent flush whose
    // size budget drops (and would otherwise munmap) the segment.
    ArtifactView view;
    const Status status = store_->get(disk, view);
    if (!status.ok()) {
        std::lock_guard<std::mutex> lock(persistMutex_);
        if (status.code() == ErrorCode::StoreCorrupt ||
            status.code() == ErrorCode::StoreVersionMismatch) {
            // Fail closed: the record exists but cannot be trusted.
            ++persistStats_.fallbacks;
            c_fallbacks.increment();
        }
        ++persistStats_.diskMisses;
        c_diskMisses.increment();
        return false;
    }

    // Payload: full key words echo + matrix. The word-for-word key
    // comparison guards 64-bit content-hash collisions — a propagator
    // derived from *different* drive values must never be served.
    ByteReader r(view.data, view.size);
    PropagatorKey stored;
    Matrix value;
    if (!deserializePropagatorKey(r, stored).ok() ||
        !deserializeMatrix(r, value).ok()) {
        std::lock_guard<std::mutex> lock(persistMutex_);
        ++persistStats_.fallbacks;
        c_fallbacks.increment();
        ++persistStats_.diskMisses;
        c_diskMisses.increment();
        return false;
    }
    if (!(stored == key)) {
        std::lock_guard<std::mutex> lock(persistMutex_);
        ++persistStats_.collisions;
        ++persistStats_.diskMisses;
        c_diskMisses.increment();
        return false;
    }
    out = std::move(value);
    {
        std::lock_guard<std::mutex> lock(persistMutex_);
        ++persistStats_.diskHits;
    }
    c_diskHits.increment();
    return true;
}

void
PersistentPropagatorCache::queueWriteBack(const PropagatorKey &key,
                                          const Matrix &value)
{
    static telemetry::Counter &c_writeBacks =
        persistCounter("cache.persist.write_backs");

    ByteWriter w;
    serializePropagatorKey(key, w);
    serializeMatrix(value, w);
    bool shouldFlush = false;
    {
        std::lock_guard<std::mutex> lock(persistMutex_);
        queue_.push_back(QueuedRecord{diskKey(key), w.take()});
        ++persistStats_.writeBacks;
        shouldFlush = queue_.size() >= kAutoFlushEntries;
    }
    c_writeBacks.increment();
    if (shouldFlush)
        flush(); // Outside persistMutex_; flush re-acquires it.
}

Matrix
PersistentPropagatorCache::getOrCompute(
    const PropagatorKey &key, const std::function<Matrix()> &compute)
{
    // The base class handles the memory tier and runs this factory
    // with its LRU mutex released (the lock-order contract).
    return PropagatorCache::getOrCompute(key, [&]() -> Matrix {
        Matrix value;
        if (loadFromDisk(key, value))
            return value;
        value = compute();
        queueWriteBack(key, value);
        return value;
    });
}

void
PersistentPropagatorCache::getOrComputeInto(
    const PropagatorKey &key, const std::function<Matrix()> &compute,
    Matrix &out)
{
    PropagatorCache::getOrComputeInto(
        key,
        [&]() -> Matrix {
            Matrix value;
            if (loadFromDisk(key, value))
                return value;
            value = compute();
            queueWriteBack(key, value);
            return value;
        },
        out);
}

Status
PersistentPropagatorCache::flush()
{
    std::vector<QueuedRecord> drained;
    {
        std::lock_guard<std::mutex> lock(persistMutex_);
        drained.swap(queue_);
    }
    // Store I/O happens with no cache lock held (leaf-lock contract).
    for (const QueuedRecord &record : drained)
        if (Status s = store_->put(record.key, record.payload);
            !s.ok())
            return s;
    return store_->flush();
}

void
PersistentPropagatorCache::setGeneration(std::uint64_t generation)
{
    {
        std::lock_guard<std::mutex> lock(persistMutex_);
        if (generation_ == generation)
            return;
        generation_ = generation;
        // Queued write-backs carry old-generation disk keys; they
        // belong to the invalidated calibration and must not land.
        queue_.clear();
    }
    // Memory tier holds old-basis values; drop them (base leaf lock,
    // taken after persistMutex_ is released — never nested).
    clear();
}

std::uint64_t
PersistentPropagatorCache::generation() const
{
    std::lock_guard<std::mutex> lock(persistMutex_);
    return generation_;
}

PersistStats
PersistentPropagatorCache::persistStats() const
{
    std::lock_guard<std::mutex> lock(persistMutex_);
    return persistStats_;
}

std::pair<PropagatorCacheStats, PersistStats>
PersistentPropagatorCache::snapshotAndResetAll()
{
    // Documented order: LRU mutex first (inside snapshotAndReset),
    // then persistMutex_ — strictly sequential, never nested.
    const PropagatorCacheStats base = snapshotAndReset();
    std::lock_guard<std::mutex> lock(persistMutex_);
    const PersistStats persist = persistStats_;
    persistStats_ = PersistStats{};
    return {base, persist};
}

} // namespace store
} // namespace qpulse
