#include "synth/weyl.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/gates.h"
#include "opt/nelder_mead.h"

namespace qpulse {

namespace {

/** Determinant of a small complex matrix via LU with partial pivoting. */
Complex
determinant(Matrix a)
{
    const std::size_t n = a.rows();
    Complex det{1.0, 0.0};
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a(r, col)) > std::abs(a(pivot, col)))
                pivot = r;
        if (std::abs(a(pivot, col)) < 1e-300)
            return Complex{0.0, 0.0};
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a(col, c), a(pivot, c));
            det = -det;
        }
        det *= a(col, col);
        const Complex inv = Complex{1.0, 0.0} / a(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const Complex factor = a(r, col) * inv;
            if (factor == Complex{0.0, 0.0})
                continue;
            for (std::size_t c = col; c < n; ++c)
                a(r, c) -= factor * a(col, c);
        }
    }
    return det;
}

/** The magic-basis change matrix Q (columns are the Bell-like basis). */
Matrix
magicBasis()
{
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    const Complex i{0.0, 1.0};
    return Matrix{{inv_sqrt2, 0, 0, i * inv_sqrt2},
                  {0, i * inv_sqrt2, inv_sqrt2, 0},
                  {0, i * inv_sqrt2, -inv_sqrt2, 0},
                  {inv_sqrt2, 0, 0, -i * inv_sqrt2}};
}

/** Canonical interaction gate A(c) = exp(i (c1 XX + c2 YY + c3 ZZ)/2). */
Matrix
canonicalGate(double c1, double c2, double c3)
{
    using namespace gates;
    const Matrix xx = kron(x(), x());
    const Matrix yy = kron(y(), y());
    const Matrix zz = kron(z(), z());
    Matrix generator = xx * Complex{c1 / 2, 0.0};
    generator += yy * Complex{c2 / 2, 0.0};
    generator += zz * Complex{c3 / 2, 0.0};
    // generator is Hermitian; exp(+i G) via the Hermitian path.
    return expIH(generator, 1.0);
}

} // namespace

MakhlinInvariants
makhlinInvariants(const Matrix &u)
{
    qpulseRequire(u.rows() == 4 && u.cols() == 4,
                  "makhlinInvariants requires a 4x4 matrix");
    qpulseRequire(u.isUnitary(1e-8),
                  "makhlinInvariants requires a unitary matrix");

    const Matrix q = magicBasis();
    const Matrix m_basis = q.adjoint() * u * q;
    const Matrix m = m_basis.transpose() * m_basis;
    const Complex det_u = determinant(u);

    const Complex tr = m.trace();
    const Complex tr_sq = (m * m).trace();

    MakhlinInvariants inv;
    inv.g1 = tr * tr / (16.0 * det_u);
    inv.g2 = ((tr * tr - tr_sq) / (4.0 * det_u)).real();
    return inv;
}

bool
locallyEquivalent(const Matrix &a, const Matrix &b, double tol)
{
    const MakhlinInvariants ia = makhlinInvariants(a);
    const MakhlinInvariants ib = makhlinInvariants(b);
    return std::abs(ia.g1 - ib.g1) < tol && std::abs(ia.g2 - ib.g2) < tol;
}

WeylCoordinates
weylCoordinates(const Matrix &u)
{
    // Recover the canonical-class coordinates by matching Makhlin
    // invariants against the canonical gate A(c1, c2, c3). The chamber
    // pi/2 >= c1 >= c2 >= c3 >= 0 covers every class we report; the
    // boundary reflection ambiguity (c3 -> -c3 at c1 = pi/2) maps to the
    // same invariants, so we return the non-negative representative.
    const MakhlinInvariants target = makhlinInvariants(u);

    Objective objective = [&](const std::vector<double> &p) {
        // Parametrise the ordered chamber through absolute values.
        const double c1 = std::clamp(p[0], 0.0, kPi / 2);
        const double c2 = std::clamp(p[1], 0.0, c1);
        const double c3 = std::clamp(p[2], 0.0, c2);
        const MakhlinInvariants trial =
            makhlinInvariants(canonicalGate(c1, c2, c3));
        const double d1 = std::abs(trial.g1 - target.g1);
        const double d2 = std::abs(trial.g2 - target.g2);
        return d1 * d1 + d2 * d2;
    };

    Rng rng(0xC0FFEE);
    NelderMeadOptions options;
    options.initialStep = 0.3;
    OptResult best;
    best.fun = 1e300;
    // A handful of deterministic starting points spanning the chamber,
    // plus random restarts, reliably lands on the canonical class.
    const std::vector<std::vector<double>> starts = {
        {0.1, 0.05, 0.0}, {kPi / 4, 0.0, 0.0}, {kPi / 2, 0.0, 0.0},
        {kPi / 2, kPi / 2, 0.0}, {kPi / 2, kPi / 2, kPi / 2},
        {kPi / 4, kPi / 4, 0.0}, {kPi / 3, kPi / 6, 0.1},
    };
    for (const auto &start : starts) {
        const OptResult candidate = nelderMead(objective, start, options);
        if (candidate.fun < best.fun)
            best = candidate;
    }
    for (int restart = 0; restart < 8 && best.fun > 1e-16; ++restart) {
        std::vector<double> start = {rng.uniform(0.0, kPi / 2),
                                     rng.uniform(0.0, kPi / 2),
                                     rng.uniform(0.0, kPi / 2)};
        std::sort(start.rbegin(), start.rend());
        const OptResult candidate = nelderMead(objective, start, options);
        if (candidate.fun < best.fun)
            best = candidate;
    }

    WeylCoordinates coords;
    coords.c1 = std::clamp(best.x[0], 0.0, kPi / 2);
    coords.c2 = std::clamp(best.x[1], 0.0, coords.c1);
    coords.c3 = std::clamp(best.x[2], 0.0, coords.c2);
    return coords;
}

} // namespace qpulse
