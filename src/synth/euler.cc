#include "synth/euler.h"

#include <cmath>

#include "common/constants.h"
#include "linalg/gates.h"

namespace qpulse {

double
wrapAngle(double angle)
{
    while (angle > kPi)
        angle -= 2.0 * kPi;
    while (angle <= -kPi)
        angle += 2.0 * kPi;
    return angle;
}

bool
angleIsZero(double angle, double tol)
{
    return std::abs(wrapAngle(angle)) < tol;
}

U3Angles
u3FromUnitary(const Matrix &u)
{
    qpulseRequire(u.rows() == 2 && u.cols() == 2,
                  "u3FromUnitary requires a 2x2 matrix");
    qpulseRequire(u.isUnitary(1e-8),
                  "u3FromUnitary requires a unitary matrix");

    // Remove the global phase: det(U3) = e^{i(phi+lambda)} with
    // |u00| = cos(theta/2). Choose the phase so u00 becomes real >= 0.
    const Complex u00 = u(0, 0);
    const Complex u10 = u(1, 0);

    U3Angles angles{};
    angles.theta = 2.0 * std::atan2(std::abs(u10), std::abs(u00));

    // Phase conventions: U3(t,p,l) has
    //   u00 = cos(t/2), u10 = e^{ip} sin(t/2),
    //   u01 = -e^{il} sin(t/2), u11 = e^{i(p+l)} cos(t/2).
    const double abs_u00 = std::abs(u00);
    const double abs_u10 = std::abs(u10);

    double global = 0.0;
    if (abs_u00 > 1e-12) {
        global = std::arg(u00);
    } else {
        // theta = pi: u00 unusable; fix global phase via u10 and set
        // phi = 0 by convention (phase folds into lambda).
        global = std::arg(u10);
    }

    if (abs_u00 > 1e-12 && abs_u10 > 1e-12) {
        angles.phi = std::arg(u(1, 0)) - global;
        angles.lambda = std::arg(-u(0, 1)) - global;
    } else if (abs_u00 > 1e-12) {
        // theta = 0: only phi + lambda matters; put it all in lambda.
        angles.phi = 0.0;
        angles.lambda = std::arg(u(1, 1)) - global;
    } else {
        // theta = pi: only phi - lambda matters; put it all in lambda.
        angles.phi = 0.0;
        angles.lambda = std::arg(-u(0, 1)) - global;
    }
    angles.phi = wrapAngle(angles.phi);
    angles.lambda = wrapAngle(angles.lambda);
    angles.globalPhase = global;
    return angles;
}

std::vector<Gate>
lowerU3Standard(const U3Angles &angles, std::size_t wire)
{
    // Equation 2 (right-to-left):
    //   U3 = Rz(phi+90deg+90deg?) ... we use the exact identity
    //   U3(t,p,l) = Rz(p+pi) Rx(pi/2) Rz(t+pi) Rx(pi/2) Rz(l)
    // which holds up to global phase. Program order is reversed.
    std::vector<Gate> sequence;
    sequence.push_back(makeGate(GateType::Rz, {wire}, {angles.lambda}));
    sequence.push_back(makeGate(GateType::X90, {wire}));
    sequence.push_back(
        makeGate(GateType::Rz, {wire}, {wrapAngle(angles.theta + kPi)}));
    sequence.push_back(makeGate(GateType::X90, {wire}));
    sequence.push_back(
        makeGate(GateType::Rz, {wire}, {wrapAngle(angles.phi + kPi)}));
    return sequence;
}

std::vector<Gate>
lowerU3Direct(const U3Angles &angles, std::size_t wire)
{
    // Equation 3: with our Rz(a) = exp(-i a Z / 2) convention the exact
    // identity is U3(t,p,l) = Rz(p + pi/2) Rx(t) Rz(l - pi/2) up to a
    // global phase. (The paper quotes +-180 deg offsets under its
    // frame-change sign convention; the content -- one scaled pulse
    // sandwiched by free frame changes -- is identical.)
    std::vector<Gate> sequence;
    sequence.push_back(makeGate(GateType::Rz, {wire},
                                {wrapAngle(angles.lambda - kPi / 2)}));
    sequence.push_back(makeGate(GateType::DirectRx, {wire},
                                {angles.theta}));
    sequence.push_back(makeGate(GateType::Rz, {wire},
                                {wrapAngle(angles.phi + kPi / 2)}));
    return sequence;
}

} // namespace qpulse
