/**
 * @file
 * Single-qubit gate synthesis: extraction of U3 angles from an
 * arbitrary 2x2 unitary and the two pulse-level realisations the paper
 * contrasts:
 *
 *  - Equation 2 (standard): U3 = Rz * Rx(90) * Rz * Rx(90) * Rz
 *    (two calibrated pulses + three virtual-Z frame changes), and
 *  - Equation 3 (optimized): U3 = Rz(phi+pi) * Rx(theta) * Rz(lambda-pi)
 *    (one amplitude-scaled DirectRx pulse + two frame changes).
 */
#ifndef QPULSE_SYNTH_EULER_H
#define QPULSE_SYNTH_EULER_H

#include "circuit/gate.h"
#include "linalg/matrix.h"

namespace qpulse {

/** U3 parameterisation of a single-qubit unitary (global phase split). */
struct U3Angles
{
    double theta;
    double phi;
    double lambda;
    double globalPhase; ///< U = e^{i globalPhase} * U3(theta, phi, lambda)
};

/** Extract U3 angles from any 2x2 unitary. */
U3Angles u3FromUnitary(const Matrix &u);

/**
 * Equation 2 lowering: the standard two-pulse realisation.
 * Returns {Rz(lambda), X90, Rz(theta+pi), X90, Rz(phi+pi)} in circuit
 * (application) order on the given wire. The equation in the paper reads
 * right-to-left; this returns left-to-right program order.
 */
std::vector<Gate> lowerU3Standard(const U3Angles &angles, std::size_t wire);

/**
 * Equation 3 lowering: the optimized single-pulse realisation.
 * Returns {Rz(lambda - pi), DirectRx(theta), Rz(phi + pi)} in program
 * order on the given wire.
 */
std::vector<Gate> lowerU3Direct(const U3Angles &angles, std::size_t wire);

/** Reduce an angle into (-pi, pi]. */
double wrapAngle(double angle);

/** True when the angle is an integer multiple of 2*pi (mod tolerance). */
bool angleIsZero(double angle, double tol = 1e-10);

} // namespace qpulse

#endif // QPULSE_SYNTH_EULER_H
