#include "synth/decomposer.h"

#include <cmath>

#include "common/constants.h"
#include "common/logging.h"
#include "linalg/gates.h"
#include "opt/nelder_mead.h"

namespace qpulse {

namespace {

/** Parameters per local layer: two independent U3 gates. */
constexpr int kParamsPerLayer = 6;

Matrix
localLayer(const double *p)
{
    return kron(gates::u3(p[0], p[1], p[2]), gates::u3(p[3], p[4], p[5]));
}

} // namespace

NativeGate
nativeCnot()
{
    return {"CNOT", [](double) { return gates::cnot(); }, false, 1.0};
}

NativeGate
nativeCr90()
{
    return {"CR(90)", [](double) { return gates::cr(kPi / 2); }, false,
            1.0};
}

NativeGate
nativeIswap()
{
    return {"iSWAP", [](double) { return gates::iswap(); }, false, 1.0};
}

NativeGate
nativeBswap()
{
    return {"bSWAP", [](double) { return gates::bswap(); }, false, 1.0};
}

NativeGate
nativeMap()
{
    return {"MAP", [](double) { return gates::map(); }, false, 1.0};
}

NativeGate
nativeSqrtIswap()
{
    // A damped-pulse "half" iSWAP costs half of a full iSWAP (Table 2).
    return {"sqrt(iSWAP)", [](double) { return gates::sqrtIswap(); },
            false, 0.5};
}

NativeGate
nativeCrTheta()
{
    return {"CR(theta)", [](double theta) { return gates::cr(theta); },
            true, 1.0};
}

Matrix
buildTrialUnitary(const NativeGate &basis, const std::vector<double> &params,
                  int applications)
{
    const int locals = applications + 1;
    const std::size_t local_params =
        static_cast<std::size_t>(locals) * kParamsPerLayer;
    const std::size_t expected = local_params +
        (basis.parametrized ? static_cast<std::size_t>(applications) : 0);
    qpulseRequire(params.size() == expected,
                  "buildTrialUnitary parameter count mismatch: got ",
                  params.size(), ", expected ", expected);

    Matrix u = localLayer(params.data());
    for (int k = 0; k < applications; ++k) {
        const double theta = basis.parametrized
            ? params[local_params + static_cast<std::size_t>(k)]
            : 0.0;
        u = basis.family(theta) * u;
        u = localLayer(params.data() +
                       (static_cast<std::size_t>(k) + 1) *
                           kParamsPerLayer) *
            u;
    }
    return u;
}

namespace {

/** Fidelity of the best trial circuit with a fixed application count. */
Decomposition
searchFixedCount(const Matrix &target, const NativeGate &basis,
                 int applications, const DecomposerOptions &options,
                 Rng &rng)
{
    const std::size_t local_params =
        static_cast<std::size_t>(applications + 1) * kParamsPerLayer;
    const std::size_t n_params = local_params +
        (basis.parametrized ? static_cast<std::size_t>(applications) : 0);

    auto fidelity_of = [&](const std::vector<double> &p) {
        return averageGateFidelity(
            target, buildTrialUnitary(basis, p, applications));
    };

    NelderMeadOptions nm;
    nm.maxIterations = 6000;
    nm.initialStep = 0.6;

    Decomposition best;
    best.applications = applications;

    if (!basis.parametrized) {
        // Maximise fidelity directly.
        Objective objective = [&](const std::vector<double> &p) {
            return 1.0 - fidelity_of(p);
        };
        std::vector<double> x0(n_params, 0.1);
        const OptResult result = nelderMeadMultiStart(
            objective, x0, options.restartsPerLayer, kPi, rng, nm);
        best.fidelity = 1.0 - result.fun;
        best.params = result.x;
        best.cost = applications * basis.unitCost;
        best.feasible = best.fidelity >= options.fidelityFloor;
        return best;
    }

    // Parametrized gate: minimise total interaction cost
    // sum(|theta_i|) / 90deg subject to fidelity >= floor, exactly the
    // paper's COBYLA setup (Section 3.2).
    Objective cost_objective = [&](const std::vector<double> &p) {
        double total = 0.0;
        for (int k = 0; k < applications; ++k)
            total += std::abs(p[local_params + static_cast<std::size_t>(k)]);
        return total / (kPi / 2);
    };
    std::vector<Constraint> constraints = {
        [&](const std::vector<double> &p) {
            return fidelity_of(p) - options.fidelityFloor;
        }};

    std::vector<double> x0(n_params, 0.1);
    for (int k = 0; k < applications; ++k)
        x0[local_params + static_cast<std::size_t>(k)] = kPi / 2;

    const OptResult result = constrainedMinimize(
        cost_objective, constraints, x0, options.restartsPerLayer, kPi,
        rng, nm);

    best.fidelity = fidelity_of(result.x);
    best.params = result.x;
    best.cost = cost_objective(result.x);
    // The penalty solution may sit a hair under the floor.
    best.feasible = best.fidelity >= options.fidelityFloor - 1e-5;
    for (int k = 0; k < applications; ++k)
        best.thetas.push_back(
            result.x[local_params + static_cast<std::size_t>(k)]);
    return best;
}

} // namespace

Decomposition
decompose(const Matrix &target, const NativeGate &basis,
          const DecomposerOptions &options)
{
    qpulseRequire(target.rows() == 4 && target.cols() == 4,
                  "decompose expects a 4x4 target");
    Rng rng(options.seed);

    Decomposition best;
    for (int count = 0; count <= options.maxApplications; ++count) {
        Decomposition attempt =
            searchFixedCount(target, basis, count, options, rng);
        if (attempt.feasible) {
            if (!basis.parametrized)
                return attempt;
            // Parametrized search: a higher application count can still
            // lower the summed-theta cost (e.g. echo splitting), so keep
            // the cheapest feasible solution seen.
            if (!best.feasible || attempt.cost < best.cost - 1e-6)
                best = attempt;
            // Stop early once an extra application stops helping.
            if (best.feasible && count > best.applications)
                break;
        }
    }
    return best;
}

Matrix
targetCnot()
{
    return gates::cnot();
}

Matrix
targetSwap()
{
    return gates::swap();
}

Matrix
targetZzInteraction(double theta)
{
    return gates::zz(theta);
}

Matrix
targetFermionicSimulation()
{
    return gates::fermionicSimulation();
}

} // namespace qpulse
