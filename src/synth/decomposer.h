/**
 * @file
 * Numeric two-qubit basis-gate decomposer (the engine behind Table 2).
 *
 * Given a target two-qubit operation and a native basis gate, find the
 * minimum number of basis-gate applications — interleaved with
 * arbitrary single-qubit rotations, which cost nothing by comparison —
 * that realises the target with >= 99.9% average-gate fidelity. This
 * mirrors Qiskit's TwoQubitBasisDecomposer for discrete gates, and the
 * paper's COBYLA-based search for the parametrized CR(theta) column,
 * where each application additionally optimises its own theta and the
 * reported cost is the total interaction strength sum(|theta_i|)/90deg.
 */
#ifndef QPULSE_SYNTH_DECOMPOSER_H
#define QPULSE_SYNTH_DECOMPOSER_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace qpulse {

/** A native two-qubit basis gate (fixed matrix or parametrized family). */
struct NativeGate
{
    std::string name;

    /** Fixed gate: matrix is used directly; parametrized: generator(theta).
     */
    std::function<Matrix(double)> family;

    /** True when each application carries its own free angle. */
    bool parametrized = false;

    /**
     * Cost of one application. For discrete gates this is 1.0 (or 0.5
     * for "half" gates like sqrt-iSWAP, whose damped pulse is half as
     * long/error-prone). For parametrized gates the per-application
     * cost is |theta| / 90 degrees (pulse stretching, Section 6.1).
     */
    double unitCost = 1.0;
};

/** Catalogue of the native gates in Table 2's columns. */
NativeGate nativeCnot();
NativeGate nativeCr90();
NativeGate nativeIswap();
NativeGate nativeBswap();
NativeGate nativeMap();
NativeGate nativeSqrtIswap();
NativeGate nativeCrTheta();

/** Result of a decomposition search. */
struct Decomposition
{
    int applications = 0;      ///< Basis-gate applications used.
    double cost = 0.0;         ///< Total cost (see NativeGate::unitCost).
    double fidelity = 0.0;     ///< Achieved average gate fidelity.
    std::vector<double> params;///< Optimised parameter vector.
    std::vector<double> thetas;///< Per-application angles (parametrized).
    bool feasible = false;     ///< Whether >= the fidelity floor was hit.
};

/** Knobs for the decomposition search. */
struct DecomposerOptions
{
    double fidelityFloor = 0.999; ///< The paper's 99.9% constraint.
    int maxApplications = 3;
    int restartsPerLayer = 24;
    std::uint64_t seed = 0xDEC0DE;
};

/**
 * Trial-circuit evaluator: local layers L0 .. Lk interleaved with k
 * basis-gate applications,
 *   U = Lk * B(theta_k) * ... * L1 * B(theta_1) * L0,
 * each local layer being a pair of independent U3 gates.
 */
Matrix buildTrialUnitary(const NativeGate &basis,
                         const std::vector<double> &params,
                         int applications);

/**
 * Search for the cheapest decomposition of `target` with the given
 * basis gate.
 */
Decomposition decompose(const Matrix &target, const NativeGate &basis,
                        const DecomposerOptions &options = {});

/** Table 2 target operations. */
Matrix targetCnot();
Matrix targetSwap();
Matrix targetZzInteraction(double theta);
Matrix targetFermionicSimulation();

} // namespace qpulse

#endif // QPULSE_SYNTH_DECOMPOSER_H
