/**
 * @file
 * Two-qubit local-equivalence machinery.
 *
 * Two two-qubit unitaries are "locally equivalent" when they differ
 * only by single-qubit rotations before and after — exactly the
 * freedom a decomposer has for free (1q gates cost nothing at the
 * pulse level compared to 2q interactions, see Table 2 footnote). The
 * Makhlin invariants (G1 complex, G2 real) classify local-equivalence
 * orbits and need only traces, not eigendecompositions, so they are
 * robust to compute. We use them to verify decompositions and to test
 * local equivalence claims (e.g. MAP ~ CZ-class, CR(90) ~ CNOT-class).
 */
#ifndef QPULSE_SYNTH_WEYL_H
#define QPULSE_SYNTH_WEYL_H

#include "linalg/matrix.h"

namespace qpulse {

/** Makhlin local invariants of a two-qubit unitary. */
struct MakhlinInvariants
{
    Complex g1;
    double g2;
};

/** Compute the Makhlin invariants of a 4x4 unitary. */
MakhlinInvariants makhlinInvariants(const Matrix &u);

/** True when two 4x4 unitaries are locally equivalent (same orbit). */
bool locallyEquivalent(const Matrix &a, const Matrix &b, double tol = 1e-8);

/**
 * Weyl-chamber canonical coordinates (c1 >= c2 >= |c3|, in units of
 * pi/4-normalised interaction strengths) recovered numerically from a
 * 4x4 unitary via the magic-basis construction. Used for reporting and
 * for the interaction-strength cost intuition behind Table 2.
 */
struct WeylCoordinates
{
    double c1;
    double c2;
    double c3;
};

WeylCoordinates weylCoordinates(const Matrix &u);

} // namespace qpulse

#endif // QPULSE_SYNTH_WEYL_H
