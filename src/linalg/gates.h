/**
 * @file
 * Canonical unitary matrices for the gate sets discussed in the paper:
 * single-qubit rotations, the "textbook" two-qubit gates (CNOT, CZ,
 * SWAP), and the hardware-native two-qubit interactions from Table 2
 * (cross-resonance CR(theta), iSWAP and sqrt-iSWAP, bSWAP, MAP), plus
 * the near-term-algorithm primitives (ZZ interaction, fermionic
 * simulation gate).
 *
 * Conventions: qubit 0 is the most significant bit of the basis index
 * (|q0 q1>), matching the circuit/DAG module. Rotations follow
 * R_axis(theta) = exp(-i * theta/2 * Pauli_axis).
 */
#ifndef QPULSE_LINALG_GATES_H
#define QPULSE_LINALG_GATES_H

#include "linalg/matrix.h"

namespace qpulse {
namespace gates {

/** Pauli matrices and identity. */
Matrix i2();
Matrix x();
Matrix y();
Matrix z();

/** Hadamard. */
Matrix h();

/** Phase gates S = diag(1, i), T = diag(1, e^{i pi/4}). */
Matrix s();
Matrix sdg();
Matrix t();
Matrix tdg();

/** Axis rotations: exp(-i theta/2 P). */
Matrix rx(double theta);
Matrix ry(double theta);
Matrix rz(double theta);

/** Phase rotation diag(1, e^{i lambda}) (Qiskit u1). */
Matrix u1(double lambda);

/**
 * General single-qubit gate (Qiskit u3):
 * U3(theta, phi, lambda) =
 *   [[cos(t/2), -e^{i lambda} sin(t/2)],
 *    [e^{i phi} sin(t/2), e^{i(phi+lambda)} cos(t/2)]].
 */
Matrix u3(double theta, double phi, double lambda);

/** Two-qubit textbook gates (control = qubit 0, target = qubit 1). */
Matrix cnot();
Matrix cz();
Matrix swap();

/** Open-controlled NOT: flips target iff control is |0>. */
Matrix openCnot();

/**
 * Cross-resonance interaction: exp(-i theta/2 * (Z (x) X)).
 * CR(90 degrees) is the generator of CNOT (Section 5.1).
 */
Matrix cr(double theta);

/** XX+YY interaction: exp(-i theta/4 (XX + YY)). iSWAP = xxPlusYY(pi)
 *  up to convention; we expose iSWAP directly below. */
Matrix xxPlusYY(double theta);

/** iSWAP: swaps |01> and |10> with a factor of i. */
Matrix iswap();

/** sqrt(iSWAP): half of an iSWAP (a damped-pulse iSWAP, Section 3.2). */
Matrix sqrtIswap();

/** bSWAP: exp(-i theta/2 (XX - YY)/2)-type two-photon gate at theta=pi;
 *  swaps |00> and |11> with a phase. */
Matrix bswap();

/** MAP: microwave-activated conditional-phase-type gate,
 *  exp(-i pi/4 * Z (x) Z) up to local equivalence. */
Matrix map();

/** ZZ interaction: exp(-i theta/2 * Z (x) Z), the ubiquitous near-term
 *  primitive optimized in Section 6. */
Matrix zz(double theta);

/**
 * Fermionic simulation gate (Table 2 bottom row): an iSWAP-like
 * interaction combined with a controlled phase,
 * fsim(theta, phi) with the standard convention:
 *   |00> -> |00>
 *   |01> -> cos(theta)|01> - i sin(theta)|10>
 *   |10> -> -i sin(theta)|01> + cos(theta)|10>
 *   |11> -> e^{-i phi}|11>.
 */
Matrix fsim(double theta, double phi);

/** The canonical fermionic-simulation instance used in Table 2
 *  (full iSWAP-angle with a pi controlled phase). */
Matrix fermionicSimulation();

/** Embed a 1-qubit gate at the given wire of an n-qubit register. */
Matrix embed1q(const Matrix &gate, std::size_t wire, std::size_t n_qubits);

/**
 * Embed a 2-qubit gate acting on (wire_a, wire_b) of an n-qubit
 * register; wire_a binds to the gate's first (most significant) qubit.
 */
Matrix embed2q(const Matrix &gate, std::size_t wire_a, std::size_t wire_b,
               std::size_t n_qubits);

} // namespace gates

/**
 * Average gate fidelity proxy between two unitaries of equal dimension:
 * |Tr(A^dag B)| / dim. Equals 1 iff A and B agree up to global phase.
 */
double unitaryOverlap(const Matrix &a, const Matrix &b);

/**
 * Process (entanglement) fidelity |Tr(A^dag B)|^2 / dim^2 converted to
 * average gate fidelity: (d * Fp + 1) / (d + 1).
 */
double averageGateFidelity(const Matrix &a, const Matrix &b);

/** State fidelity |<a|b>|^2 between two pure states. */
double stateFidelity(const Vector &a, const Vector &b);

} // namespace qpulse

#endif // QPULSE_LINALG_GATES_H
