#include "linalg/state_panel.h"

#include <algorithm>
#include <cmath>

#include "linalg/simd.h"
#include "telemetry/metrics.h"

namespace qpulse {

namespace {

// Batched-product work counters (docs/OBSERVABILITY.md): one call per
// panel product, madds = total complex multiply-adds across the batch.
// Functions of the work submitted, never of scheduling, so they stay
// bit-identical across QPULSE_THREADS.
void
countBatchedGemm(std::size_t m, std::size_t k, std::size_t n)
{
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter(
            "linalg.gemm.batched_calls");
    static telemetry::Counter &c_madds =
        telemetry::MetricsRegistry::global().counter(
            "linalg.gemm.batched_madds");
    c_calls.increment();
    c_madds.add(static_cast<std::uint64_t>(m * k * n));
}

} // namespace

void
StatePanel::setColumn(std::size_t col, const Vector &state)
{
    qpulseAssert(col < width(), "StatePanel::setColumn out of range");
    qpulseAssert(state.size() == dim(),
                 "StatePanel::setColumn dimension mismatch");
    for (std::size_t i = 0; i < dim(); ++i)
        storage_(i, col) = state[i];
}

void
StatePanel::getColumn(std::size_t col, Vector &state) const
{
    qpulseAssert(col < width(), "StatePanel::getColumn out of range");
    state.resize(dim());
    for (std::size_t i = 0; i < dim(); ++i)
        state[i] = storage_(i, col);
}

void
StatePanel::fillColumns(const Vector &state)
{
    qpulseAssert(state.size() == dim(),
                 "StatePanel::fillColumns dimension mismatch");
    for (std::size_t i = 0; i < dim(); ++i) {
        const Complex amp = state[i];
        Complex *row = storage_.data().data() + i * width();
        std::fill(row, row + width(), amp);
    }
}

void
DensityPanel::setBlock(std::size_t col, const Matrix &rho)
{
    qpulseAssert(col < width_, "DensityPanel::setBlock out of range");
    qpulseAssert(rho.rows() == dim() && rho.cols() == dim(),
                 "DensityPanel::setBlock shape mismatch");
    const std::size_t d = dim();
    std::copy(rho.data().begin(), rho.data().end(),
              storage_.data().begin() +
                  static_cast<std::ptrdiff_t>(col * d * d));
}

void
DensityPanel::getBlock(std::size_t col, Matrix &rho) const
{
    qpulseAssert(col < width_, "DensityPanel::getBlock out of range");
    const std::size_t d = dim();
    rho.resize(d, d);
    const auto begin = storage_.data().begin() +
                       static_cast<std::ptrdiff_t>(col * d * d);
    std::copy(begin, begin + static_cast<std::ptrdiff_t>(d * d),
              rho.data().begin());
}

void
applyPanelInto(StatePanel &out, const Matrix &u, const StatePanel &in)
{
    qpulseAssert(&out != &in, "applyPanelInto: out aliases input");
    qpulseAssert(u.cols() == in.dim(),
                 "applyPanelInto shape mismatch");
    out.resize(u.rows(), in.width());
    kernels::gemmDispatch(out.storage().data().data(),
                          u.data().data(),
                          in.storage().data().data(), u.rows(),
                          u.cols(), in.width());
    countBatchedGemm(u.rows(), u.cols(), in.width());
}

void
conjugatePanelInto(DensityPanel &out, const Matrix &u,
                   const DensityPanel &in, DensityPanel &tmp)
{
    qpulseAssert(&out != &in && &tmp != &in && &out != &tmp,
                 "conjugatePanelInto: aliasing panels");
    const std::size_t d = in.dim();
    const std::size_t width = in.width();
    qpulseAssert(u.rows() == d && u.cols() == d,
                 "conjugatePanelInto shape mismatch");
    tmp.resize(d, width);
    out.resize(d, width);
    // Left factor: K contiguous block gemms tmp_i = u * rho_i (each
    // block is a d x d sub-matrix at a fixed row offset, so the raw
    // kernels see packed operands).
    const Complex *uptr = u.data().data();
    const Complex *iptr = in.storage().data().data();
    Complex *tptr = tmp.storage().data().data();
    for (std::size_t i = 0; i < width; ++i)
        kernels::gemmDispatch(tptr + i * d * d, uptr, iptr + i * d * d,
                              d, d, d);
    // Right factor, batched: out = tmp * u^dagger as ONE gemmAdjB over
    // the full (K*d) x d stack.
    kernels::gemmAdjBDispatch(out.storage().data().data(), tptr, uptr,
                              width * d, d, d);
    countBatchedGemm(width * d, d, d);
    countBatchedGemm(width * d, d, d);
}

double
panelMaxAbsDiff(const StatePanel &a, const StatePanel &b)
{
    qpulseAssert(a.dim() == b.dim() && a.width() == b.width(),
                 "panelMaxAbsDiff shape mismatch");
    double worst = 0.0;
    const auto &da = a.storage().data();
    const auto &db = b.storage().data();
    for (std::size_t i = 0; i < da.size(); ++i)
        worst = std::max(worst, std::abs(da[i] - db[i]));
    return worst;
}

} // namespace qpulse
