/**
 * @file
 * AVX2/FMA variants of the dense complex kernels.
 *
 * Compiled with per-function target attributes so the translation unit
 * stays buildable with a baseline -march: the dispatcher
 * (kernels::activeSimd) only routes here after a cpuid probe.
 *
 * Layout exploited throughout: std::complex<double> is
 * layout-compatible with double[2], and one 256-bit register holds two
 * complex doubles [re0, im0, re1, im1]. A complex multiply-accumulate
 * is two broadcasts, one in-lane swap and one fmaddsub:
 *
 *   acc += (ar + i*ai) * [b0, b1]
 *     t    = ai * swap(b)              // [ai*bi, ai*br, ...]
 *     prod = fmaddsub(ar, b, t)        // [ar*br - ai*bi, ar*bi + ai*br]
 */
#if defined(__x86_64__) || defined(__i386__)

#include "linalg/simd.h"

#include <immintrin.h>

namespace qpulse {
namespace kernels {

namespace {

#define QPULSE_AVX2 __attribute__((target("avx2,fma")))

QPULSE_AVX2 inline const double *
dp(const Complex *z)
{
    return reinterpret_cast<const double *>(z);
}

QPULSE_AVX2 inline double *
dp(Complex *z)
{
    return reinterpret_cast<double *>(z);
}

/** Sum of even lanes (0, 2) of a 256-bit vector. */
QPULSE_AVX2 inline double
sumEven(__m256d v)
{
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    return _mm_cvtsd_f64(lo) + _mm_cvtsd_f64(hi);
}

/** Sum of odd lanes (1, 3) of a 256-bit vector. */
QPULSE_AVX2 inline double
sumOdd(__m256d v)
{
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    return _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo)) +
           _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
}

} // namespace

QPULSE_AVX2 void
gemmAvx2(Complex *out, const Complex *a, const Complex *b,
         std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * k;
        Complex *orow = out + i * n;
        std::size_t j = 0;
        for (; j + 2 <= n; j += 2) {
            __m256d acc = _mm256_setzero_pd();
            for (std::size_t kk = 0; kk < k; ++kk) {
                const double *az = dp(arow + kk);
                const __m256d are = _mm256_broadcast_sd(az);
                const __m256d aim = _mm256_broadcast_sd(az + 1);
                const __m256d bv =
                    _mm256_loadu_pd(dp(b + kk * n + j));
                const __m256d bswap = _mm256_permute_pd(bv, 0x5);
                const __m256d t = _mm256_mul_pd(aim, bswap);
                acc = _mm256_add_pd(acc,
                                    _mm256_fmaddsub_pd(are, bv, t));
            }
            _mm256_storeu_pd(dp(orow + j), acc);
        }
        for (; j < n; ++j) {
            Complex sum{0.0, 0.0};
            for (std::size_t kk = 0; kk < k; ++kk)
                sum += arow[kk] * b[kk * n + j];
            orow[j] = sum;
        }
    }
}

QPULSE_AVX2 void
gemmAdjBAvx2(Complex *out, const Complex *a, const Complex *b,
             std::size_t m, std::size_t k, std::size_t n)
{
    // out(i, j) = <row_j(b) | row_i(a)>: both operands are contiguous
    // rows, so the inner product vectorizes without any transpose.
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const Complex *brow = b + j * k;
            __m256d acc_r = _mm256_setzero_pd();
            __m256d acc_i = _mm256_setzero_pd();
            std::size_t kk = 0;
            for (; kk + 2 <= k; kk += 2) {
                const __m256d x = _mm256_loadu_pd(dp(arow + kk));
                const __m256d y = _mm256_loadu_pd(dp(brow + kk));
                acc_r = _mm256_fmadd_pd(x, y, acc_r);
                acc_i = _mm256_fmadd_pd(
                    x, _mm256_permute_pd(y, 0x5), acc_i);
            }
            // x * conj(y): re = xr*yr + xi*yi, im = xi*yr - xr*yi.
            double re = sumEven(acc_r) + sumOdd(acc_r);
            double im = sumOdd(acc_i) - sumEven(acc_i);
            for (; kk < k; ++kk) {
                const Complex z = arow[kk] * std::conj(brow[kk]);
                re += z.real();
                im += z.imag();
            }
            out[i * n + j] = Complex{re, im};
        }
    }
}

QPULSE_AVX2 void
gemmAdjAAvx2(Complex *out, const Complex *a, const Complex *b,
             std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = Complex{0.0, 0.0};
    for (std::size_t kk = 0; kk < k; ++kk) {
        const Complex *arow = a + kk * m;
        const Complex *brow = b + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const double *az = dp(arow + i);
            // conj(a(kk, i)): negate the broadcast imaginary part.
            const __m256d sre = _mm256_broadcast_sd(az);
            const __m256d sim = _mm256_sub_pd(
                _mm256_setzero_pd(), _mm256_broadcast_sd(az + 1));
            Complex *orow = out + i * n;
            std::size_t j = 0;
            for (; j + 2 <= n; j += 2) {
                const __m256d bv = _mm256_loadu_pd(dp(brow + j));
                const __m256d bswap = _mm256_permute_pd(bv, 0x5);
                const __m256d t = _mm256_mul_pd(sim, bswap);
                const __m256d acc = _mm256_add_pd(
                    _mm256_loadu_pd(dp(orow + j)),
                    _mm256_fmaddsub_pd(sre, bv, t));
                _mm256_storeu_pd(dp(orow + j), acc);
            }
            const Complex s = std::conj(arow[i]);
            for (; j < n; ++j)
                orow[j] += s * brow[j];
        }
    }
}

QPULSE_AVX2 void
matvecAvx2(Complex *out, const Complex *a, const Complex *x,
           std::size_t m, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * n;
        __m256d acc_r = _mm256_setzero_pd();
        __m256d acc_i = _mm256_setzero_pd();
        std::size_t j = 0;
        for (; j + 2 <= n; j += 2) {
            const __m256d av = _mm256_loadu_pd(dp(arow + j));
            const __m256d xv = _mm256_loadu_pd(dp(x + j));
            acc_r = _mm256_fmadd_pd(av, xv, acc_r);
            acc_i = _mm256_fmadd_pd(
                av, _mm256_permute_pd(xv, 0x5), acc_i);
        }
        // a * x (no conjugation): re = ar*xr - ai*xi,
        // im = ar*xi + ai*xr.
        double re = sumEven(acc_r) - sumOdd(acc_r);
        double im = sumEven(acc_i) + sumOdd(acc_i);
        for (; j < n; ++j) {
            const Complex z = arow[j] * x[j];
            re += z.real();
            im += z.imag();
        }
        out[i] = Complex{re, im};
    }
}

QPULSE_AVX2 void
rotateRowPairAvx2(Complex *xp, Complex *xq, std::size_t n, double c,
                  double spr, double spi)
{
    // Two complex doubles per iteration. r90(z) = i z maps
    // [re, im] -> [-im, re]: an in-lane swap plus a sign flip of the
    // even lanes.
    const __m256d vc = _mm256_set1_pd(c);
    const __m256d vspr = _mm256_set1_pd(spr);
    const __m256d vspi = _mm256_set1_pd(spi);
    const __m256d flip_even = _mm256_setr_pd(-0.0, 0.0, -0.0, 0.0);
    double *p = dp(xp);
    double *q = dp(xq);
    const std::size_t nd = 2 * n;
    std::size_t k = 0;
    for (; k + 4 <= nd; k += 4) {
        const __m256d x = _mm256_loadu_pd(p + k);
        const __m256d y = _mm256_loadu_pd(q + k);
        const __m256d yr90 =
            _mm256_xor_pd(_mm256_permute_pd(y, 0x5), flip_even);
        const __m256d xr90 =
            _mm256_xor_pd(_mm256_permute_pd(x, 0x5), flip_even);
        // x' = c x - (spr y + spi r90(y))
        const __m256d ty =
            _mm256_fmadd_pd(vspr, y, _mm256_mul_pd(vspi, yr90));
        _mm256_storeu_pd(p + k,
                         _mm256_fmsub_pd(vc, x, ty));
        // y' = c y + (spr x - spi r90(x))
        const __m256d tx =
            _mm256_fmsub_pd(vspr, x, _mm256_mul_pd(vspi, xr90));
        _mm256_storeu_pd(q + k, _mm256_fmadd_pd(vc, y, tx));
    }
    for (; k < nd; k += 2) {
        const double xr = p[k], xi = p[k + 1];
        const double yr = q[k], yi = q[k + 1];
        p[k] = c * xr - (spr * yr - spi * yi);
        p[k + 1] = c * xi - (spr * yi + spi * yr);
        q[k] = c * yr + (spr * xr + spi * xi);
        q[k + 1] = c * yi + (spr * xi - spi * xr);
    }
}

QPULSE_AVX2 void
gemmAccTileAvx2(Complex *out, const Complex *a, const Complex *b,
                std::size_t m, std::size_t kt, std::size_t nt,
                std::size_t lda, std::size_t ldb, std::size_t ldo)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * lda;
        Complex *orow = out + i * ldo;
        for (std::size_t kk = 0; kk < kt; ++kk) {
            const double *az = dp(arow + kk);
            const __m256d are = _mm256_broadcast_sd(az);
            const __m256d aim = _mm256_broadcast_sd(az + 1);
            const Complex *brow = b + kk * ldb;
            std::size_t j = 0;
            for (; j + 2 <= nt; j += 2) {
                const __m256d bv = _mm256_loadu_pd(dp(brow + j));
                const __m256d bswap = _mm256_permute_pd(bv, 0x5);
                const __m256d t = _mm256_mul_pd(aim, bswap);
                const __m256d acc = _mm256_add_pd(
                    _mm256_loadu_pd(dp(orow + j)),
                    _mm256_fmaddsub_pd(are, bv, t));
                _mm256_storeu_pd(dp(orow + j), acc);
            }
            const Complex aik = arow[kk];
            for (; j < nt; ++j)
                orow[j] += aik * brow[j];
        }
    }
}

#undef QPULSE_AVX2

} // namespace kernels
} // namespace qpulse

#endif // x86
