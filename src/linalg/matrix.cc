#include "linalg/matrix.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "linalg/simd.h"
#include "linalg/workspace.h"
#include "telemetry/metrics.h"

namespace qpulse {

namespace {

// Work counters (docs/OBSERVABILITY.md): counts and complex
// multiply-add volume are functions of the work submitted, never of
// scheduling, so they stay bit-identical across QPULSE_THREADS.
void
countGemm(std::size_t m, std::size_t k, std::size_t n)
{
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter("linalg.gemm.calls");
    static telemetry::Counter &c_madds =
        telemetry::MetricsRegistry::global().counter("linalg.gemm.madds");
    c_calls.increment();
    c_madds.add(static_cast<std::uint64_t>(m * k * n));
}

void
countMatvec(std::size_t m, std::size_t n)
{
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter(
            "linalg.gemm.matvec_calls");
    static telemetry::Counter &c_madds =
        telemetry::MetricsRegistry::global().counter(
            "linalg.gemm.matvec_madds");
    c_calls.increment();
    c_madds.add(static_cast<std::uint64_t>(m * n));
}

} // namespace

double
Vector::normSq() const
{
    double total = 0.0;
    for (const auto &amp : data_)
        total += std::norm(amp);
    return total;
}

double
Vector::norm() const
{
    return std::sqrt(normSq());
}

void
Vector::normalize()
{
    const double n = norm();
    qpulseAssert(n > 0.0, "cannot normalize the zero vector");
    for (auto &amp : data_)
        amp /= n;
}

Complex
Vector::dot(const Vector &other) const
{
    qpulseAssert(size() == other.size(), "Vector::dot size mismatch");
    Complex total{0.0, 0.0};
    for (std::size_t i = 0; i < size(); ++i)
        total += std::conj(data_[i]) * other[i];
    return total;
}

Vector
Vector::operator+(const Vector &other) const
{
    qpulseAssert(size() == other.size(), "Vector::+ size mismatch");
    Vector result(size());
    for (std::size_t i = 0; i < size(); ++i)
        result[i] = data_[i] + other[i];
    return result;
}

Vector
Vector::operator-(const Vector &other) const
{
    qpulseAssert(size() == other.size(), "Vector::- size mismatch");
    Vector result(size());
    for (std::size_t i = 0; i < size(); ++i)
        result[i] = data_[i] - other[i];
    return result;
}

Vector
Vector::operator*(Complex scale) const
{
    Vector result(size());
    for (std::size_t i = 0; i < size(); ++i)
        result[i] = data_[i] * scale;
    return result;
}

Vector &
Vector::operator+=(const Vector &other)
{
    qpulseAssert(size() == other.size(), "Vector::+= size mismatch");
    for (std::size_t i = 0; i < size(); ++i)
        data_[i] += other[i];
    return *this;
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0})
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
{
    rows_ = rows.size();
    cols_ = rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto &row : rows) {
        qpulseRequire(row.size() == cols_, "ragged matrix initializer");
        for (const auto &entry : row)
            data_.push_back(entry);
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = Complex{1.0, 0.0};
    return m;
}

void
Matrix::setIdentity()
{
    qpulseAssert(rows_ == cols_, "setIdentity on non-square matrix");
    setZero();
    for (std::size_t i = 0; i < rows_; ++i)
        (*this)(i, i) = Complex{1.0, 0.0};
}

Matrix
Matrix::diagonal(const std::vector<Complex> &entries)
{
    Matrix m(entries.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        m(i, i) = entries[i];
    return m;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    qpulseAssert(rows_ == other.rows_ && cols_ == other.cols_,
                 "Matrix::+ shape mismatch");
    Matrix result(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        result.data_[i] = data_[i] + other.data_[i];
    return result;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    qpulseAssert(rows_ == other.rows_ && cols_ == other.cols_,
                 "Matrix::- shape mismatch");
    Matrix result(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        result.data_[i] = data_[i] - other.data_[i];
    return result;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    qpulseAssert(cols_ == other.rows_, "Matrix::* shape mismatch: ",
                 rows_, "x", cols_, " * ", other.rows_, "x", other.cols_);
    Matrix result(rows_, other.cols_);
    kernels::gemmDispatch(result.data_.data(), data_.data(), other.data_.data(),
                 rows_, cols_, other.cols_);
    countGemm(rows_, cols_, other.cols_);
    return result;
}

Matrix
Matrix::operator*(Complex scale) const
{
    Matrix result(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        result.data_[i] = data_[i] * scale;
    return result;
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    qpulseAssert(rows_ == other.rows_ && cols_ == other.cols_,
                 "Matrix::+= shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    qpulseAssert(rows_ == other.rows_ && cols_ == other.cols_,
                 "Matrix::-= shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(Complex scale)
{
    for (auto &entry : data_)
        entry *= scale;
    return *this;
}

Vector
Matrix::apply(const Vector &v) const
{
    qpulseAssert(cols_ == v.size(), "Matrix::apply shape mismatch");
    Vector result(rows_);
    kernels::matvecDispatch(result.data().data(), data_.data(), v.data().data(),
                   rows_, cols_);
    countMatvec(rows_, cols_);
    return result;
}

Matrix
Matrix::adjoint() const
{
    Matrix result(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            result(j, i) = std::conj((*this)(i, j));
    return result;
}

Matrix
Matrix::transpose() const
{
    Matrix result(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            result(j, i) = (*this)(i, j);
    return result;
}

Matrix
Matrix::conjugate() const
{
    Matrix result(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        result.data_[i] = std::conj(data_[i]);
    return result;
}

Complex
Matrix::trace() const
{
    qpulseAssert(rows_ == cols_, "trace of non-square matrix");
    Complex total{0.0, 0.0};
    for (std::size_t i = 0; i < rows_; ++i)
        total += (*this)(i, i);
    return total;
}

double
Matrix::frobeniusNorm() const
{
    double total = 0.0;
    for (const auto &entry : data_)
        total += std::norm(entry);
    return std::sqrt(total);
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    qpulseAssert(rows_ == other.rows_ && cols_ == other.cols_,
                 "maxAbsDiff shape mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
    return worst;
}

bool
Matrix::isIdentity(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) {
            const Complex expected =
                i == j ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
            if (std::abs((*this)(i, j) - expected) > tol)
                return false;
        }
    }
    return true;
}

bool
Matrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    return ((*this) * adjoint()).isIdentity(tol);
}

bool
Matrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = i; j < cols_; ++j)
            if (std::abs((*this)(i, j) - std::conj((*this)(j, i))) > tol)
                return false;
    return true;
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision);
    for (std::size_t i = 0; i < rows_; ++i) {
        os << "[ ";
        for (std::size_t j = 0; j < cols_; ++j) {
            const Complex &z = (*this)(i, j);
            os << std::setw(precision + 4) << z.real()
               << (z.imag() >= 0 ? "+" : "-")
               << std::abs(z.imag()) << "i ";
        }
        os << "]\n";
    }
    return os.str();
}

void
gemmInto(Matrix &out, const Matrix &a, const Matrix &b)
{
    qpulseAssert(&out != &a && &out != &b, "gemmInto: out aliases input");
    qpulseAssert(a.cols() == b.rows(), "gemmInto shape mismatch: ",
                 a.rows(), "x", a.cols(), " * ", b.rows(), "x", b.cols());
    out.resize(a.rows(), b.cols());
    kernels::gemmDispatch(out.data().data(), a.data().data(), b.data().data(),
                 a.rows(), a.cols(), b.cols());
    countGemm(a.rows(), a.cols(), b.cols());
}

void
gemmAdjBInto(Matrix &out, const Matrix &a, const Matrix &b)
{
    qpulseAssert(&out != &a && &out != &b,
                 "gemmAdjBInto: out aliases input");
    qpulseAssert(a.cols() == b.cols(), "gemmAdjBInto shape mismatch: ",
                 a.rows(), "x", a.cols(), " * (", b.rows(), "x", b.cols(),
                 ")^dagger");
    out.resize(a.rows(), b.rows());
    kernels::gemmAdjBDispatch(out.data().data(), a.data().data(), b.data().data(),
                     a.rows(), a.cols(), b.rows());
    countGemm(a.rows(), a.cols(), b.rows());
}

void
gemmAdjAInto(Matrix &out, const Matrix &a, const Matrix &b)
{
    qpulseAssert(&out != &a && &out != &b,
                 "gemmAdjAInto: out aliases input");
    qpulseAssert(a.rows() == b.rows(), "gemmAdjAInto shape mismatch: (",
                 a.rows(), "x", a.cols(), ")^dagger * ", b.rows(), "x",
                 b.cols());
    out.resize(a.cols(), b.cols());
    kernels::gemmAdjADispatch(out.data().data(), a.data().data(), b.data().data(),
                     a.cols(), a.rows(), b.cols());
    countGemm(a.cols(), a.rows(), b.cols());
}

void
applyInto(Vector &out, const Matrix &a, const Vector &x)
{
    qpulseAssert(&out != &x, "applyInto: out aliases input");
    qpulseAssert(a.cols() == x.size(), "applyInto shape mismatch");
    out.resize(a.rows());
    kernels::matvecDispatch(out.data().data(), a.data().data(), x.data().data(),
                   a.rows(), a.cols());
    countMatvec(a.rows(), a.cols());
}

void
addScaledPlusAdjoint(Matrix &h, const Matrix &op, Complex s)
{
    const std::size_t n = h.rows();
    qpulseAssert(h.cols() == n && op.rows() == n && op.cols() == n,
                 "addScaledPlusAdjoint shape mismatch");
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            h(r, c) += op(r, c) * s + std::conj(op(c, r) * s);
}

void
powmInto(Matrix &out, const Matrix &base, std::uint64_t count,
         Workspace &ws)
{
    qpulseAssert(count >= 1, "powmInto requires count >= 1");
    qpulseAssert(base.rows() == base.cols(),
                 "powmInto requires a square base");
    qpulseAssert(&out != &base, "powmInto: out aliases base");
    const std::size_t n = base.rows();
    if (count == 1) {
        out = base;
        return;
    }
    // Mirrors the multiplication order of the historical binary-power
    // helper (out = sq * out; sq = sq * sq) so scalar-mode results are
    // bit-identical to the pre-overhaul implementation.
    Matrix &sq = ws.matrix(0, n, n);
    Matrix &tmp = ws.matrix(1, n, n);
    sq = base;
    out.resize(n, n);
    out.setIdentity();
    while (count > 0) {
        if (count & 1u) {
            gemmInto(tmp, sq, out);
            std::swap(out, tmp);
        }
        count >>= 1;
        if (count > 0) {
            gemmInto(tmp, sq, sq);
            std::swap(sq, tmp);
        }
    }
}

Matrix
powm(const Matrix &base, std::uint64_t count)
{
    Matrix out;
    powmInto(out, base, count, tlsWorkspace());
    return out;
}

Matrix
kron(const Matrix &a, const Matrix &b)
{
    Matrix result(a.rows() * b.rows(), a.cols() * b.cols());
    for (std::size_t ia = 0; ia < a.rows(); ++ia)
        for (std::size_t ja = 0; ja < a.cols(); ++ja) {
            const Complex scale = a(ia, ja);
            if (scale == Complex{0.0, 0.0})
                continue;
            for (std::size_t ib = 0; ib < b.rows(); ++ib)
                for (std::size_t jb = 0; jb < b.cols(); ++jb)
                    result(ia * b.rows() + ib, ja * b.cols() + jb) =
                        scale * b(ib, jb);
        }
    return result;
}

Matrix
kronAll(const std::vector<Matrix> &factors)
{
    qpulseRequire(!factors.empty(), "kronAll requires at least one factor");
    Matrix result = factors.front();
    for (std::size_t i = 1; i < factors.size(); ++i)
        result = kron(result, factors[i]);
    return result;
}

Vector
kron(const Vector &a, const Vector &b)
{
    Vector result(a.size() * b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < b.size(); ++j)
            result[i * b.size() + j] = a[i] * b[j];
    return result;
}

} // namespace qpulse
