#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/simd.h"
#include "telemetry/metrics.h"

namespace qpulse {

namespace {

/**
 * One complex Jacobi rotation zeroing the (p, q) off-diagonal entry of
 * the Hermitian matrix a, accumulating the rotation into v. Entries
 * with |a(p,q)|^2 <= thr2 are skipped (threshold Jacobi): rotating a
 * pivot already inside the convergence budget costs three O(n) update
 * loops and buys nothing. Warm-started solves are near-diagonal, so
 * the threshold prunes most of the sweep; thr2 = 0 degenerates to the
 * classical skip-exact-zeros behaviour.
 */
void
jacobiRotate(Matrix &a, Matrix &v, std::size_t p, std::size_t q,
             double thr2)
{
    const Complex apq = a(p, q);
    if (std::norm(apq) <= thr2)
        return;
    const double abs_apq = std::abs(apq);

    const double app = a(p, p).real();
    const double aqq = a(q, q).real();

    // Hermitian 2x2 block [[app, apq], [conj(apq), aqq]] diagonalized by
    // a rotation with complex phase.
    const double tau = (aqq - app) / (2.0 * abs_apq);
    const double t = (tau >= 0.0)
        ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
        : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
    const double c = 1.0 / std::sqrt(1.0 + t * t);
    const double s = t * c;
    const Complex phase = apq / abs_apq;
    const double pr = phase.real();
    const double pi = phase.imag();
    const double spr = s * pr;
    const double spi = s * pi;

    const std::size_t n = a.rows();
    Complex *A = a.data().data();
    Complex *V = v.data().data();

    // Update rows/cols p and q of a: a <- J^dag a J with
    // J(p,p)=c, J(q,q)=c, J(p,q)=s*phase, J(q,p)=-s*conj(phase).
    // Spelled out in real arithmetic on raw pointers: this loop runs
    // tens of thousands of times per evolve call, and the expanded
    // form dodges the complex-multiply library fallback and index
    // re-computation the compiler cannot hoist on its own.
    Complex *cp = A + p;
    Complex *cq = A + q;
    for (std::size_t k = 0; k < n; ++k, cp += n, cq += n) {
        const double xr = cp->real(), xi = cp->imag();
        const double yr = cq->real(), yi = cq->imag();
        // a(k,p) = c * akp - s * conj(phase) * akq
        *cp = Complex{c * xr - (spr * yr + spi * yi),
                      c * xi - (spr * yi - spi * yr)};
        // a(k,q) = s * phase * akp + c * akq
        *cq = Complex{(spr * xr - spi * xi) + c * yr,
                      (spr * xi + spi * xr) + c * yi};
    }
    Complex *rp = A + p * n;
    Complex *rq = A + q * n;
    for (std::size_t k = 0; k < n; ++k) {
        const double xr = rp[k].real(), xi = rp[k].imag();
        const double yr = rq[k].real(), yi = rq[k].imag();
        // a(p,k) = c * apk - s * phase * aqk
        rp[k] = Complex{c * xr - (spr * yr - spi * yi),
                        c * xi - (spr * yi + spi * yr)};
        // a(q,k) = s * conj(phase) * apk + c * aqk
        rq[k] = Complex{(spr * xr + spi * xi) + c * yr,
                        (spr * xi - spi * xr) + c * yi};
    }
    Complex *vp = V + p;
    Complex *vq = V + q;
    for (std::size_t k = 0; k < n; ++k, vp += n, vq += n) {
        const double xr = vp->real(), xi = vp->imag();
        const double yr = vq->real(), yi = vq->imag();
        // v(k,p) = c * vkp - s * conj(phase) * vkq
        *vp = Complex{c * xr - (spr * yr + spi * yi),
                      c * xi - (spr * yi - spi * yr)};
        // v(k,q) = s * phase * vkp + c * vkq
        *vq = Complex{(spr * xr - spi * xi) + c * yr,
                      (spr * xi + spi * xr) + c * yi};
    }
}

#if defined(__x86_64__) || defined(__i386__)
/**
 * AVX2-mode variant of jacobiRotate operating entirely on contiguous
 * memory: the rotation touches only rows p and q of `a` (one fused
 * row-pair kernel), the 2x2 pivot block is set from the closed-form
 * Jacobi update (app -+ t|apq|, zero off-diagonal), and columns p and q
 * are restored by Hermitian mirroring — conjugate copies, no flops.
 * The eigenvector accumulator is kept TRANSPOSED (rows = eigenvectors)
 * so its update is the same contiguous kernel with spi negated.
 * Compared to the scalar path this does two O(n) arithmetic loops
 * instead of three, all unit-stride, and the mirror enforces exact
 * Hermitian symmetry every rotation.
 */
void
jacobiRotateRows(Matrix &a, Matrix &vt, std::size_t p, std::size_t q,
                 double thr2)
{
    const Complex apq = a(p, q);
    if (std::norm(apq) <= thr2)
        return;
    const double abs_apq = std::abs(apq);

    const double app = a(p, p).real();
    const double aqq = a(q, q).real();
    const double tau = (aqq - app) / (2.0 * abs_apq);
    const double t = (tau >= 0.0)
        ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
        : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
    const double c = 1.0 / std::sqrt(1.0 + t * t);
    const double s = t * c;
    const Complex phase = apq / abs_apq;
    const double spr = s * phase.real();
    const double spi = s * phase.imag();

    const std::size_t n = a.rows();
    Complex *A = a.data().data();
    kernels::rotateRowPairAvx2(A + p * n, A + q * n, n, c, spr, spi);
    // Closed-form pivot block: the rotation zeroes (p, q) exactly and
    // moves t|apq| between the diagonal entries.
    const double shift = t * abs_apq;
    A[p * n + p] = Complex{app - shift, 0.0};
    A[q * n + q] = Complex{aqq + shift, 0.0};
    A[p * n + q] = Complex{0.0, 0.0};
    A[q * n + p] = Complex{0.0, 0.0};
    const Complex *prow = A + p * n;
    const Complex *qrow = A + q * n;
    for (std::size_t k = 0; k < n; ++k) {
        A[k * n + p] = std::conj(prow[k]);
        A[k * n + q] = std::conj(qrow[k]);
    }
    Complex *V = vt.data().data();
    kernels::rotateRowPairAvx2(V + p * n, V + q * n, n, c, spr, -spi);
}
#endif

double
offDiagonalNorm(const Matrix &a)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (i != j)
                total += std::norm(a(i, j));
    return std::sqrt(total);
}

/**
 * Restore exact Hermitian symmetry after a similarity transform whose
 * factors are unitary only up to roundoff (the warm-start rotation
 * seed^dagger a seed). Averages mirrored entries and drops the
 * O(1e-16) imaginary part the diagonal may have picked up.
 */
void
hermitize(Matrix &a)
{
    const std::size_t n = a.rows();
    for (std::size_t r = 0; r < n; ++r) {
        a(r, r) = Complex{a(r, r).real(), 0.0};
        for (std::size_t c = r + 1; c < n; ++c) {
            const Complex avg =
                (a(r, c) + std::conj(a(c, r))) * 0.5;
            a(r, c) = avg;
            a(c, r) = std::conj(avg);
        }
    }
}

/** Work counters for one Jacobi solve (thread-count invariant). */
void
countEig(bool warm, int sweeps)
{
    static telemetry::Counter &c_calls =
        telemetry::MetricsRegistry::global().counter("sim.eig.calls");
    static telemetry::Counter &c_sweeps =
        telemetry::MetricsRegistry::global().counter("sim.eig.sweeps");
    static telemetry::Counter &c_warm_calls =
        telemetry::MetricsRegistry::global().counter(
            "sim.eig.warm.calls");
    static telemetry::Counter &c_warm_sweeps =
        telemetry::MetricsRegistry::global().counter(
            "sim.eig.warm.sweeps");
    c_calls.increment();
    c_sweeps.add(static_cast<std::uint64_t>(sweeps));
    if (warm) {
        c_warm_calls.increment();
        c_warm_sweeps.add(static_cast<std::uint64_t>(sweeps));
    }
}

} // namespace

int
eigHermitianInPlace(const Matrix &input, const Matrix *seed,
                    std::vector<double> &values, Matrix &vectors,
                    Workspace &ws, bool sortAscending, double tol)
{
    qpulseRequire(input.rows() == input.cols(),
                  "eigHermitianInPlace requires a square matrix");
    const std::size_t n = input.rows();

    // In AVX2 dispatch mode the sweeps run the contiguous row kernel
    // (jacobiRotateRows), which keeps the eigenvector accumulator
    // transposed; scalar mode keeps the original column-update loops
    // bit-for-bit. The mode is process-wide, so results stay
    // deterministic for a given dispatch configuration.
#if defined(__x86_64__) || defined(__i386__)
    // The fused row kernel is an AVX2 binary; it is also the right
    // choice under AVX-512 dispatch (the rotation is bandwidth-bound
    // and the 256-bit kernel runs on every AVX-512 part), so gate on
    // tier >= Avx2 rather than equality.
    const bool row_mode =
        kernels::activeSimd() >= kernels::SimdMode::Avx2;
#else
    const bool row_mode = false;
#endif
    Matrix &vt = ws.matrix(3, n, n);

    Matrix &a = ws.matrix(0, n, n);
    if (seed) {
        qpulseAssert(seed->rows() == n && seed->cols() == n,
                     "eig warm-start seed shape mismatch");
        // Self-seeded chains (each step seeding the next) compound the
        // seed's departure from unitarity: left alone it grows ~N*eps
        // after N steps and the similarity transform below then
        // misrepresents the input by that factor. One Newton polar
        // iteration, q = seed*(3I - seed^dag seed)/2, squares the
        // defect back to the round-off floor each call, so the chain
        // never drifts.
        Matrix &tmp = ws.matrix(1, n, n);
        Matrix &q = ws.matrix(2, n, n);
        gemmAdjAInto(tmp, *seed, *seed); // tmp = seed^dag seed
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c) {
                const Complex g = tmp(r, c) * Complex{-0.5, 0.0};
                tmp(r, c) = (r == c) ? g + Complex{1.5, 0.0} : g;
            }
        gemmInto(q, *seed, tmp);
        // Rotate into the seed's eigenbasis: a = q^dag input q is
        // nearly diagonal when the seed is close, so the cyclic sweeps
        // only mop up the O(dt) drive delta.
        gemmAdjAInto(tmp, q, input);
        gemmInto(a, tmp, q);
        hermitize(a);
        if (row_mode) {
            vt.resize(n, n);
            for (std::size_t r = 0; r < n; ++r)
                for (std::size_t c = 0; c < n; ++c)
                    vt(r, c) = q(c, r);
        } else {
            vectors = q; // Safe for self-seeding: q is a private copy.
        }
    } else {
        a = input;
        if (row_mode) {
            vt.resize(n, n);
            vt.setIdentity();
        } else {
            vectors.resize(n, n);
            vectors.setIdentity();
        }
    }

    // Warm-started solves converge to the round-off floor, not the
    // caller's tolerance: the pulse kernel composes hundreds of
    // per-step propagators, so convergence slack accumulates linearly
    // across a schedule. With the cold tolerance a good seed could be
    // accepted with ~tol*scale residual and zero sweeps, drifting the
    // composed unitary by steps*tol. A few eps is above the Jacobi
    // floor, so the loop still terminates in one or two sweeps.
    const double eff_tol = seed ? std::min(tol, kEigFloorTol) : tol;
    const double scale = std::max(a.frobeniusNorm(), 1e-300);
    // Rotation threshold, pinned at the round-off floor (not the
    // caller tolerance): a looser threshold would leave O(tol)
    // pivot residuals in every propagator, which the cached path's
    // run collapse then amplifies by the run length. At the floor the
    // skip is harmless — pivots below 8 eps scale / n keep the
    // off-diagonal norm under sqrt(n(n-1)) / n < 1 of the floor
    // target, so the norm check above each sweep stays the sole
    // authority — and it still prunes most of a warm sweep, whose
    // matrix is near-diagonal with only the drive-delta entries above
    // the floor.
    const double thr = 8.0 * std::numeric_limits<double>::epsilon() *
                       scale / static_cast<double>(n);
    const double thr2 = thr * thr;
    const int max_sweeps = 100;
    int sweeps = 0;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (offDiagonalNorm(a) <= eff_tol * scale)
            break;
        ++sweeps;
#if defined(__x86_64__) || defined(__i386__)
        if (row_mode) {
            for (std::size_t p = 0; p + 1 < n; ++p)
                for (std::size_t q = p + 1; q < n; ++q)
                    jacobiRotateRows(a, vt, p, q, thr2);
            continue;
        }
#endif
        for (std::size_t p = 0; p + 1 < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q)
                jacobiRotate(a, vectors, p, q, thr2);
    }
    countEig(seed != nullptr, sweeps);
    if (row_mode) {
        vectors.resize(n, n);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                vectors(r, c) = vt(c, r);
    }

    // Post-iteration refinement against the PRISTINE input. The
    // iterated matrix (and the accumulated eigenvectors) drift from
    // the true similarity transform by the rotation round-off
    // (~rotations * eps * ||a||), and that drift depends on the
    // iteration history: a warm solve (few rotations) and a cold solve
    // (many) of the same matrix disagree by ~1e-14, which composes
    // coherently when a caller multiplies propagators of a repeated
    // Hamiltonian — the pulse simulator's flat-tops do exactly that,
    // hundreds of times in a row. Both drifts are removed with one
    // residual computation E = V^dag A V from the original input:
    //  - eigenvalues re-read as E's diagonal (Rayleigh quotients,
    //    stationary: insensitive to eigenvector error to 2nd order);
    //  - eigenvectors corrected to first order, V <- V (I + S) with
    //    S_pq = E_pq gap / (gap^2 + mu^2), gap = lambda_q - lambda_p,
    //    which cancels the history-dependent part of the basis error.
    //    The Tikhonov floor mu regularizes near-degenerate pairs,
    //    where the bare 1/gap would amplify the E_pq noise into a
    //    non-unitary S; the damping is harmless there because for any
    //    function f(A) = V f(diag) V^dag the uncorrected error between
    //    levels p, q is suppressed by f(lambda_p) - f(lambda_q) -> 0.
    //    Smooth damping (rather than a cutoff) keeps the correction a
    //    continuous function of the input, so scalar and SIMD solves
    //    of the same matrix cannot land on opposite sides of a branch.
    // Cost: three gemms and an n^2 pass per solve.
    Matrix &av = ws.matrix(1, n, n);
    Matrix &e = ws.matrix(0, n, n); // Reuses the iteration slot.
    gemmInto(av, input, vectors);
    gemmAdjAInto(e, vectors, av);
    // The gemm rounding asymmetry in E (~n eps ||A||) would otherwise
    // leak a Hermitian component into S — a non-unitary stretch of V
    // that compounds multiplicatively when propagators are composed.
    // Hermitizing E keeps S exactly anti-Hermitian.
    hermitize(e);
    values.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        values[i] = e(i, i).real();
    const double mu = 1e-5 * scale;
    const double mu2 = mu * mu;
    for (std::size_t p = 0; p < n; ++p) {
        e(p, p) = Complex{1.0, 0.0};
        for (std::size_t q = 0; q < n; ++q) {
            if (p == q)
                continue;
            const double gap = values[q] - values[p];
            e(p, q) *= gap / (gap * gap + mu2);
        }
    }
    Matrix &vref = ws.matrix(2, n, n); // Reuses the polish slot.
    gemmInto(vref, vectors, e);
    // One Newton polar step re-unitarizes the corrected basis,
    // vectors = vref (3I - vref^dag vref) / 2: the correction and its
    // own product rounding leave ~n eps of non-unitarity, which the
    // composition argument above cannot tolerate either.
    gemmAdjAInto(av, vref, vref);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            const Complex g = av(r, c) * Complex{-0.5, 0.0};
            av(r, c) = (r == c) ? g + Complex{1.5, 0.0} : g;
        }
    vectors.resize(n, n);
    gemmInto(vectors, vref, av);

    if (sortAscending) {
        // Sort eigenvalues (and matching eigenvector columns)
        // ascending. Allocates; warm-start callers pass false.
        std::vector<std::size_t> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t x, std::size_t y) {
                      return values[x] < values[y];
                  });
        std::vector<double> sorted_values(n);
        Matrix sorted_vectors(n, n);
        for (std::size_t c = 0; c < n; ++c) {
            sorted_values[c] = values[order[c]];
            for (std::size_t r = 0; r < n; ++r)
                sorted_vectors(r, c) = vectors(r, order[c]);
        }
        values = std::move(sorted_values);
        vectors = std::move(sorted_vectors);
    }
    return sweeps;
}

EigenSystem
eigHermitian(const Matrix &input, double tol)
{
    qpulseRequire(input.rows() == input.cols(),
                  "eigHermitian requires a square matrix");
    qpulseRequire(input.isHermitian(1e-8),
                  "eigHermitian requires a Hermitian matrix");
    EigenSystem result;
    eigHermitianInPlace(input, nullptr, result.values, result.vectors,
                        tlsWorkspace(), /*sortAscending=*/true, tol);
    return result;
}

Matrix
expMinusIHt(const Matrix &h, double t, double tol)
{
    const EigenSystem es = eigHermitian(h, tol);
    const std::size_t n = h.rows();
    std::vector<Complex> phases(n);
    for (std::size_t i = 0; i < n; ++i)
        phases[i] = std::exp(Complex{0.0, -es.values[i] * t});
    return es.vectors * Matrix::diagonal(phases) * es.vectors.adjoint();
}

Matrix
expIH(const Matrix &h, double scale)
{
    return expMinusIHt(h, -scale);
}

Matrix
expm(const Matrix &a)
{
    qpulseRequire(a.rows() == a.cols(), "expm requires a square matrix");

    // Scale the matrix down until its norm is small, exponentiate with a
    // Taylor series, then square back up.
    double norm = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j)
            row_sum += std::abs(a(i, j));
        norm = std::max(norm, row_sum);
    }

    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }

    const Matrix scaled = a * Complex{scale, 0.0};
    Matrix result = Matrix::identity(a.rows());
    Matrix term = Matrix::identity(a.rows());
    for (int k = 1; k <= 20; ++k) {
        term = term * scaled * Complex{1.0 / k, 0.0};
        result += term;
        // Relative early exit. ||scaled||_1 <= 1/2, so the neglected
        // tail after this term is bounded by
        //   sum_{j>=1} ||term|| * (1/2)^j = ||term||,
        // giving a relative truncation error of ~1e-16 on the scaled
        // exponential (see eigen.h for the documented bound).
        if (term.frobeniusNorm() <= 1e-16 * result.frobeniusNorm())
            break;
    }
    for (int s = 0; s < squarings; ++s)
        result = result * result;
    return result;
}

std::vector<double>
solveLinearReal(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    qpulseRequire(a.size() == n, "solveLinearReal shape mismatch");
    for (const auto &row : a)
        qpulseRequire(row.size() == n, "solveLinearReal ragged matrix");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        qpulseRequire(std::abs(a[pivot][col]) > 1e-300,
                      "solveLinearReal: singular matrix");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        const double inv = 1.0 / a[col][col];
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a[r][col] * inv;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double total = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            total -= a[ri][c] * x[c];
        x[ri] = total / a[ri][ri];
    }
    return x;
}

} // namespace qpulse
