#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qpulse {

namespace {

/**
 * One complex Jacobi rotation zeroing the (p, q) off-diagonal entry of
 * the Hermitian matrix a, accumulating the rotation into v.
 */
void
jacobiRotate(Matrix &a, Matrix &v, std::size_t p, std::size_t q)
{
    const Complex apq = a(p, q);
    const double abs_apq = std::abs(apq);
    if (abs_apq == 0.0)
        return;

    const double app = a(p, p).real();
    const double aqq = a(q, q).real();

    // Hermitian 2x2 block [[app, apq], [conj(apq), aqq]] diagonalized by
    // a rotation with complex phase.
    const double tau = (aqq - app) / (2.0 * abs_apq);
    const double t = (tau >= 0.0)
        ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
        : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
    const double c = 1.0 / std::sqrt(1.0 + t * t);
    const double s = t * c;
    const Complex phase = apq / abs_apq;

    const std::size_t n = a.rows();
    // Update rows/cols p and q of a: a <- J^dag a J with
    // J(p,p)=c, J(q,q)=c, J(p,q)=s*phase, J(q,p)=-s*conj(phase).
    for (std::size_t k = 0; k < n; ++k) {
        const Complex akp = a(k, p);
        const Complex akq = a(k, q);
        a(k, p) = c * akp - s * std::conj(phase) * akq;
        a(k, q) = s * phase * akp + c * akq;
    }
    for (std::size_t k = 0; k < n; ++k) {
        const Complex apk = a(p, k);
        const Complex aqk = a(q, k);
        a(p, k) = c * apk - s * phase * aqk;
        a(q, k) = s * std::conj(phase) * apk + c * aqk;
    }
    for (std::size_t k = 0; k < n; ++k) {
        const Complex vkp = v(k, p);
        const Complex vkq = v(k, q);
        v(k, p) = c * vkp - s * std::conj(phase) * vkq;
        v(k, q) = s * phase * vkp + c * vkq;
    }
}

double
offDiagonalNorm(const Matrix &a)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (i != j)
                total += std::norm(a(i, j));
    return std::sqrt(total);
}

} // namespace

EigenSystem
eigHermitian(const Matrix &input, double tol)
{
    qpulseRequire(input.rows() == input.cols(),
                  "eigHermitian requires a square matrix");
    qpulseRequire(input.isHermitian(1e-8),
                  "eigHermitian requires a Hermitian matrix");

    const std::size_t n = input.rows();
    Matrix a = input;
    Matrix v = Matrix::identity(n);

    const double scale = std::max(a.frobeniusNorm(), 1e-300);
    const int max_sweeps = 100;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (offDiagonalNorm(a) <= tol * scale)
            break;
        for (std::size_t p = 0; p + 1 < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q)
                jacobiRotate(a, v, p, q);
    }

    EigenSystem result;
    result.values.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        result.values[i] = a(i, i).real();

    // Sort eigenvalues (and matching eigenvector columns) ascending.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return result.values[x] < result.values[y];
    });

    EigenSystem sorted;
    sorted.values.resize(n);
    sorted.vectors = Matrix(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        sorted.values[c] = result.values[order[c]];
        for (std::size_t r = 0; r < n; ++r)
            sorted.vectors(r, c) = v(r, order[c]);
    }
    return sorted;
}

Matrix
expMinusIHt(const Matrix &h, double t)
{
    const EigenSystem es = eigHermitian(h);
    const std::size_t n = h.rows();
    std::vector<Complex> phases(n);
    for (std::size_t i = 0; i < n; ++i)
        phases[i] = std::exp(Complex{0.0, -es.values[i] * t});
    return es.vectors * Matrix::diagonal(phases) * es.vectors.adjoint();
}

Matrix
expIH(const Matrix &h, double scale)
{
    return expMinusIHt(h, -scale);
}

Matrix
expm(const Matrix &a)
{
    qpulseRequire(a.rows() == a.cols(), "expm requires a square matrix");

    // Scale the matrix down until its norm is small, exponentiate with a
    // Taylor series, then square back up.
    double norm = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < a.cols(); ++j)
            row_sum += std::abs(a(i, j));
        norm = std::max(norm, row_sum);
    }

    int squarings = 0;
    double scale = 1.0;
    while (norm * scale > 0.5) {
        scale *= 0.5;
        ++squarings;
    }

    const Matrix scaled = a * Complex{scale, 0.0};
    Matrix result = Matrix::identity(a.rows());
    Matrix term = Matrix::identity(a.rows());
    for (int k = 1; k <= 20; ++k) {
        term = term * scaled * Complex{1.0 / k, 0.0};
        result += term;
        if (term.frobeniusNorm() < 1e-17)
            break;
    }
    for (int s = 0; s < squarings; ++s)
        result = result * result;
    return result;
}

std::vector<double>
solveLinearReal(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    qpulseRequire(a.size() == n, "solveLinearReal shape mismatch");
    for (const auto &row : a)
        qpulseRequire(row.size() == n, "solveLinearReal ragged matrix");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        qpulseRequire(std::abs(a[pivot][col]) > 1e-300,
                      "solveLinearReal: singular matrix");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        const double inv = 1.0 / a[col][col];
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a[r][col] * inv;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= factor * a[col][c];
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double total = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            total -= a[ri][c] * x[c];
        x[ri] = total / a[ri][ri];
    }
    return x;
}

} // namespace qpulse
