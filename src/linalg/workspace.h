/**
 * @file
 * Reusable scratch buffers for the allocation-free kernel API.
 *
 * A Workspace owns a set of numbered Matrix/Vector slots whose backing
 * stores persist across calls: the first request for a slot allocates,
 * every later request at the same or smaller shape reuses the existing
 * capacity. Hot loops (the evolve inner loop, powmInto, the seeded
 * Jacobi solver) thread a Workspace through and become heap-silent
 * after one warm-up iteration — asserted with a counting allocator in
 * tests/test_kernels.cc.
 *
 * Lifetime rules (docs/PERFORMANCE.md, "Kernel architecture"):
 *  - a slot reference is valid until the next request for the SAME
 *    slot; distinct slots never alias;
 *  - callees that receive a Workspace document which slot range they
 *    consume, or take a dedicated Workspace (PulseSimulator's
 *    StepKernel carries one for the eigensolver and one for itself);
 *  - Workspace is not thread-safe; use tlsWorkspace() or one instance
 *    per thread.
 */
#ifndef QPULSE_LINALG_WORKSPACE_H
#define QPULSE_LINALG_WORKSPACE_H

#include <cstddef>
#include <deque>

#include "linalg/matrix.h"
#include "linalg/state_panel.h"

namespace qpulse {

/** Slot-indexed pool of reusable Matrix/Vector scratch buffers. */
class Workspace
{
  public:
    /**
     * Scratch matrix for `slot`, resized to rows x cols. Contents are
     * unspecified (callers fully overwrite or call setZero). Reuses
     * the slot's backing store whenever capacity allows.
     */
    Matrix &matrix(std::size_t slot, std::size_t rows, std::size_t cols);

    /** Scratch vector for `slot`, resized to n; contents unspecified. */
    Vector &vector(std::size_t slot, std::size_t n);

    /**
     * Scratch state panel for `slot`, resized to dim x width. Panel
     * slots are sized by dim * width, so the batched evolve loops are
     * heap-silent after one warm-up at the widest batch they see
     * (asserted in tests/test_batch.cc).
     */
    StatePanel &statePanel(std::size_t slot, std::size_t dim,
                           std::size_t width);

    /** Scratch density panel for `slot` ((width * dim) x dim). */
    DensityPanel &densityPanel(std::size_t slot, std::size_t dim,
                               std::size_t width);

    /** Drop all slots and their backing stores. */
    void clear();

  private:
    // Deques, not vectors: requesting a NEW slot must never move the
    // buffers behind references handed out for existing slots (a
    // kernel typically holds several slot references at once).
    std::deque<Matrix> matrices_;
    std::deque<Vector> vectors_;
    std::deque<StatePanel> state_panels_;
    std::deque<DensityPanel> density_panels_;
};

/**
 * Per-thread workspace for call sites without a caller-provided one
 * (e.g. the out-of-place powm convenience wrapper).
 */
Workspace &tlsWorkspace();

} // namespace qpulse

#endif // QPULSE_LINALG_WORKSPACE_H
