/**
 * @file
 * Runtime-dispatched dense complex kernels (the "dense-kernel layer").
 *
 * Every dense product in qpulse funnels through these raw row-major
 * kernels: the scalar variants reproduce the original triple-loop
 * implementations bit-for-bit (they ARE those loops, hoisted), and the
 * AVX2/FMA variants vectorize two complex doubles per 256-bit lane.
 * Dispatch is resolved once per process from a cpuid probe and the
 * QPULSE_SIMD environment knob (0 forces scalar, the escape hatch for
 * bit-exact reproduction of historical results); tests can override it
 * with setActiveSimd().
 *
 * Numerics contract (docs/PERFORMANCE.md, "Kernel architecture"):
 *  - within one dispatch mode results are deterministic — the mode is
 *    process-wide, so thread count never changes output bits;
 *  - scalar mode is bit-identical to the pre-overhaul implementation;
 *  - AVX2 mode agrees with scalar to <= 1e-12 max-abs on every
 *    matrix this project produces (pinned by tests/test_kernels.cc).
 */
#ifndef QPULSE_LINALG_SIMD_H
#define QPULSE_LINALG_SIMD_H

#include <cstddef>

#include "common/constants.h"

namespace qpulse {
namespace kernels {

/** Which GEMM/matvec implementation the dispatcher selects. */
enum class SimdMode
{
    Scalar, ///< Portable triple loops (bit-identical to the seed code).
    Avx2,   ///< AVX2+FMA, two complex doubles per 256-bit lane.
};

/** True when the CPU supports AVX2 and FMA (false on non-x86). */
bool avx2Supported();

/**
 * The active dispatch mode, resolved once on first use: QPULSE_SIMD=0
 * forces Scalar; otherwise Avx2 when the CPU supports it.
 */
SimdMode activeSimd();

/**
 * Override the dispatch mode (test seam). Requesting Avx2 on a CPU
 * without support falls back to Scalar with a warning.
 */
void setActiveSimd(SimdMode mode);

/** "scalar" / "avx2" (for reports and bench JSON). */
const char *simdModeName(SimdMode mode);

// ---------------------------------------------------------------------
// Raw kernels on row-major Complex buffers. `out` must not alias `a`
// or `b`; every kernel fully (re)defines `out`.
// ---------------------------------------------------------------------

/** out[m x n] = a[m x k] * b[k x n]. */
void gemmScalar(Complex *out, const Complex *a, const Complex *b,
                std::size_t m, std::size_t k, std::size_t n);

/** out[m x n] = a[m x k] * b[n x k]^dagger (B conjugate-transposed). */
void gemmAdjBScalar(Complex *out, const Complex *a, const Complex *b,
                    std::size_t m, std::size_t k, std::size_t n);

/** out[m x n] = a[k x m]^dagger * b[k x n] (A conjugate-transposed). */
void gemmAdjAScalar(Complex *out, const Complex *a, const Complex *b,
                    std::size_t m, std::size_t k, std::size_t n);

/** out[m] = a[m x n] * x[n]. */
void matvecScalar(Complex *out, const Complex *a, const Complex *x,
                  std::size_t m, std::size_t n);

#if defined(__x86_64__) || defined(__i386__)
/** AVX2/FMA counterparts (defined only on x86; gate on avx2Supported). */
void gemmAvx2(Complex *out, const Complex *a, const Complex *b,
              std::size_t m, std::size_t k, std::size_t n);

/**
 * Fused in-place complex Givens update of two contiguous rows (the
 * Jacobi eigensolver's inner kernel). With r90(z) = i z elementwise:
 *
 *   xp' = c xp - spr xq - spi r90(xq)
 *   xq' = c xq + spr xp - spi r90(xp)
 *
 * which for (spr, spi) = s (Re phase, Im phase) is the row half of the
 * Hermitian Jacobi rotation a <- J^dag a J; the accumulator update
 * v <- v J on a row-major transposed accumulator is the same kernel
 * with spi negated. Rows must not overlap.
 */
void rotateRowPairAvx2(Complex *xp, Complex *xq, std::size_t n,
                       double c, double spr, double spi);
void gemmAdjBAvx2(Complex *out, const Complex *a, const Complex *b,
                  std::size_t m, std::size_t k, std::size_t n);
void gemmAdjAAvx2(Complex *out, const Complex *a, const Complex *b,
                  std::size_t m, std::size_t k, std::size_t n);
void matvecAvx2(Complex *out, const Complex *a, const Complex *x,
                std::size_t m, std::size_t n);
#endif

} // namespace kernels
} // namespace qpulse

#endif // QPULSE_LINALG_SIMD_H
