/**
 * @file
 * Runtime-dispatched dense complex kernels (the "dense-kernel layer").
 *
 * Every dense product in qpulse funnels through these raw row-major
 * kernels. Four dispatch tiers:
 *  - Scalar reproduces the original triple-loop implementations
 *    bit-for-bit (they ARE those loops, hoisted);
 *  - Sse2 is the FMA-free 128-bit tier (one complex double per lane,
 *    mul/add only — every x86-64 CPU qualifies);
 *  - Avx2 vectorizes two complex doubles per 256-bit lane with FMA;
 *  - Avx512 vectorizes four complex doubles per 512-bit lane.
 * Dispatch is resolved once per process from cpuid probes and the
 * QPULSE_SIMD environment knob (0 forces scalar, the escape hatch for
 * bit-exact reproduction of historical results; "sse2"/"avx2"/"avx512"
 * pin a tier; 1/"auto" picks the highest supported). Tests override it
 * with setActiveSimd().
 *
 * Numerics contract (docs/PERFORMANCE.md, "Kernel architecture"):
 *  - within one dispatch mode results are deterministic — the mode is
 *    process-wide, so thread count never changes output bits;
 *  - scalar mode is bit-identical to the pre-overhaul implementation;
 *  - every SIMD mode agrees with scalar to <= 1e-12 max-abs on every
 *    matrix this project produces (pinned by tests/test_kernels.cc).
 */
#ifndef QPULSE_LINALG_SIMD_H
#define QPULSE_LINALG_SIMD_H

#include <cstddef>

#include "common/constants.h"

namespace qpulse {
namespace kernels {

/**
 * Which GEMM/matvec implementation the dispatcher selects. Ordered by
 * width so call sites can gate features with comparisons
 * (e.g. `activeSimd() >= SimdMode::Avx2` for the fused Jacobi
 * row-rotation, which exists from the AVX2 tier up).
 */
enum class SimdMode
{
    Scalar, ///< Portable triple loops (bit-identical to the seed code).
    Sse2,   ///< SSE2, one complex double per 128-bit lane, no FMA.
    Avx2,   ///< AVX2+FMA, two complex doubles per 256-bit lane.
    Avx512, ///< AVX-512F+FMA, four complex doubles per 512-bit lane.
};

/** True when the CPU supports SSE2 (every x86-64; false elsewhere). */
bool sse2Supported();

/** True when the CPU supports AVX2 and FMA (false on non-x86). */
bool avx2Supported();

/** True when the CPU supports AVX-512F and FMA (false on non-x86). */
bool avx512Supported();

/**
 * True when the CPU supports carry-less multiply (PCLMULQDQ; false on
 * non-x86). Gate for the folding CRC-64 fast path in store/serde.cc.
 * Honours the QPULSE_SIMD escape hatch: forcing scalar disables this
 * probe too, so the table CRC stays reachable for differential tests.
 */
bool pclmulSupported();

/**
 * The active dispatch mode, resolved once on first use from
 * QPULSE_SIMD: 0/"scalar" forces Scalar; "sse2"/"avx2"/"avx512" pin a
 * tier (falling back to the highest supported one, with a warning,
 * when the CPU lacks it); 1/"auto"/unset picks the widest tier the CPU
 * supports.
 */
SimdMode activeSimd();

/**
 * Override the dispatch mode (test seam). Requesting a tier the CPU
 * lacks falls back to the widest supported tier below it, with a
 * warning.
 */
void setActiveSimd(SimdMode mode);

/** "scalar" / "sse2" / "avx2" / "avx512" (reports and bench JSON). */
const char *simdModeName(SimdMode mode);

// ---------------------------------------------------------------------
// Raw kernels on row-major Complex buffers. `out` must not alias `a`
// or `b`; every kernel fully (re)defines `out`.
// ---------------------------------------------------------------------

/** out[m x n] = a[m x k] * b[k x n]. */
void gemmScalar(Complex *out, const Complex *a, const Complex *b,
                std::size_t m, std::size_t k, std::size_t n);

/** out[m x n] = a[m x k] * b[n x k]^dagger (B conjugate-transposed). */
void gemmAdjBScalar(Complex *out, const Complex *a, const Complex *b,
                    std::size_t m, std::size_t k, std::size_t n);

/** out[m x n] = a[k x m]^dagger * b[k x n] (A conjugate-transposed). */
void gemmAdjAScalar(Complex *out, const Complex *a, const Complex *b,
                    std::size_t m, std::size_t k, std::size_t n);

/** out[m] = a[m x n] * x[n]. */
void matvecScalar(Complex *out, const Complex *a, const Complex *x,
                  std::size_t m, std::size_t n);

#if defined(__x86_64__) || defined(__i386__)
/** SSE2 counterparts (FMA-free; baseline for every x86-64 CPU). */
void gemmSse2(Complex *out, const Complex *a, const Complex *b,
              std::size_t m, std::size_t k, std::size_t n);
void gemmAdjBSse2(Complex *out, const Complex *a, const Complex *b,
                  std::size_t m, std::size_t k, std::size_t n);
void gemmAdjASse2(Complex *out, const Complex *a, const Complex *b,
                  std::size_t m, std::size_t k, std::size_t n);
void matvecSse2(Complex *out, const Complex *a, const Complex *x,
                std::size_t m, std::size_t n);

/** AVX2/FMA counterparts (defined only on x86; gate on avx2Supported). */
void gemmAvx2(Complex *out, const Complex *a, const Complex *b,
              std::size_t m, std::size_t k, std::size_t n);

/**
 * Fused in-place complex Givens update of two contiguous rows (the
 * Jacobi eigensolver's inner kernel). With r90(z) = i z elementwise:
 *
 *   xp' = c xp - spr xq - spi r90(xq)
 *   xq' = c xq + spr xp - spi r90(xp)
 *
 * which for (spr, spi) = s (Re phase, Im phase) is the row half of the
 * Hermitian Jacobi rotation a <- J^dag a J; the accumulator update
 * v <- v J on a row-major transposed accumulator is the same kernel
 * with spi negated. Rows must not overlap.
 */
void rotateRowPairAvx2(Complex *xp, Complex *xq, std::size_t n,
                       double c, double spr, double spi);
void gemmAdjBAvx2(Complex *out, const Complex *a, const Complex *b,
                  std::size_t m, std::size_t k, std::size_t n);
void gemmAdjAAvx2(Complex *out, const Complex *a, const Complex *b,
                  std::size_t m, std::size_t k, std::size_t n);
void matvecAvx2(Complex *out, const Complex *a, const Complex *x,
                std::size_t m, std::size_t n);

/**
 * AVX-512F counterparts (gate on avx512Supported). The dispatchers
 * route only the streaming gemm (and the blocked tiles below) here:
 * the 512-bit REDUCTION kernels (adjB / adjA / matvec) accumulate
 * 4-wide dot-product partial sums whose rounding drifts past the
 * 1e-12 legacy-agreement budget over full-length schedules, so under
 * Avx512 dispatch those three fall back to the 256-bit forms. The
 * 512-bit versions stay available for direct callers with a looser
 * budget (each one agrees with scalar to <= 1e-12 per call).
 */
void gemmAvx512(Complex *out, const Complex *a, const Complex *b,
                std::size_t m, std::size_t k, std::size_t n);
void gemmAdjBAvx512(Complex *out, const Complex *a, const Complex *b,
                    std::size_t m, std::size_t k, std::size_t n);
void gemmAdjAAvx512(Complex *out, const Complex *a, const Complex *b,
                    std::size_t m, std::size_t k, std::size_t n);
void matvecAvx512(Complex *out, const Complex *a, const Complex *x,
                  std::size_t m, std::size_t n);

// Strided accumulating tiles (gemmBlocked micro-kernels):
// out[i*ldo + j] += sum_kk a[i*lda + kk] * b[kk*ldb + j] over the
// m x kt x nt tile.
void gemmAccTileSse2(Complex *out, const Complex *a, const Complex *b,
                     std::size_t m, std::size_t kt, std::size_t nt,
                     std::size_t lda, std::size_t ldb, std::size_t ldo);
void gemmAccTileAvx2(Complex *out, const Complex *a, const Complex *b,
                     std::size_t m, std::size_t kt, std::size_t nt,
                     std::size_t lda, std::size_t ldb, std::size_t ldo);
void gemmAccTileAvx512(Complex *out, const Complex *a, const Complex *b,
                       std::size_t m, std::size_t kt, std::size_t nt,
                       std::size_t lda, std::size_t ldb,
                       std::size_t ldo);
#endif

/**
 * Cache-blocked gemm for Hilbert spaces whose operands overflow L1
 * (the 81-dim qutrit pairs): tiles the k and j loops so each B panel
 * is streamed from cache, delegating every tile to the active SIMD
 * tier's accumulating inner kernel. Only engaged by the dispatcher for
 * non-Scalar modes (scalar stays bit-identical to the seed loops) at
 * sizes past its threshold.
 */
void gemmBlocked(Complex *out, const Complex *a, const Complex *b,
                 std::size_t m, std::size_t k, std::size_t n,
                 SimdMode mode);

/** Dimension at/above which the dispatcher routes square-ish gemms to
 *  gemmBlocked (chosen so 3- and 9-dim transmons never tile but the
 *  81-dim pairs do). */
inline constexpr std::size_t kGemmBlockThreshold = 48;

// ---------------------------------------------------------------------
// Tier-routing entry points: select the active SimdMode's kernel (the
// blocked path for large gemms in SIMD modes). These do NOT touch the
// linalg.gemm.* counters — the Matrix/StatePanel wrappers own
// accounting.
// ---------------------------------------------------------------------
void gemmDispatch(Complex *out, const Complex *a, const Complex *b,
                  std::size_t m, std::size_t k, std::size_t n);
void gemmAdjBDispatch(Complex *out, const Complex *a, const Complex *b,
                      std::size_t m, std::size_t k, std::size_t n);
void gemmAdjADispatch(Complex *out, const Complex *a, const Complex *b,
                      std::size_t m, std::size_t k, std::size_t n);
void matvecDispatch(Complex *out, const Complex *a, const Complex *x,
                    std::size_t m, std::size_t n);

} // namespace kernels
} // namespace qpulse

#endif // QPULSE_LINALG_SIMD_H
