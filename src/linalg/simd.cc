#include "linalg/simd.h"

#include <atomic>

#include "common/env.h"

namespace qpulse {
namespace kernels {

bool
avx2Supported()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0 &&
           __builtin_cpu_supports("fma") != 0;
#else
    return false;
#endif
}

namespace {

/** -1 = unresolved; otherwise a SimdMode value. */
std::atomic<int> g_mode{-1};

SimdMode
resolveMode()
{
    const long enabled = envLong("QPULSE_SIMD", 1, 0, 1);
    if (enabled == 0 || !avx2Supported())
        return SimdMode::Scalar;
    return SimdMode::Avx2;
}

} // namespace

SimdMode
activeSimd()
{
    int mode = g_mode.load(std::memory_order_relaxed);
    if (mode < 0) {
        // A racing first call resolves to the same value, so the
        // blind store is benign.
        mode = static_cast<int>(resolveMode());
        g_mode.store(mode, std::memory_order_relaxed);
    }
    return static_cast<SimdMode>(mode);
}

void
setActiveSimd(SimdMode mode)
{
    if (mode == SimdMode::Avx2 && !avx2Supported()) {
        envWarn("QPULSE_SIMD",
                "AVX2 requested but unsupported by this CPU; "
                "staying scalar");
        mode = SimdMode::Scalar;
    }
    g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char *
simdModeName(SimdMode mode)
{
    return mode == SimdMode::Avx2 ? "avx2" : "scalar";
}

void
gemmScalar(Complex *out, const Complex *a, const Complex *b,
           std::size_t m, std::size_t k, std::size_t n)
{
    // Bit-identical to the historical Matrix::operator* triple loop:
    // zero-initialize, then accumulate row-by-row skipping exact-zero
    // A entries (the skip preserves signed-zero behaviour of the
    // original, so scalar results never drift from the seed code).
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = Complex{0.0, 0.0};
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const Complex aik = a[i * k + kk];
            if (aik == Complex{0.0, 0.0})
                continue;
            const Complex *brow = b + kk * n;
            Complex *orow = out + i * n;
            for (std::size_t j = 0; j < n; ++j)
                orow[j] += aik * brow[j];
        }
    }
}

void
gemmAdjBScalar(Complex *out, const Complex *a, const Complex *b,
               std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const Complex *brow = b + j * k;
            Complex sum{0.0, 0.0};
            for (std::size_t kk = 0; kk < k; ++kk)
                sum += arow[kk] * std::conj(brow[kk]);
            out[i * n + j] = sum;
        }
    }
}

void
gemmAdjAScalar(Complex *out, const Complex *a, const Complex *b,
               std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = Complex{0.0, 0.0};
    for (std::size_t kk = 0; kk < k; ++kk) {
        const Complex *arow = a + kk * m;
        const Complex *brow = b + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const Complex s = std::conj(arow[i]);
            if (s == Complex{0.0, 0.0})
                continue;
            Complex *orow = out + i * n;
            for (std::size_t j = 0; j < n; ++j)
                orow[j] += s * brow[j];
        }
    }
}

void
matvecScalar(Complex *out, const Complex *a, const Complex *x,
             std::size_t m, std::size_t n)
{
    // Bit-identical to the historical Matrix::apply loop.
    for (std::size_t i = 0; i < m; ++i) {
        Complex total{0.0, 0.0};
        const Complex *arow = a + i * n;
        for (std::size_t j = 0; j < n; ++j)
            total += arow[j] * x[j];
        out[i] = total;
    }
}

} // namespace kernels
} // namespace qpulse
