#include "linalg/simd.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <string>

#include "common/env.h"

namespace qpulse {
namespace kernels {

bool
sse2Supported()
{
#if defined(__x86_64__)
    return true; // SSE2 is part of the x86-64 baseline.
#elif defined(__i386__)
    return __builtin_cpu_supports("sse2") != 0;
#else
    return false;
#endif
}

bool
avx2Supported()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0 &&
           __builtin_cpu_supports("fma") != 0;
#else
    return false;
#endif
}

bool
avx512Supported()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("fma") != 0;
#else
    return false;
#endif
}

bool
pclmulSupported()
{
#if defined(__x86_64__) || defined(__i386__)
    // Tied to the active dispatch mode so QPULSE_SIMD=0 (or
    // setActiveSimd(Scalar)) forces the table CRC path as well.
    return activeSimd() != SimdMode::Scalar &&
           __builtin_cpu_supports("pclmul") != 0 &&
           __builtin_cpu_supports("sse2") != 0;
#else
    return false;
#endif
}

namespace {

/** -1 = unresolved; otherwise a SimdMode value. */
std::atomic<int> g_mode{-1};

bool
modeSupported(SimdMode mode)
{
    switch (mode) {
    case SimdMode::Scalar:
        return true;
    case SimdMode::Sse2:
        return sse2Supported();
    case SimdMode::Avx2:
        return avx2Supported();
    case SimdMode::Avx512:
        return avx512Supported();
    }
    return false;
}

/** Widest supported tier at or below `mode`. */
SimdMode
clampToSupported(SimdMode mode)
{
    int m = static_cast<int>(mode);
    while (m > 0 && !modeSupported(static_cast<SimdMode>(m)))
        --m;
    return static_cast<SimdMode>(m);
}

SimdMode
highestSupported()
{
    return clampToSupported(SimdMode::Avx512);
}

SimdMode
resolveMode()
{
    std::string raw = envString("QPULSE_SIMD").value_or("");
    std::transform(raw.begin(), raw.end(), raw.begin(), [](char c) {
        return static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    });
    if (raw.empty() || raw == "1" || raw == "auto")
        return highestSupported();
    if (raw == "0" || raw == "scalar")
        return SimdMode::Scalar;
    SimdMode requested;
    if (raw == "sse2") {
        requested = SimdMode::Sse2;
    } else if (raw == "avx2") {
        requested = SimdMode::Avx2;
    } else if (raw == "avx512") {
        requested = SimdMode::Avx512;
    } else {
        envWarn("QPULSE_SIMD",
                "expected 0/scalar, 1/auto, sse2, avx2 or avx512; "
                "using auto");
        return highestSupported();
    }
    const SimdMode actual = clampToSupported(requested);
    if (actual != requested)
        envWarn("QPULSE_SIMD",
                "requested tier unsupported by this CPU; falling back "
                "to the widest supported tier below it");
    return actual;
}

} // namespace

SimdMode
activeSimd()
{
    int mode = g_mode.load(std::memory_order_relaxed);
    if (mode < 0) {
        // A racing first call resolves to the same value, so the
        // blind store is benign.
        mode = static_cast<int>(resolveMode());
        g_mode.store(mode, std::memory_order_relaxed);
    }
    return static_cast<SimdMode>(mode);
}

void
setActiveSimd(SimdMode mode)
{
    const SimdMode actual = clampToSupported(mode);
    if (actual != mode)
        envWarn("QPULSE_SIMD",
                "requested tier unsupported by this CPU; falling back "
                "to the widest supported tier below it");
    g_mode.store(static_cast<int>(actual), std::memory_order_relaxed);
}

const char *
simdModeName(SimdMode mode)
{
    switch (mode) {
    case SimdMode::Sse2:
        return "sse2";
    case SimdMode::Avx2:
        return "avx2";
    case SimdMode::Avx512:
        return "avx512";
    case SimdMode::Scalar:
        break;
    }
    return "scalar";
}

void
gemmScalar(Complex *out, const Complex *a, const Complex *b,
           std::size_t m, std::size_t k, std::size_t n)
{
    // Bit-identical to the historical Matrix::operator* triple loop:
    // zero-initialize, then accumulate row-by-row skipping exact-zero
    // A entries (the skip preserves signed-zero behaviour of the
    // original, so scalar results never drift from the seed code).
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = Complex{0.0, 0.0};
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const Complex aik = a[i * k + kk];
            if (aik == Complex{0.0, 0.0})
                continue;
            const Complex *brow = b + kk * n;
            Complex *orow = out + i * n;
            for (std::size_t j = 0; j < n; ++j)
                orow[j] += aik * brow[j];
        }
    }
}

void
gemmAdjBScalar(Complex *out, const Complex *a, const Complex *b,
               std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const Complex *brow = b + j * k;
            Complex sum{0.0, 0.0};
            for (std::size_t kk = 0; kk < k; ++kk)
                sum += arow[kk] * std::conj(brow[kk]);
            out[i * n + j] = sum;
        }
    }
}

void
gemmAdjAScalar(Complex *out, const Complex *a, const Complex *b,
               std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = Complex{0.0, 0.0};
    for (std::size_t kk = 0; kk < k; ++kk) {
        const Complex *arow = a + kk * m;
        const Complex *brow = b + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const Complex s = std::conj(arow[i]);
            if (s == Complex{0.0, 0.0})
                continue;
            Complex *orow = out + i * n;
            for (std::size_t j = 0; j < n; ++j)
                orow[j] += s * brow[j];
        }
    }
}

void
matvecScalar(Complex *out, const Complex *a, const Complex *x,
             std::size_t m, std::size_t n)
{
    // Bit-identical to the historical Matrix::apply loop.
    for (std::size_t i = 0; i < m; ++i) {
        Complex total{0.0, 0.0};
        const Complex *arow = a + i * n;
        for (std::size_t j = 0; j < n; ++j)
            total += arow[j] * x[j];
        out[i] = total;
    }
}

namespace {

/** Portable strided accumulating tile (the gemmBlocked fallback when
 *  a tier-specific micro-kernel is unavailable). */
void
gemmAccTileScalar(Complex *out, const Complex *a, const Complex *b,
                  std::size_t m, std::size_t kt, std::size_t nt,
                  std::size_t lda, std::size_t ldb, std::size_t ldo)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * lda;
        Complex *orow = out + i * ldo;
        for (std::size_t kk = 0; kk < kt; ++kk) {
            const Complex aik = arow[kk];
            const Complex *brow = b + kk * ldb;
            for (std::size_t j = 0; j < nt; ++j)
                orow[j] += aik * brow[j];
        }
    }
}

} // namespace

void
gemmBlocked(Complex *out, const Complex *a, const Complex *b,
            std::size_t m, std::size_t k, std::size_t n, SimdMode mode)
{
    // Tile the reduction (k) and output-column (j) loops so each B
    // panel of kt x nt complex doubles (<= 24 KiB) stays L1-resident
    // while every row of A streams against it. Accumulation order
    // inside a column is still ascending in k, so results match the
    // unblocked SIMD kernels' tail-loop ordering to within the usual
    // reassociation budget (<= 1e-12, pinned in tests).
    constexpr std::size_t kTileK = 32;
    constexpr std::size_t kTileN = 48;
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = Complex{0.0, 0.0};
    for (std::size_t jj = 0; jj < n; jj += kTileN) {
        const std::size_t nt = std::min(kTileN, n - jj);
        for (std::size_t kk = 0; kk < k; kk += kTileK) {
            const std::size_t kt = std::min(kTileK, k - kk);
            Complex *otile = out + jj;
            const Complex *atile = a + kk;
            const Complex *btile = b + kk * n + jj;
#if defined(__x86_64__) || defined(__i386__)
            switch (mode) {
            case SimdMode::Avx512:
                gemmAccTileAvx512(otile, atile, btile, m, kt, nt, k, n,
                                  n);
                continue;
            case SimdMode::Avx2:
                gemmAccTileAvx2(otile, atile, btile, m, kt, nt, k, n,
                                n);
                continue;
            case SimdMode::Sse2:
                gemmAccTileSse2(otile, atile, btile, m, kt, nt, k, n,
                                n);
                continue;
            case SimdMode::Scalar:
                break;
            }
#else
            (void)mode;
#endif
            gemmAccTileScalar(otile, atile, btile, m, kt, nt, k, n, n);
        }
    }
}

void
gemmDispatch(Complex *out, const Complex *a, const Complex *b,
             std::size_t m, std::size_t k, std::size_t n)
{
    const SimdMode mode = activeSimd();
    // The blocked path only engages for SIMD tiers: Scalar mode stays
    // bit-identical to the seed triple loop at every size.
    if (mode != SimdMode::Scalar && k >= kGemmBlockThreshold &&
        n >= kGemmBlockThreshold) {
        gemmBlocked(out, a, b, m, k, n, mode);
        return;
    }
#if defined(__x86_64__) || defined(__i386__)
    switch (mode) {
    case SimdMode::Avx512:
        gemmAvx512(out, a, b, m, k, n);
        return;
    case SimdMode::Avx2:
        gemmAvx2(out, a, b, m, k, n);
        return;
    case SimdMode::Sse2:
        gemmSse2(out, a, b, m, k, n);
        return;
    case SimdMode::Scalar:
        break;
    }
#endif
    gemmScalar(out, a, b, m, k, n);
}

void
gemmAdjBDispatch(Complex *out, const Complex *a, const Complex *b,
                 std::size_t m, std::size_t k, std::size_t n)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (activeSimd()) {
    // The Avx512 tier routes the REDUCTION kernels (adjB / adjA /
    // matvec) to the 256-bit implementations: 4-wide dot-product
    // partial sums round differently enough from the scalar reference
    // that full-length CNOT propagators drift past the 1e-12
    // legacy-agreement budget (BENCH_pulsesim.json, `uncached` gate),
    // while the streaming gemm — whose per-column fma order is
    // width-independent — gets the full 512-bit width. The 512-bit
    // reduction kernels remain available for direct callers that can
    // spend the looser budget.
    case SimdMode::Avx512:
        gemmAdjBAvx2(out, a, b, m, k, n);
        return;
    case SimdMode::Avx2:
        gemmAdjBAvx2(out, a, b, m, k, n);
        return;
    case SimdMode::Sse2:
        gemmAdjBSse2(out, a, b, m, k, n);
        return;
    case SimdMode::Scalar:
        break;
    }
#endif
    gemmAdjBScalar(out, a, b, m, k, n);
}

void
gemmAdjADispatch(Complex *out, const Complex *a, const Complex *b,
                 std::size_t m, std::size_t k, std::size_t n)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (activeSimd()) {
    case SimdMode::Avx512: // 256-bit reduction: see gemmAdjBDispatch.
        gemmAdjAAvx2(out, a, b, m, k, n);
        return;
    case SimdMode::Avx2:
        gemmAdjAAvx2(out, a, b, m, k, n);
        return;
    case SimdMode::Sse2:
        gemmAdjASse2(out, a, b, m, k, n);
        return;
    case SimdMode::Scalar:
        break;
    }
#endif
    gemmAdjAScalar(out, a, b, m, k, n);
}

void
matvecDispatch(Complex *out, const Complex *a, const Complex *x,
               std::size_t m, std::size_t n)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (activeSimd()) {
    case SimdMode::Avx512: // 256-bit reduction: see gemmAdjBDispatch.
        matvecAvx2(out, a, x, m, n);
        return;
    case SimdMode::Avx2:
        matvecAvx2(out, a, x, m, n);
        return;
    case SimdMode::Sse2:
        matvecSse2(out, a, x, m, n);
        return;
    case SimdMode::Scalar:
        break;
    }
#endif
    matvecScalar(out, a, x, m, n);
}

} // namespace kernels
} // namespace qpulse
