/**
 * @file
 * SSE2 variants of the dense complex kernels — the FMA-free fallback
 * tier. One 128-bit register holds one complex double [re, im]; a
 * complex multiply-accumulate is two broadcasts, one in-lane swap, one
 * sign flip and two mul/add pairs (no FMA, so the tier runs on every
 * x86-64 CPU including pre-Haswell parts):
 *
 *   acc += (ar + i*ai) * [br, bi]
 *     t    = (ai * swap(b)) ^ [-0.0, 0.0]  // [-ai*bi, ai*br]
 *     acc += ar * b + t                    // [ar*br - ai*bi,
 *                                          //  ar*bi + ai*br]
 *
 * Compiled with per-function target attributes so the translation unit
 * stays buildable with a baseline -march (relevant only on i386; on
 * x86-64 SSE2 is the baseline).
 */
#if defined(__x86_64__) || defined(__i386__)

#include "linalg/simd.h"

#include <emmintrin.h>

namespace qpulse {
namespace kernels {

namespace {

#define QPULSE_SSE2 __attribute__((target("sse2")))

QPULSE_SSE2 inline const double *
dp(const Complex *z)
{
    return reinterpret_cast<const double *>(z);
}

QPULSE_SSE2 inline double *
dp(Complex *z)
{
    return reinterpret_cast<double *>(z);
}

/** [-0.0, 0.0]: XOR negates the low (real) lane. */
QPULSE_SSE2 inline __m128d
flipLow()
{
    return _mm_setr_pd(-0.0, 0.0);
}

/** acc += (ar + i*ai) * b for one complex double. */
QPULSE_SSE2 inline __m128d
cplxMulAcc(__m128d acc, __m128d are, __m128d aim, __m128d bv)
{
    const __m128d bswap = _mm_shuffle_pd(bv, bv, 0x1);
    const __m128d t = _mm_xor_pd(_mm_mul_pd(aim, bswap), flipLow());
    return _mm_add_pd(acc, _mm_add_pd(_mm_mul_pd(are, bv), t));
}

} // namespace

QPULSE_SSE2 void
gemmSse2(Complex *out, const Complex *a, const Complex *b,
         std::size_t m, std::size_t k, std::size_t n)
{
    // Row-accumulate ordering (i, kk, j) so B streams contiguously,
    // matching the scalar kernel's accumulation order exactly — the
    // only numeric difference from Scalar mode is the absence of the
    // exact-zero skip.
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = Complex{0.0, 0.0};
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * k;
        Complex *orow = out + i * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const double *az = dp(arow + kk);
            const __m128d are = _mm_set1_pd(az[0]);
            const __m128d aim = _mm_set1_pd(az[1]);
            const Complex *brow = b + kk * n;
            for (std::size_t j = 0; j < n; ++j) {
                const __m128d acc = cplxMulAcc(
                    _mm_loadu_pd(dp(orow + j)), are, aim,
                    _mm_loadu_pd(dp(brow + j)));
                _mm_storeu_pd(dp(orow + j), acc);
            }
        }
    }
}

QPULSE_SSE2 void
gemmAdjBSse2(Complex *out, const Complex *a, const Complex *b,
             std::size_t m, std::size_t k, std::size_t n)
{
    // out(i, j) = <row_j(b) | row_i(a)>: accumulate the lane products
    // [xr*yr, xi*yi] and [xr*yi, xi*yr]; the conjugated inner product
    // is re = sum(lo + hi of acc_r), im = sum(hi - lo of acc_i).
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const Complex *brow = b + j * k;
            __m128d acc_r = _mm_setzero_pd();
            __m128d acc_i = _mm_setzero_pd();
            for (std::size_t kk = 0; kk < k; ++kk) {
                const __m128d x = _mm_loadu_pd(dp(arow + kk));
                const __m128d y = _mm_loadu_pd(dp(brow + kk));
                acc_r = _mm_add_pd(acc_r, _mm_mul_pd(x, y));
                acc_i = _mm_add_pd(
                    acc_i,
                    _mm_mul_pd(x, _mm_shuffle_pd(y, y, 0x1)));
            }
            const __m128d hr = _mm_unpackhi_pd(acc_r, acc_r);
            const __m128d hi = _mm_unpackhi_pd(acc_i, acc_i);
            const double re =
                _mm_cvtsd_f64(acc_r) + _mm_cvtsd_f64(hr);
            const double im =
                _mm_cvtsd_f64(hi) - _mm_cvtsd_f64(acc_i);
            out[i * n + j] = Complex{re, im};
        }
    }
}

QPULSE_SSE2 void
gemmAdjASse2(Complex *out, const Complex *a, const Complex *b,
             std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = Complex{0.0, 0.0};
    for (std::size_t kk = 0; kk < k; ++kk) {
        const Complex *arow = a + kk * m;
        const Complex *brow = b + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const double *az = dp(arow + i);
            // conj(a(kk, i)): negate the broadcast imaginary part.
            const __m128d sre = _mm_set1_pd(az[0]);
            const __m128d sim = _mm_set1_pd(-az[1]);
            Complex *orow = out + i * n;
            for (std::size_t j = 0; j < n; ++j) {
                const __m128d acc = cplxMulAcc(
                    _mm_loadu_pd(dp(orow + j)), sre, sim,
                    _mm_loadu_pd(dp(brow + j)));
                _mm_storeu_pd(dp(orow + j), acc);
            }
        }
    }
}

QPULSE_SSE2 void
matvecSse2(Complex *out, const Complex *a, const Complex *x,
           std::size_t m, std::size_t n)
{
    // Unconjugated inner product: re = lo - hi of [ar*xr, ai*xi],
    // im = lo + hi of [ar*xi, ai*xr].
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * n;
        __m128d acc_r = _mm_setzero_pd();
        __m128d acc_i = _mm_setzero_pd();
        for (std::size_t j = 0; j < n; ++j) {
            const __m128d av = _mm_loadu_pd(dp(arow + j));
            const __m128d xv = _mm_loadu_pd(dp(x + j));
            acc_r = _mm_add_pd(acc_r, _mm_mul_pd(av, xv));
            acc_i = _mm_add_pd(
                acc_i, _mm_mul_pd(av, _mm_shuffle_pd(xv, xv, 0x1)));
        }
        const __m128d hr = _mm_unpackhi_pd(acc_r, acc_r);
        const __m128d hi = _mm_unpackhi_pd(acc_i, acc_i);
        const double re = _mm_cvtsd_f64(acc_r) - _mm_cvtsd_f64(hr);
        const double im = _mm_cvtsd_f64(acc_i) + _mm_cvtsd_f64(hi);
        out[i] = Complex{re, im};
    }
}

QPULSE_SSE2 void
gemmAccTileSse2(Complex *out, const Complex *a, const Complex *b,
                std::size_t m, std::size_t kt, std::size_t nt,
                std::size_t lda, std::size_t ldb, std::size_t ldo)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * lda;
        Complex *orow = out + i * ldo;
        for (std::size_t kk = 0; kk < kt; ++kk) {
            const double *az = dp(arow + kk);
            const __m128d are = _mm_set1_pd(az[0]);
            const __m128d aim = _mm_set1_pd(az[1]);
            const Complex *brow = b + kk * ldb;
            for (std::size_t j = 0; j < nt; ++j) {
                const __m128d acc = cplxMulAcc(
                    _mm_loadu_pd(dp(orow + j)), are, aim,
                    _mm_loadu_pd(dp(brow + j)));
                _mm_storeu_pd(dp(orow + j), acc);
            }
        }
    }
}

#undef QPULSE_SSE2

} // namespace kernels
} // namespace qpulse

#endif // x86
