/**
 * @file
 * Structure-of-arrays state panels: the batched-evolution data layout.
 *
 * A StatePanel packs K pure states of dimension d as the COLUMNS of
 * one contiguous row-major d x K matrix, so applying a propagator to
 * all K states at once is a single gemm (`U * panel`): the SIMD layer
 * streams each row of U exactly once per panel instead of once per
 * shot, and the batch dimension K lands on the contiguous (vectorized)
 * axis of the kernel. A DensityPanel does the same for K density
 * matrices by stacking the d x d blocks VERTICALLY into one
 * (K*d) x d matrix: the left half of the conjugation (U * rho_i) is K
 * contiguous block gemms and the right half (* U^dagger) is one
 * batched gemmAdjB over all K blocks.
 *
 * Both panel products dispatch through the same kernels::activeSimd()
 * tier as single-state products (src/linalg/simd.h numerics contract:
 * each column of the batched result is bit-identical across
 * QPULSE_THREADS for a fixed dispatch mode) and count their work into
 * the linalg.gemm.batched_* telemetry counters.
 */
#ifndef QPULSE_LINALG_STATE_PANEL_H
#define QPULSE_LINALG_STATE_PANEL_H

#include "linalg/matrix.h"

namespace qpulse {

/** K pure states as columns of one row-major d x K buffer. */
class StatePanel
{
  public:
    StatePanel() = default;

    StatePanel(std::size_t dim, std::size_t width) { resize(dim, width); }

    std::size_t dim() const { return storage_.rows(); }
    std::size_t width() const { return storage_.cols(); }

    /**
     * Change the shape, reusing existing capacity when possible.
     * Entries are unspecified afterwards (callers fully overwrite).
     */
    void resize(std::size_t dim, std::size_t width)
    {
        storage_.resize(dim, width);
    }

    void setZero() { storage_.setZero(); }

    Complex &at(std::size_t i, std::size_t col)
    {
        return storage_(i, col);
    }
    const Complex &at(std::size_t i, std::size_t col) const
    {
        return storage_(i, col);
    }

    /** Overwrite column `col` with the given state. */
    void setColumn(std::size_t col, const Vector &state);

    /** Copy column `col` out into `state` (resized to dim). */
    void getColumn(std::size_t col, Vector &state) const;

    /** Overwrite every column with the same state. */
    void fillColumns(const Vector &state);

    const Matrix &storage() const { return storage_; }
    Matrix &storage() { return storage_; }

  private:
    Matrix storage_; // dim x width, row-major: row i holds amplitude i
                     // of every state in the batch.
};

/** K density matrices stacked vertically: (K*d) x d, block i at rows
 *  [i*d, (i+1)*d). */
class DensityPanel
{
  public:
    DensityPanel() = default;

    DensityPanel(std::size_t dim, std::size_t width)
    {
        resize(dim, width);
    }

    std::size_t dim() const { return storage_.cols(); }
    std::size_t width() const { return width_; }

    void resize(std::size_t dim, std::size_t width)
    {
        width_ = width;
        storage_.resize(dim * width, dim);
    }

    void setZero() { storage_.setZero(); }

    /** Entry (r, c) of block `col`. */
    Complex &at(std::size_t col, std::size_t r, std::size_t c)
    {
        return storage_(col * dim() + r, c);
    }
    const Complex &at(std::size_t col, std::size_t r,
                      std::size_t c) const
    {
        return storage_(col * dim() + r, c);
    }

    /** Overwrite block `col` with the given density matrix. */
    void setBlock(std::size_t col, const Matrix &rho);

    /** Copy block `col` out into `rho` (resized to dim x dim). */
    void getBlock(std::size_t col, Matrix &rho) const;

    const Matrix &storage() const { return storage_; }
    Matrix &storage() { return storage_; }

  private:
    std::size_t width_ = 0;
    Matrix storage_; // (width * dim) x dim
};

/**
 * out = u * in, all columns at once (one gemm of shape
 * d x d x K). `out` must not alias `in`; resized to match.
 */
void applyPanelInto(StatePanel &out, const Matrix &u,
                    const StatePanel &in);

/**
 * out_i = u * in_i * u^dagger for every block i: K block gemms for the
 * left factor plus ONE batched gemmAdjB of shape (K*d) x d x d for the
 * right factor, staged through `tmp`. Neither `out` nor `tmp` may
 * alias `in` (or each other); both are resized to match.
 */
void conjugatePanelInto(DensityPanel &out, const Matrix &u,
                        const DensityPanel &in, DensityPanel &tmp);

/** Max elementwise |a - b| over two same-shape panels. */
double panelMaxAbsDiff(const StatePanel &a, const StatePanel &b);

} // namespace qpulse

#endif // QPULSE_LINALG_STATE_PANEL_H
