/**
 * @file
 * Dense complex matrix and vector types used throughout qpulse.
 *
 * The dimensions involved in this project are tiny (2x2 single-qubit
 * unitaries up to 64x64 five-qubit density matrices and 9x9 two-transmon
 * qutrit Hamiltonians), so a straightforward row-major dense
 * implementation is both sufficient and easy to audit.
 */
#ifndef QPULSE_LINALG_MATRIX_H
#define QPULSE_LINALG_MATRIX_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/constants.h"
#include "common/logging.h"

namespace qpulse {

class Workspace;

/** Dense complex column vector. */
class Vector
{
  public:
    Vector() = default;

    /** Zero vector of the given size. */
    explicit Vector(std::size_t n) : data_(n, Complex{0.0, 0.0}) {}

    /** Construct from an explicit list of amplitudes. */
    Vector(std::initializer_list<Complex> values) : data_(values) {}

    std::size_t size() const { return data_.size(); }

    /**
     * Change the size, reusing existing capacity when possible; newly
     * exposed entries (growth only) are zero, surviving entries keep
     * their values.
     */
    void resize(std::size_t n) { data_.resize(n, Complex{0.0, 0.0}); }

    /** Set every entry to zero without changing the size. */
    void setZero()
    {
        for (auto &amp : data_)
            amp = Complex{0.0, 0.0};
    }

    Complex &operator[](std::size_t i) { return data_[i]; }
    const Complex &operator[](std::size_t i) const { return data_[i]; }

    /** Squared 2-norm. */
    double normSq() const;

    /** 2-norm. */
    double norm() const;

    /** Scale in place so the 2-norm is 1; panics on the zero vector. */
    void normalize();

    /** Inner product <this|other> (conjugate-linear in this). */
    Complex dot(const Vector &other) const;

    Vector operator+(const Vector &other) const;
    Vector operator-(const Vector &other) const;
    Vector operator*(Complex scale) const;
    Vector &operator+=(const Vector &other);

    const std::vector<Complex> &data() const { return data_; }
    std::vector<Complex> &data() { return data_; }

  private:
    std::vector<Complex> data_;
};

/** Dense row-major complex matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero matrix with the given shape. */
    Matrix(std::size_t rows, std::size_t cols);

    /**
     * Construct from a nested initializer list, e.g.
     * Matrix m{{1, 0}, {0, 1}};
     */
    Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** Identity matrix of dimension n. */
    static Matrix identity(std::size_t n);

    /** Zero square matrix of dimension n. */
    static Matrix zero(std::size_t n) { return Matrix(n, n); }

    /** Diagonal matrix from the given entries. */
    static Matrix diagonal(const std::vector<Complex> &entries);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /**
     * Change the shape, reusing existing capacity when possible.
     * Entries are unspecified afterwards (callers fully overwrite or
     * call setZero); intended for Workspace scratch slots.
     */
    void resize(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /** Set every entry to zero without changing the shape. */
    void setZero()
    {
        for (auto &entry : data_)
            entry = Complex{0.0, 0.0};
    }

    /** Overwrite with the identity (requires square shape). */
    void setIdentity();

    Complex &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    const Complex &operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(Complex scale) const;
    Matrix &operator+=(const Matrix &other);
    Matrix &operator-=(const Matrix &other);
    Matrix &operator*=(Complex scale);

    /** Matrix-vector product. */
    Vector apply(const Vector &v) const;

    /** Conjugate transpose. */
    Matrix adjoint() const;

    /** Transpose (no conjugation). */
    Matrix transpose() const;

    /** Elementwise complex conjugate. */
    Matrix conjugate() const;

    /** Trace (sum of diagonal entries); requires square. */
    Complex trace() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Max elementwise absolute difference against another matrix. */
    double maxAbsDiff(const Matrix &other) const;

    /** True if within tolerance of the identity. */
    bool isIdentity(double tol = 1e-9) const;

    /** True if U * U^dagger is within tolerance of the identity. */
    bool isUnitary(double tol = 1e-9) const;

    /** True if within tolerance of self-adjoint. */
    bool isHermitian(double tol = 1e-9) const;

    /** Multi-line human-readable rendering (for debugging/tests). */
    std::string toString(int precision = 4) const;

    const std::vector<Complex> &data() const { return data_; }
    std::vector<Complex> &data() { return data_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Complex> data_;
};

// ---------------------------------------------------------------------
// Allocation-free kernel API. Each *Into overload resizes `out` (a
// capacity-reusing no-op inside warm loops) and fully overwrites it;
// `out` must not alias any input. Products dispatch through
// kernels::activeSimd() — see src/linalg/simd.h for the numerics
// contract — and increment the linalg.gemm.* telemetry counters.
// ---------------------------------------------------------------------

/** out = a * b. */
void gemmInto(Matrix &out, const Matrix &a, const Matrix &b);

/** out = a * b^dagger (without materializing the adjoint). */
void gemmAdjBInto(Matrix &out, const Matrix &a, const Matrix &b);

/** out = a^dagger * b (without materializing the adjoint). */
void gemmAdjAInto(Matrix &out, const Matrix &a, const Matrix &b);

/** out = a * x. */
void applyInto(Vector &out, const Matrix &a, const Vector &x);

/**
 * h += s * op + (s * op)^dagger, in place. Bit-identical to the
 * expression `h + term + term.adjoint()` with term = op * s: complex
 * multiplication and addition are evaluated in the same order per
 * entry, so the Hermitian drive builds in the simulator hot loop
 * reproduce the historical temporaries exactly.
 */
void addScaledPlusAdjoint(Matrix &h, const Matrix &op, Complex s);

/**
 * Binary-exponentiation matrix power: out = base^count, count >= 1,
 * O(d^3 log count) and heap-silent after workspace warm-up (consumes
 * workspace matrix slots 0-1). The multiplication order matches the
 * historical PulseSimulator::matrixPower helper bit-for-bit.
 */
void powmInto(Matrix &out, const Matrix &base, std::uint64_t count,
              Workspace &ws);

/** Out-of-place powm convenience (uses the thread-local workspace). */
Matrix powm(const Matrix &base, std::uint64_t count);

/** Kronecker (tensor) product a (x) b. */
Matrix kron(const Matrix &a, const Matrix &b);

/** Kronecker product of a list, left-to-right. */
Matrix kronAll(const std::vector<Matrix> &factors);

/** Kronecker product of vectors. */
Vector kron(const Vector &a, const Vector &b);

/** Scalar * matrix convenience. */
inline Matrix
operator*(Complex scale, const Matrix &m)
{
    return m * scale;
}

} // namespace qpulse

#endif // QPULSE_LINALG_MATRIX_H
