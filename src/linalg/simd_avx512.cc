/**
 * @file
 * AVX-512F variants of the dense complex kernels.
 *
 * Same complex-arithmetic scheme as the AVX2 tier (see simd_avx2.cc)
 * widened to 512-bit registers: four complex doubles per vector
 * [re0, im0, re1, im1, re2, im2, re3, im3], a complex
 * multiply-accumulate is two broadcasts, one in-lane swap and one
 * fmaddsub. Inner-product reductions use the masked lane reductions
 * (_mm512_mask_reduce_add_pd over the even/odd lane masks), whose tree
 * order is fixed at compile time, so results stay deterministic within
 * the tier.
 *
 * Compiled with per-function target attributes so the translation unit
 * stays buildable with a baseline -march: the dispatcher only routes
 * here after a cpuid probe (avx512Supported).
 */
#if defined(__x86_64__) || defined(__i386__)

#include "linalg/simd.h"

#include <immintrin.h>

namespace qpulse {
namespace kernels {

namespace {

#define QPULSE_AVX512 __attribute__((target("avx512f,fma")))

QPULSE_AVX512 inline const double *
dp(const Complex *z)
{
    return reinterpret_cast<const double *>(z);
}

QPULSE_AVX512 inline double *
dp(Complex *z)
{
    return reinterpret_cast<double *>(z);
}

/** Sum of even lanes (0, 2, 4, 6) of a 512-bit vector. */
QPULSE_AVX512 inline double
sumEven(__m512d v)
{
    return _mm512_mask_reduce_add_pd(__mmask8(0x55), v);
}

/** Sum of odd lanes (1, 3, 5, 7) of a 512-bit vector. */
QPULSE_AVX512 inline double
sumOdd(__m512d v)
{
    return _mm512_mask_reduce_add_pd(__mmask8(0xAA), v);
}

/** Swap re/im within each complex: lanes [1,0,3,2,5,4,7,6]. */
QPULSE_AVX512 inline __m512d
swapPairs(__m512d v)
{
    return _mm512_permute_pd(v, 0x55);
}

} // namespace

QPULSE_AVX512 void
gemmAvx512(Complex *out, const Complex *a, const Complex *b,
           std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * k;
        Complex *orow = out + i * n;
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            __m512d acc = _mm512_setzero_pd();
            for (std::size_t kk = 0; kk < k; ++kk) {
                const double *az = dp(arow + kk);
                const __m512d are = _mm512_set1_pd(az[0]);
                const __m512d aim = _mm512_set1_pd(az[1]);
                const __m512d bv =
                    _mm512_loadu_pd(dp(b + kk * n + j));
                const __m512d t = _mm512_mul_pd(aim, swapPairs(bv));
                acc = _mm512_add_pd(acc,
                                    _mm512_fmaddsub_pd(are, bv, t));
            }
            _mm512_storeu_pd(dp(orow + j), acc);
        }
        for (; j < n; ++j) {
            Complex sum{0.0, 0.0};
            for (std::size_t kk = 0; kk < k; ++kk)
                sum += arow[kk] * b[kk * n + j];
            orow[j] = sum;
        }
    }
}

QPULSE_AVX512 void
gemmAdjBAvx512(Complex *out, const Complex *a, const Complex *b,
               std::size_t m, std::size_t k, std::size_t n)
{
    // out(i, j) = <row_j(b) | row_i(a)>: both operands are contiguous
    // rows, so the inner product vectorizes without any transpose.
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const Complex *brow = b + j * k;
            __m512d acc_r = _mm512_setzero_pd();
            __m512d acc_i = _mm512_setzero_pd();
            std::size_t kk = 0;
            for (; kk + 4 <= k; kk += 4) {
                const __m512d x = _mm512_loadu_pd(dp(arow + kk));
                const __m512d y = _mm512_loadu_pd(dp(brow + kk));
                acc_r = _mm512_fmadd_pd(x, y, acc_r);
                acc_i = _mm512_fmadd_pd(x, swapPairs(y), acc_i);
            }
            // x * conj(y): re = xr*yr + xi*yi, im = xi*yr - xr*yi.
            double re = sumEven(acc_r) + sumOdd(acc_r);
            double im = sumOdd(acc_i) - sumEven(acc_i);
            for (; kk < k; ++kk) {
                const Complex z = arow[kk] * std::conj(brow[kk]);
                re += z.real();
                im += z.imag();
            }
            out[i * n + j] = Complex{re, im};
        }
    }
}

QPULSE_AVX512 void
gemmAdjAAvx512(Complex *out, const Complex *a, const Complex *b,
               std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m * n; ++i)
        out[i] = Complex{0.0, 0.0};
    for (std::size_t kk = 0; kk < k; ++kk) {
        const Complex *arow = a + kk * m;
        const Complex *brow = b + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const double *az = dp(arow + i);
            // conj(a(kk, i)): negate the broadcast imaginary part.
            const __m512d sre = _mm512_set1_pd(az[0]);
            const __m512d sim = _mm512_set1_pd(-az[1]);
            Complex *orow = out + i * n;
            std::size_t j = 0;
            for (; j + 4 <= n; j += 4) {
                const __m512d bv = _mm512_loadu_pd(dp(brow + j));
                const __m512d t = _mm512_mul_pd(sim, swapPairs(bv));
                const __m512d acc = _mm512_add_pd(
                    _mm512_loadu_pd(dp(orow + j)),
                    _mm512_fmaddsub_pd(sre, bv, t));
                _mm512_storeu_pd(dp(orow + j), acc);
            }
            const Complex s = std::conj(arow[i]);
            for (; j < n; ++j)
                orow[j] += s * brow[j];
        }
    }
}

QPULSE_AVX512 void
matvecAvx512(Complex *out, const Complex *a, const Complex *x,
             std::size_t m, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * n;
        __m512d acc_r = _mm512_setzero_pd();
        __m512d acc_i = _mm512_setzero_pd();
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const __m512d av = _mm512_loadu_pd(dp(arow + j));
            const __m512d xv = _mm512_loadu_pd(dp(x + j));
            acc_r = _mm512_fmadd_pd(av, xv, acc_r);
            acc_i = _mm512_fmadd_pd(av, swapPairs(xv), acc_i);
        }
        // a * x (no conjugation): re = ar*xr - ai*xi,
        // im = ar*xi + ai*xr.
        double re = sumEven(acc_r) - sumOdd(acc_r);
        double im = sumEven(acc_i) + sumOdd(acc_i);
        for (; j < n; ++j) {
            const Complex z = arow[j] * x[j];
            re += z.real();
            im += z.imag();
        }
        out[i] = Complex{re, im};
    }
}

QPULSE_AVX512 void
gemmAccTileAvx512(Complex *out, const Complex *a, const Complex *b,
                  std::size_t m, std::size_t kt, std::size_t nt,
                  std::size_t lda, std::size_t ldb, std::size_t ldo)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Complex *arow = a + i * lda;
        Complex *orow = out + i * ldo;
        for (std::size_t kk = 0; kk < kt; ++kk) {
            const double *az = dp(arow + kk);
            const __m512d are = _mm512_set1_pd(az[0]);
            const __m512d aim = _mm512_set1_pd(az[1]);
            const Complex *brow = b + kk * ldb;
            std::size_t j = 0;
            for (; j + 4 <= nt; j += 4) {
                const __m512d bv = _mm512_loadu_pd(dp(brow + j));
                const __m512d t = _mm512_mul_pd(aim, swapPairs(bv));
                const __m512d acc = _mm512_add_pd(
                    _mm512_loadu_pd(dp(orow + j)),
                    _mm512_fmaddsub_pd(are, bv, t));
                _mm512_storeu_pd(dp(orow + j), acc);
            }
            const Complex aik = arow[kk];
            for (; j < nt; ++j)
                orow[j] += aik * brow[j];
        }
    }
}

#undef QPULSE_AVX512

} // namespace kernels
} // namespace qpulse

#endif // x86
