#include "linalg/gates.h"

#include <cmath>

#include "common/constants.h"
#include "linalg/eigen.h"

namespace qpulse {
namespace gates {

Matrix
i2()
{
    return Matrix::identity(2);
}

Matrix
x()
{
    return Matrix{{0, 1}, {1, 0}};
}

Matrix
y()
{
    return Matrix{{0, Complex{0, -1}}, {Complex{0, 1}, 0}};
}

Matrix
z()
{
    return Matrix{{1, 0}, {0, -1}};
}

Matrix
h()
{
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    return Matrix{{inv_sqrt2, inv_sqrt2}, {inv_sqrt2, -inv_sqrt2}};
}

Matrix
s()
{
    return Matrix{{1, 0}, {0, Complex{0, 1}}};
}

Matrix
sdg()
{
    return Matrix{{1, 0}, {0, Complex{0, -1}}};
}

Matrix
t()
{
    return Matrix{{1, 0}, {0, std::exp(Complex{0, kPi / 4})}};
}

Matrix
tdg()
{
    return Matrix{{1, 0}, {0, std::exp(Complex{0, -kPi / 4})}};
}

Matrix
rx(double theta)
{
    const double c = std::cos(theta / 2);
    const double sn = std::sin(theta / 2);
    return Matrix{{c, Complex{0, -sn}}, {Complex{0, -sn}, c}};
}

Matrix
ry(double theta)
{
    const double c = std::cos(theta / 2);
    const double sn = std::sin(theta / 2);
    return Matrix{{c, -sn}, {sn, c}};
}

Matrix
rz(double theta)
{
    return Matrix{{std::exp(Complex{0, -theta / 2}), 0},
                  {0, std::exp(Complex{0, theta / 2})}};
}

Matrix
u1(double lambda)
{
    return Matrix{{1, 0}, {0, std::exp(Complex{0, lambda})}};
}

Matrix
u3(double theta, double phi, double lambda)
{
    const double c = std::cos(theta / 2);
    const double sn = std::sin(theta / 2);
    return Matrix{
        {c, -std::exp(Complex{0, lambda}) * sn},
        {std::exp(Complex{0, phi}) * sn,
         std::exp(Complex{0, phi + lambda}) * c}};
}

Matrix
cnot()
{
    return Matrix{{1, 0, 0, 0},
                  {0, 1, 0, 0},
                  {0, 0, 0, 1},
                  {0, 0, 1, 0}};
}

Matrix
cz()
{
    return Matrix{{1, 0, 0, 0},
                  {0, 1, 0, 0},
                  {0, 0, 1, 0},
                  {0, 0, 0, -1}};
}

Matrix
swap()
{
    return Matrix{{1, 0, 0, 0},
                  {0, 0, 1, 0},
                  {0, 1, 0, 0},
                  {0, 0, 0, 1}};
}

Matrix
openCnot()
{
    return Matrix{{0, 1, 0, 0},
                  {1, 0, 0, 0},
                  {0, 0, 1, 0},
                  {0, 0, 0, 1}};
}

Matrix
cr(double theta)
{
    // exp(-i theta/2 Z (x) X): block-diagonal Rx(+-theta) on the target.
    const Matrix rx_pos = rx(theta);
    const Matrix rx_neg = rx(-theta);
    Matrix result(4, 4);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j) {
            result(i, j) = rx_pos(i, j);
            result(2 + i, 2 + j) = rx_neg(i, j);
        }
    return result;
}

Matrix
xxPlusYY(double theta)
{
    const double c = std::cos(theta / 2);
    const Complex ms{0.0, -std::sin(theta / 2)};
    return Matrix{{1, 0, 0, 0},
                  {0, c, ms, 0},
                  {0, ms, c, 0},
                  {0, 0, 0, 1}};
}

Matrix
iswap()
{
    return Matrix{{1, 0, 0, 0},
                  {0, 0, Complex{0, 1}, 0},
                  {0, Complex{0, 1}, 0, 0},
                  {0, 0, 0, 1}};
}

Matrix
sqrtIswap()
{
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    return Matrix{{1, 0, 0, 0},
                  {0, inv_sqrt2, Complex{0, inv_sqrt2}, 0},
                  {0, Complex{0, inv_sqrt2}, inv_sqrt2, 0},
                  {0, 0, 0, 1}};
}

Matrix
bswap()
{
    // Two-photon |00> <-> |11> swap (Poletto et al. 2012); the inner
    // subspace is untouched.
    return Matrix{{0, 0, 0, Complex{0, 1}},
                  {0, 1, 0, 0},
                  {0, 0, 1, 0},
                  {Complex{0, 1}, 0, 0, 0}};
}

Matrix
map()
{
    // Microwave-activated conditional phase (Chow et al. 2013):
    // locally equivalent to exp(-i pi/4 ZZ), i.e. a CZ-class gate.
    return zz(kPi / 2);
}

Matrix
zz(double theta)
{
    const Complex minus = std::exp(Complex{0, -theta / 2});
    const Complex plus = std::exp(Complex{0, theta / 2});
    return Matrix::diagonal({minus, plus, plus, minus});
}

Matrix
fsim(double theta, double phi)
{
    const double c = std::cos(theta);
    const Complex ms{0.0, -std::sin(theta)};
    return Matrix{{1, 0, 0, 0},
                  {0, c, ms, 0},
                  {0, ms, c, 0},
                  {0, 0, 0, std::exp(Complex{0, -phi})}};
}

Matrix
fermionicSimulation()
{
    // The Table 2 fermionic-simulation primitive: full iSWAP-style swap
    // of |01>/|10> plus a pi phase on |11> (Kivlichan et al. convention).
    return Matrix{{1, 0, 0, 0},
                  {0, 0, Complex{0, -1}, 0},
                  {0, Complex{0, -1}, 0, 0},
                  {0, 0, 0, -1}};
}

Matrix
embed1q(const Matrix &gate, std::size_t wire, std::size_t n_qubits)
{
    qpulseRequire(gate.rows() == 2 && gate.cols() == 2,
                  "embed1q requires a 2x2 gate");
    qpulseRequire(wire < n_qubits, "embed1q wire out of range");
    std::vector<Matrix> factors;
    factors.reserve(n_qubits);
    for (std::size_t q = 0; q < n_qubits; ++q)
        factors.push_back(q == wire ? gate : Matrix::identity(2));
    return kronAll(factors);
}

Matrix
embed2q(const Matrix &gate, std::size_t wire_a, std::size_t wire_b,
        std::size_t n_qubits)
{
    qpulseRequire(gate.rows() == 4 && gate.cols() == 4,
                  "embed2q requires a 4x4 gate");
    qpulseRequire(wire_a < n_qubits && wire_b < n_qubits &&
                      wire_a != wire_b,
                  "embed2q wires invalid");

    const std::size_t dim = std::size_t{1} << n_qubits;
    Matrix result(dim, dim);
    const std::size_t shift_a = n_qubits - 1 - wire_a;
    const std::size_t shift_b = n_qubits - 1 - wire_b;

    for (std::size_t col = 0; col < dim; ++col) {
        const std::size_t a_bit = (col >> shift_a) & 1;
        const std::size_t b_bit = (col >> shift_b) & 1;
        const std::size_t gate_col = (a_bit << 1) | b_bit;
        const std::size_t base =
            col & ~((std::size_t{1} << shift_a) | (std::size_t{1} << shift_b));
        for (std::size_t gate_row = 0; gate_row < 4; ++gate_row) {
            const Complex amp = gate(gate_row, gate_col);
            if (amp == Complex{0.0, 0.0})
                continue;
            const std::size_t row = base |
                (((gate_row >> 1) & 1) << shift_a) |
                ((gate_row & 1) << shift_b);
            result(row, col) += amp;
        }
    }
    return result;
}

} // namespace gates

double
unitaryOverlap(const Matrix &a, const Matrix &b)
{
    qpulseRequire(a.rows() == b.rows() && a.cols() == b.cols(),
                  "unitaryOverlap shape mismatch");
    return std::abs((a.adjoint() * b).trace()) /
           static_cast<double>(a.rows());
}

double
averageGateFidelity(const Matrix &a, const Matrix &b)
{
    const double d = static_cast<double>(a.rows());
    const double overlap = unitaryOverlap(a, b);
    const double process = overlap * overlap;
    return (d * process + 1.0) / (d + 1.0);
}

double
stateFidelity(const Vector &a, const Vector &b)
{
    return std::norm(a.dot(b));
}

} // namespace qpulse
