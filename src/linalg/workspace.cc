#include "linalg/workspace.h"

namespace qpulse {

Matrix &
Workspace::matrix(std::size_t slot, std::size_t rows, std::size_t cols)
{
    if (slot >= matrices_.size())
        matrices_.resize(slot + 1);
    Matrix &m = matrices_[slot];
    m.resize(rows, cols);
    return m;
}

Vector &
Workspace::vector(std::size_t slot, std::size_t n)
{
    if (slot >= vectors_.size())
        vectors_.resize(slot + 1);
    Vector &v = vectors_[slot];
    v.resize(n);
    return v;
}

void
Workspace::clear()
{
    matrices_.clear();
    vectors_.clear();
}

Workspace &
tlsWorkspace()
{
    thread_local Workspace ws;
    return ws;
}

} // namespace qpulse
