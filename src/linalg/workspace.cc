#include "linalg/workspace.h"

namespace qpulse {

Matrix &
Workspace::matrix(std::size_t slot, std::size_t rows, std::size_t cols)
{
    if (slot >= matrices_.size())
        matrices_.resize(slot + 1);
    Matrix &m = matrices_[slot];
    m.resize(rows, cols);
    return m;
}

Vector &
Workspace::vector(std::size_t slot, std::size_t n)
{
    if (slot >= vectors_.size())
        vectors_.resize(slot + 1);
    Vector &v = vectors_[slot];
    v.resize(n);
    return v;
}

StatePanel &
Workspace::statePanel(std::size_t slot, std::size_t dim,
                      std::size_t width)
{
    if (slot >= state_panels_.size())
        state_panels_.resize(slot + 1);
    StatePanel &p = state_panels_[slot];
    p.resize(dim, width);
    return p;
}

DensityPanel &
Workspace::densityPanel(std::size_t slot, std::size_t dim,
                        std::size_t width)
{
    if (slot >= density_panels_.size())
        density_panels_.resize(slot + 1);
    DensityPanel &p = density_panels_[slot];
    p.resize(dim, width);
    return p;
}

void
Workspace::clear()
{
    matrices_.clear();
    vectors_.clear();
    state_panels_.clear();
    density_panels_.clear();
}

Workspace &
tlsWorkspace()
{
    thread_local Workspace ws;
    return ws;
}

} // namespace qpulse
