/**
 * @file
 * Eigendecomposition and matrix functions for small complex matrices.
 *
 * The workhorse is a cyclic Jacobi eigensolver for complex Hermitian
 * matrices, which is robust and plenty fast for the <= 64-dimensional
 * matrices that appear in qpulse. Matrix exponentials of Hermitian
 * generators (Hamiltonians) go through the eigendecomposition; general
 * matrix exponentials use scaling-and-squaring with a Taylor kernel.
 */
#ifndef QPULSE_LINALG_EIGEN_H
#define QPULSE_LINALG_EIGEN_H

#include <vector>

#include "linalg/matrix.h"

namespace qpulse {

/** Result of a Hermitian eigendecomposition: A = V diag(values) V^dag. */
struct EigenSystem
{
    /** Real eigenvalues in ascending order. */
    std::vector<double> values;
    /** Unitary matrix whose columns are the matching eigenvectors. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a complex Hermitian matrix via cyclic Jacobi.
 *
 * @param a   Hermitian matrix (checked to tolerance).
 * @param tol Off-diagonal convergence threshold relative to the norm.
 */
EigenSystem eigHermitian(const Matrix &a, double tol = 1e-13);

/**
 * exp(-i * H * t) for Hermitian H, via eigendecomposition.
 *
 * This is the propagator of a time-independent Hamiltonian; it is
 * exactly unitary up to roundoff.
 */
Matrix expMinusIHt(const Matrix &h, double t);

/** exp(i * scale * H) for Hermitian H (scale real). */
Matrix expIH(const Matrix &h, double scale);

/** General matrix exponential via scaling-and-squaring Taylor series. */
Matrix expm(const Matrix &a);

/**
 * Solve the linear system a * x = b with partial-pivoting Gaussian
 * elimination. Used by the Levenberg-Marquardt fitter and measurement
 * error mitigation.
 */
std::vector<double> solveLinearReal(std::vector<std::vector<double>> a,
                                    std::vector<double> b);

} // namespace qpulse

#endif // QPULSE_LINALG_EIGEN_H
