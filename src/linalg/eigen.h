/**
 * @file
 * Eigendecomposition and matrix functions for small complex matrices.
 *
 * The workhorse is a cyclic Jacobi eigensolver for complex Hermitian
 * matrices, which is robust and plenty fast for the <= 64-dimensional
 * matrices that appear in qpulse. Matrix exponentials of Hermitian
 * generators (Hamiltonians) go through the eigendecomposition; general
 * matrix exponentials use scaling-and-squaring with a Taylor kernel.
 */
#ifndef QPULSE_LINALG_EIGEN_H
#define QPULSE_LINALG_EIGEN_H

#include <limits>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/workspace.h"

namespace qpulse {

/**
 * Convergence tolerance pinning a Jacobi solve at the round-off floor
 * (a few eps above the best the iteration can reach, so it still
 * terminates in finite sweeps). Callers that compose many solve
 * results — the pulse simulator multiplies ~10^3 per-sample
 * propagators per schedule — should converge each solve to this floor
 * rather than the default tolerance: per-solve slack accumulates
 * linearly across the product, so a 1e-13 residual per step is a
 * ~1e-10 error budget over a schedule while the floor keeps the total
 * near 1e-12. Costs about one extra sweep versus the default (Jacobi
 * converges quadratically near the solution).
 */
inline constexpr double kEigFloorTol =
    8.0 * std::numeric_limits<double>::epsilon();

/** Result of a Hermitian eigendecomposition: A = V diag(values) V^dag. */
struct EigenSystem
{
    /** Real eigenvalues in ascending order. */
    std::vector<double> values;
    /** Unitary matrix whose columns are the matching eigenvectors. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a complex Hermitian matrix via cyclic Jacobi.
 *
 * @param a   Hermitian matrix (checked to tolerance).
 * @param tol Off-diagonal convergence threshold relative to the norm.
 */
EigenSystem eigHermitian(const Matrix &a, double tol = 1e-13);

/**
 * Workspace-backed Hermitian eigendecomposition with optional warm
 * start — the allocation-free core behind eigHermitian and the
 * simulator's per-sample propagator kernel.
 *
 * When `seed` is non-null it must be (approximately) unitary with
 * columns near the eigenvectors of `a` — typically the previous AWG
 * sample's eigenvectors, which differ by O(dt) in drive amplitude. The
 * solver first re-unitarizes the seed with one Newton polar iteration
 * (self-seeded chains would otherwise compound their departure from
 * unitarity across hundreds of steps), then iterates on
 * seed^dagger a seed (nearly diagonal already) with the accumulator
 * initialized to the polished seed, so convergence takes a few sweeps
 * instead of a cold start's ~7. Seeded solves converge to the
 * round-off floor rather than `tol`, because any per-step slack
 * accumulates linearly when propagators are composed over a schedule.
 *
 * With sortAscending=false eigenpairs keep the order the iteration
 * produced (for a seeded call: the seed's column order), which is what
 * warm-start callers want — any function of the full decomposition,
 * e.g. V f(diag) V^dagger, is permutation-invariant — and it keeps the
 * call heap-silent after workspace warm-up. Sorting allocates.
 *
 * Hermiticity of `a` is the caller's contract (not re-checked here).
 * Consumes workspace matrix slots 0-3. Exports sweep counts through
 * the sim.eig.* counters (docs/OBSERVABILITY.md). Returns the number
 * of Jacobi sweeps performed.
 *
 * @returns number of sweeps (0 when `a` already met the tolerance).
 */
int eigHermitianInPlace(const Matrix &a, const Matrix *seed,
                        std::vector<double> &values, Matrix &vectors,
                        Workspace &ws, bool sortAscending = true,
                        double tol = 1e-13);

/**
 * exp(-i * H * t) for Hermitian H, via eigendecomposition.
 *
 * This is the propagator of a time-independent Hamiltonian; it is
 * exactly unitary up to roundoff. Callers composing long propagator
 * products pass kEigFloorTol so the per-factor residual cannot
 * accumulate (see kEigFloorTol).
 */
Matrix expMinusIHt(const Matrix &h, double t, double tol = 1e-13);

/** exp(i * scale * H) for Hermitian H (scale real). */
Matrix expIH(const Matrix &h, double scale);

/**
 * General matrix exponential via scaling-and-squaring Taylor series.
 *
 * The Taylor loop stops early once the current term is negligible
 * relative to the accumulated sum: with the 1-norm of the scaled
 * matrix at most 1/2, the neglected tail after term T_k is bounded by
 * ||T_k|| * sum_{j>=1} 2^-j = ||T_k||, so truncating when
 * ||T_k|| <= eps * ||result|| keeps the relative error of the scaled
 * exponential at ~eps (pinned against the Hermitian eigensolver path
 * in tests/test_linalg.cc).
 */
Matrix expm(const Matrix &a);

/**
 * Solve the linear system a * x = b with partial-pivoting Gaussian
 * elimination. Used by the Levenberg-Marquardt fitter and measurement
 * error mitigation.
 */
std::vector<double> solveLinearReal(std::vector<std::vector<double>> a,
                                    std::vector<double> b);

} // namespace qpulse

#endif // QPULSE_LINALG_EIGEN_H
