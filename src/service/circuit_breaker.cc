#include "service/circuit_breaker.h"

#include "common/status.h"

namespace qpulse {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:   return "closed";
      case BreakerState::Open:     return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    return "unknown";
}

Status
validateBreakerPolicy(const CircuitBreakerPolicy &policy)
{
    const auto invalid = [](const std::string &detail) {
        return Status::error(ErrorCode::InvalidArgument,
                             "CircuitBreakerPolicy: " + detail);
    };
    if (policy.window < 1)
        return invalid("window must be >= 1, got " +
                       std::to_string(policy.window));
    if (policy.minSamples < 1)
        return invalid("minSamples must be >= 1, got " +
                       std::to_string(policy.minSamples));
    if (policy.minSamples > policy.window)
        return invalid(
            "minSamples (" + std::to_string(policy.minSamples) +
            ") exceeds window (" + std::to_string(policy.window) +
            "): the failure rate would never be evaluated and the "
            "breaker could never open");
    if (!(policy.openFailureRate > 0.0))
        return invalid("openFailureRate must be > 0 (got " +
                       std::to_string(policy.openFailureRate) +
                       "): the breaker would trip on any sample");
    if (policy.openFailureRate > 1.0)
        return invalid("openFailureRate must be <= 1 (got " +
                       std::to_string(policy.openFailureRate) +
                       "): the rate can never exceed 1, so the "
                       "breaker could never open");
    if (policy.cooldownDenials < 0)
        return invalid("cooldownDenials must be >= 0, got " +
                       std::to_string(policy.cooldownDenials));
    if (policy.halfOpenSuccesses < 1)
        return invalid("halfOpenSuccesses must be >= 1 (got " +
                       std::to_string(policy.halfOpenSuccesses) +
                       "): an Open breaker could never close again");
    return Status::okStatus();
}

std::string
breakerDenialMessage(const std::string &backendName,
                     const CircuitBreaker &breaker)
{
    std::string message = "backend '" + backendName +
                          "' unavailable: circuit breaker " +
                          breakerStateName(breaker.state());
    if (breaker.state() == BreakerState::Open)
        message += " (" +
                   std::to_string(breaker.cooldownRemaining()) +
                   " more denied jobs until the half-open probe)";
    message += "; failing fast";
    return message;
}

CircuitBreaker::CircuitBreaker(CircuitBreakerPolicy policy)
    : policy_(policy)
{
    throwIfError(validateBreakerPolicy(policy_));
}

bool
CircuitBreaker::allow()
{
    if (state_ != BreakerState::Open)
        return true;
    if (cooldownSpent_ < policy_.cooldownDenials) {
        ++cooldownSpent_;
        ++denials_;
        return false;
    }
    // Cooldown spent: this call is the Half-Open probe.
    state_ = BreakerState::HalfOpen;
    probeStreak_ = 0;
    return true;
}

void
CircuitBreaker::recordSuccess()
{
    if (state_ == BreakerState::HalfOpen) {
        if (++probeStreak_ >= policy_.halfOpenSuccesses) {
            state_ = BreakerState::Closed;
            window_.clear();
        }
        return;
    }
    record(false);
}

void
CircuitBreaker::recordFailure()
{
    if (state_ == BreakerState::HalfOpen) {
        // A failed probe re-opens immediately: the backend is still
        // unhealthy and a fresh cooldown starts.
        state_ = BreakerState::Open;
        cooldownSpent_ = 0;
        window_.clear();
        return;
    }
    record(true);
}

void
CircuitBreaker::record(bool failure)
{
    if (state_ == BreakerState::Open)
        return; // Shouldn't happen (Open jobs never run); be safe.
    window_.push_back(failure);
    while (static_cast<int>(window_.size()) > policy_.window)
        window_.pop_front();
    if (static_cast<int>(window_.size()) < policy_.minSamples)
        return;
    int failures = 0;
    for (bool f : window_)
        failures += f ? 1 : 0;
    const double rate = static_cast<double>(failures) /
                        static_cast<double>(window_.size());
    if (rate >= policy_.openFailureRate) {
        state_ = BreakerState::Open;
        cooldownSpent_ = 0;
        window_.clear();
        ++trips_;
    }
}

} // namespace qpulse
