#include "service/circuit_breaker.h"

#include "common/status.h"

namespace qpulse {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:   return "closed";
      case BreakerState::Open:     return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerPolicy policy)
    : policy_(policy)
{
    qpulseRequire(policy_.window >= 1,
                  "CircuitBreakerPolicy needs window >= 1");
    qpulseRequire(policy_.minSamples >= 1,
                  "CircuitBreakerPolicy needs minSamples >= 1");
    qpulseRequire(policy_.cooldownDenials >= 0,
                  "CircuitBreakerPolicy needs cooldownDenials >= 0");
    qpulseRequire(policy_.halfOpenSuccesses >= 1,
                  "CircuitBreakerPolicy needs halfOpenSuccesses >= 1");
}

bool
CircuitBreaker::allow()
{
    if (state_ != BreakerState::Open)
        return true;
    if (cooldownSpent_ < policy_.cooldownDenials) {
        ++cooldownSpent_;
        ++denials_;
        return false;
    }
    // Cooldown spent: this call is the Half-Open probe.
    state_ = BreakerState::HalfOpen;
    probeStreak_ = 0;
    return true;
}

void
CircuitBreaker::recordSuccess()
{
    if (state_ == BreakerState::HalfOpen) {
        if (++probeStreak_ >= policy_.halfOpenSuccesses) {
            state_ = BreakerState::Closed;
            window_.clear();
        }
        return;
    }
    record(false);
}

void
CircuitBreaker::recordFailure()
{
    if (state_ == BreakerState::HalfOpen) {
        // A failed probe re-opens immediately: the backend is still
        // unhealthy and a fresh cooldown starts.
        state_ = BreakerState::Open;
        cooldownSpent_ = 0;
        window_.clear();
        return;
    }
    record(true);
}

void
CircuitBreaker::record(bool failure)
{
    if (state_ == BreakerState::Open)
        return; // Shouldn't happen (Open jobs never run); be safe.
    window_.push_back(failure);
    while (static_cast<int>(window_.size()) > policy_.window)
        window_.pop_front();
    if (static_cast<int>(window_.size()) < policy_.minSamples)
        return;
    int failures = 0;
    for (bool f : window_)
        failures += f ? 1 : 0;
    const double rate = static_cast<double>(failures) /
                        static_cast<double>(window_.size());
    if (rate >= policy_.openFailureRate) {
        state_ = BreakerState::Open;
        cooldownSpent_ = 0;
        window_.clear();
        ++trips_;
    }
}

} // namespace qpulse
