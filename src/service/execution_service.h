/**
 * @file
 * ExecutionService: the admission-controlled job layer over the
 * resilient execution stack.
 *
 * A production pulse backend is a shared resource: clients submit jobs
 * faster than the device can run them, some jobs matter more than
 * others, and a wedged device must not take the whole queue down with
 * it. This service provides the missing layer:
 *
 *   submit(JobRequest) --> bounded queue (admission control)
 *        |                   full? shed the lowest-priority job
 *        v                   (resource-exhausted) or reject the
 *   drain()                  newcomer when nothing outranks it
 *        |
 *        v per job, priority order
 *   CancelToken/Deadline gate --> cancelled / deadline-exceeded
 *        |
 *        v
 *   CircuitBreaker::allow() --> unavailable (fast fail, no retries)
 *        |
 *        v
 *   ResilientExecutor::run --> validate / inject / retry /
 *        |                     recalibrate / degrade, with the token
 *        v                     and deadline threaded down to the shot
 *   JobOutcome                 loop and the simulator evolve loops
 *
 * Deadlines expire to a structured `deadline-exceeded` Status carrying
 * the *partial result* — the shots completed before expiry — rather
 * than discarding finished work. Under QPULSE_VIRTUAL_TIME=1 deadlines
 * built with Deadline::afterMsOrBudget become simulated-sample budgets
 * charged deterministically at shot-batch granularity, so every
 * counter and partial result is bit-identical across QPULSE_THREADS.
 *
 * The service is sequential by design: submit()/drain() run on one
 * thread (the ResilientExecutor beneath is sequential state); the
 * parallelism lives inside each job's shot loop. Telemetry: the
 * service.* counters/gauges/spans registered in docs/OBSERVABILITY.md.
 */
#ifndef QPULSE_SERVICE_EXECUTION_SERVICE_H
#define QPULSE_SERVICE_EXECUTION_SERVICE_H

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "device/resilient_executor.h"
#include "service/circuit_breaker.h"

namespace qpulse {

/** Service-wide policy knobs. */
struct ServicePolicy
{
    /**
     * Bounded queue capacity. 0 = read QPULSE_SERVICE_QUEUE (default
     * 32, clamped to [1, 4096]).
     */
    std::size_t queueCapacity = 0;

    /** Policies forwarded to the per-service ResilientExecutor. */
    RetryPolicy retry;
    DriftWatchdogPolicy watchdog;
    DegradePolicy degrade;

    /** Per-backend circuit-breaker policy. */
    CircuitBreakerPolicy breaker;

    /** Thread cap forwarded to every job's shot loop (0 = pool). */
    std::size_t maxThreads = 0;
};

/** One unit of work a client submits. */
struct JobRequest
{
    Schedule schedule; ///< Primary schedule to execute.
    /** Standard-flow decomposition to degrade to (optional). */
    std::optional<Schedule> fallback;
    /** Stale-tracking identity (ResilientRequest::key). */
    std::string key;
    /** Breaker scope: jobs against one backend share one breaker. */
    std::string backendName = "default";
    long shots = 256;
    std::uint64_t seed = 1;
    /** Higher = more important. Ties broken by submission order. */
    int priority = 0;
    /** Job budget; default unlimited. See common/cancellation.h. */
    Deadline deadline;
    /** Cooperative cancel; default inert. */
    CancelToken token;
    /** Baseline proxy override (ResilientRequest::baselineProxy). */
    double baselineProxy = -1.0;
};

/** Terminal record of one submitted job. */
struct JobOutcome
{
    std::uint64_t id = 0; ///< Submission order (0 = first submit).
    std::string key;
    int priority = 0;
    /**
     * Terminal status: Ok, or the structured reason — cancelled,
     * deadline-exceeded (partial result in execution.result),
     * resource-exhausted (shed), unavailable (breaker fast-fail),
     * or the executor's terminal error.
     */
    Status status;
    /** Full executor outcome; meaningful only when executed. */
    ResilientOutcome execution;
    bool executed = false;       ///< Reached the executor.
    bool shed = false;           ///< Evicted by admission control.
    bool breakerFastFail = false; ///< Denied by an Open breaker.
};

/**
 * Deterministic service counters, mirrored into the service.*
 * telemetry registry. Every field counts admission/terminal decisions
 * — work, never scheduling — so values are thread-count invariant
 * (under virtual-time deadlines; wall-clock deadlines are inherently
 * timing-dependent).
 */
struct ServiceStats
{
    long submitted = 0;
    long admitted = 0;
    long rejected = 0; ///< Newcomer refused at admission.
    long shed = 0;     ///< Queued job evicted for a newcomer.
    long cancelled = 0;
    long deadlineExceeded = 0;
    long breakerFastFails = 0;
    long completed = 0; ///< Terminal Ok.
    long failed = 0;    ///< Terminal non-Ok other than the above.
};

class ExecutionService
{
  public:
    /**
     * The service owns a simulator copy and a ResilientExecutor over
     * `backend`. Sequential use only (see file comment).
     */
    ExecutionService(std::shared_ptr<const PulseBackend> backend,
                     PulseSimulator sim, ServicePolicy policy = {});

    /** Attach the fault source (forwarded to the executor). */
    void setFaultInjector(std::shared_ptr<FaultInjector> injector)
    {
        executor_.setFaultInjector(std::move(injector));
    }

    /** Drift-watchdog recalibration hook (forwarded). */
    void setRecalibrationHook(std::function<void()> hook)
    {
        executor_.setRecalibrationHook(std::move(hook));
    }

    /**
     * Admission control. Queue has room: admit, return Ok. Queue full:
     * when the newcomer strictly outranks the lowest-priority queued
     * job, that job is shed (most-recently-submitted among ties) and
     * recorded as a resource-exhausted JobOutcome; otherwise the
     * newcomer is rejected with resource-exhausted. A job whose token
     * or deadline already fired is refused up front with its reason.
     */
    Status submit(JobRequest request);

    /**
     * Execute every queued job, highest priority first (submission
     * order among equals), and return all outcomes — executed, shed
     * and fast-failed — sorted by submission id. Clears the queue.
     */
    std::vector<JobOutcome> drain();

    std::size_t queueDepth() const { return queue_.size(); }
    std::size_t queueCapacity() const { return capacity_; }

    const ServiceStats &stats() const { return stats_; }

    /** The breaker gating `backendName` (created on first use). */
    CircuitBreaker &breaker(const std::string &backendName);

    ResilientExecutor &executor() { return executor_; }

  private:
    struct PendingJob
    {
        std::uint64_t id = 0;
        JobRequest request;
    };

    JobOutcome executeJob(PendingJob &job);
    void noteTerminal(const Status &status, bool executed);

    std::shared_ptr<const PulseBackend> backend_;
    PulseSimulator sim_;
    ServicePolicy policy_;
    std::size_t capacity_ = 0;
    ResilientExecutor executor_;
    std::deque<PendingJob> queue_;
    std::vector<JobOutcome> shedOutcomes_; ///< Victims since last drain.
    std::map<std::string, CircuitBreaker> breakers_;
    ServiceStats stats_;
    std::uint64_t nextId_ = 0;
};

} // namespace qpulse

#endif // QPULSE_SERVICE_EXECUTION_SERVICE_H
