/**
 * @file
 * ExecutionService: the admission-controlled job layer over the
 * resilient execution stack.
 *
 * A production pulse backend is a shared resource: clients submit jobs
 * faster than the device can run them, some jobs matter more than
 * others, and a wedged device must not take the whole queue down with
 * it. This service provides the missing layer:
 *
 *   submit(JobRequest) --> bounded queue (admission control)
 *        |                   full? shed the lowest-priority job
 *        v                   (resource-exhausted) or reject the
 *   drain()                  newcomer when nothing outranks it
 *        |
 *        v per job, priority order
 *   CancelToken/Deadline gate --> cancelled / deadline-exceeded
 *        |
 *        v
 *   CircuitBreaker::allow() --> unavailable (fast fail, no retries)
 *        |
 *        v
 *   ResilientExecutor::run --> validate / inject / retry /
 *        |                     recalibrate / degrade, with the token
 *        v                     and deadline threaded down to the shot
 *   JobOutcome                 loop and the simulator evolve loops
 *
 * Deadlines expire to a structured `deadline-exceeded` Status carrying
 * the *partial result* — the shots completed before expiry — rather
 * than discarding finished work. Under QPULSE_VIRTUAL_TIME=1 deadlines
 * built with Deadline::afterMsOrBudget become simulated-sample budgets
 * charged deterministically at shot-batch granularity, so every
 * counter and partial result is bit-identical across QPULSE_THREADS.
 *
 * The service is sequential by design: submit()/drain() run on one
 * thread (the ResilientExecutor beneath is sequential state); the
 * parallelism lives inside each job's shot loop. Telemetry: the
 * service.* counters/gauges/spans registered in docs/OBSERVABILITY.md.
 *
 * **Fleet mode.** Constructed over a BackendPool instead of a single
 * backend, the service becomes a fleet scheduler (docs/ROBUSTNESS.md
 * section 8): jobs are admitted per tenant against a quota, dequeued
 * weighted-fair across tenants, routed to the healthiest active
 * backend (BackendPool::routingOrder), and failed over to the next
 * candidate — up to FleetPolicy::failoverBudget distinct backends —
 * when a hop fails with a backend-health code. Every hop is recorded
 * as a FailoverHop breadcrumb on the JobOutcome, and the terminal
 * Status message carries the full path. A backend whose breaker trips
 * is quarantined and only rejoins routing after deterministic
 * half-open health probes succeed; pinned jobs (backendName other
 * than "default") fail fast against a non-active backend with a
 * Status naming the backend and its breaker state. All of it replays
 * bit-identically across QPULSE_THREADS under QPULSE_VIRTUAL_TIME=1.
 */
#ifndef QPULSE_SERVICE_EXECUTION_SERVICE_H
#define QPULSE_SERVICE_EXECUTION_SERVICE_H

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "compile/compiler.h"
#include "device/resilient_executor.h"
#include "service/backend_pool.h"
#include "service/circuit_breaker.h"

namespace qpulse {

class CompileCache;

/** Per-tenant admission quota and fair-share weight (fleet mode). */
struct TenantQuota
{
    /** Weighted-fair dequeue share; must be > 0. */
    double weight = 1.0;
    /** Max jobs a tenant may hold queued at once; 0 = uncapped. */
    std::size_t maxQueued = 0;
};

/** Fleet-scheduling policy (read only by pool-backed services). */
struct FleetPolicy
{
    /** Route failed jobs to the next-healthiest backend. */
    bool failoverEnabled = true;
    /** Max distinct backends one job may try (>= 1). */
    int failoverBudget = 3;
    /** Quota for tenants absent from `tenants`. */
    TenantQuota defaultQuota;
    /** Per-tenant overrides, keyed by tenant name. */
    std::map<std::string, TenantQuota> tenants;
};

/** Service-wide policy knobs. */
struct ServicePolicy
{
    /**
     * Bounded queue capacity. 0 = read QPULSE_SERVICE_QUEUE (default
     * 32, clamped to [1, 4096]).
     */
    std::size_t queueCapacity = 0;

    /** Policies forwarded to the per-service ResilientExecutor. */
    RetryPolicy retry;
    DriftWatchdogPolicy watchdog;
    DegradePolicy degrade;

    /** Per-backend circuit-breaker policy. */
    CircuitBreakerPolicy breaker;

    /** Thread cap forwarded to every job's shot loop (0 = pool). */
    std::size_t maxThreads = 0;

    /** Fleet scheduling knobs; ignored by single-backend services. */
    FleetPolicy fleet;

    /**
     * Persistent artifact store for the propagator disk tier (null:
     * resolved from QPULSE_CACHE_DIR at construction; still null
     * after that means persistence stays off and the service behaves
     * bit-identically to one without a store). Fleet-mode services
     * ignore this — the BackendPool owns the shared store there
     * (BackendPool::Policies::artifactStore).
     */
    std::shared_ptr<store::ArtifactStore> artifactStore;

    /** Compile mode for circuit-carrying jobs (single-backend mode;
     *  fleet members compile via BackendPool::Policies::compileMode). */
    CompileMode compileMode = CompileMode::Optimized;

    /**
     * Two-tier compile cache for circuit-carrying jobs (null: the
     * service builds one over its artifact store — the memory tier
     * always exists; the persistent tier only with a store). Pass a
     * shared instance to pool compile results across services.
     * Fleet-mode services ignore this — the BackendPool owns the
     * shared cache there (BackendPool::Policies::compileCache).
     */
    std::shared_ptr<CompileCache> compileCache;
};

/** One unit of work a client submits. */
struct JobRequest
{
    Schedule schedule; ///< Primary schedule to execute.
    /**
     * Assembly circuit to compile instead of a pre-built schedule.
     * When set, `schedule` is ignored: the service lowers the circuit
     * through its memoized compile cache at drain time — distinct
     * pending circuits compile concurrently on the shared ThreadPool,
     * duplicates coalesce to one compile (single-flight), and fleet
     * failover recompiles per hop through each member's compiler (a
     * shared calibration generation makes the hop compile a cache
     * hit). A compile whose validation fails terminates the job with
     * that structured Status before anything executes.
     */
    std::optional<QuantumCircuit> circuit;
    /** Standard-flow decomposition to degrade to (optional). */
    std::optional<Schedule> fallback;
    /** Stale-tracking identity (ResilientRequest::key). */
    std::string key;
    /**
     * Breaker scope: jobs against one backend share one breaker. In
     * fleet mode "default" means "route freely"; any other value pins
     * the job to that named pool member (no failover).
     */
    std::string backendName = "default";
    /** Submitting tenant: quota + weighted-fair lane (fleet mode). */
    std::string tenant = "default";
    long shots = 256;
    std::uint64_t seed = 1;
    /** Higher = more important. Ties broken by submission order. */
    int priority = 0;
    /** Job budget; default unlimited. See common/cancellation.h. */
    Deadline deadline;
    /** Cooperative cancel; default inert. */
    CancelToken token;
    /** Baseline proxy override (ResilientRequest::baselineProxy). */
    double baselineProxy = -1.0;
};

/** One hop of a fleet job's routing path (failover breadcrumb). */
struct FailoverHop
{
    std::string backend;            ///< Pool member tried.
    ErrorCode code = ErrorCode::Ok; ///< That hop's terminal code.
};

/** Terminal record of one submitted job. */
struct JobOutcome
{
    std::uint64_t id = 0; ///< Submission order (0 = first submit).
    std::string key;
    int priority = 0;
    /**
     * Terminal status: Ok, or the structured reason — cancelled,
     * deadline-exceeded (partial result in execution.result),
     * resource-exhausted (shed), unavailable (breaker fast-fail),
     * or the executor's terminal error.
     */
    Status status;
    /** Full executor outcome; meaningful only when executed. */
    ResilientOutcome execution;
    bool executed = false;       ///< Reached the executor.
    bool shed = false;           ///< Evicted by admission control.
    bool breakerFastFail = false; ///< Denied by an Open breaker.

    /** Backend that produced the terminal outcome ("" = none ran). */
    std::string backend;
    /** Submitting tenant (scheduling lane in fleet mode). */
    std::string tenant;
    /** Execution order within its drain; -1 = never dequeued (shed). */
    long drainSeq = -1;
    /** Fleet routing breadcrumbs, one entry per backend tried. */
    std::vector<FailoverHop> path;
};

/**
 * Deterministic service counters, mirrored into the service.*
 * telemetry registry. Every field counts admission/terminal decisions
 * — work, never scheduling — so values are thread-count invariant
 * (under virtual-time deadlines; wall-clock deadlines are inherently
 * timing-dependent).
 */
struct ServiceStats
{
    long submitted = 0;
    long admitted = 0;
    long rejected = 0; ///< Newcomer refused at admission.
    long shed = 0;     ///< Queued job evicted for a newcomer.
    long cancelled = 0;
    long deadlineExceeded = 0;
    long breakerFastFails = 0;
    long completed = 0; ///< Terminal Ok.
    long failed = 0;    ///< Terminal non-Ok other than the above.
    long failovers = 0; ///< Extra backends tried beyond the first.
    long tenantRejected = 0; ///< Admissions refused by tenant quota.
};

class ExecutionService
{
  public:
    /**
     * The service owns a simulator copy and a ResilientExecutor over
     * `backend`. Sequential use only (see file comment).
     * Throws StatusError on a degenerate policy (validateBreakerPolicy
     * and the fleet checks), so a service never starts with a breaker
     * or scheduler that silently cannot do its job.
     */
    ExecutionService(std::shared_ptr<const PulseBackend> backend,
                     PulseSimulator sim, ServicePolicy policy = {});

    /**
     * Fleet mode: the service schedules over a shared BackendPool —
     * health-aware routing, cross-backend failover, quarantine and
     * weighted-fair tenant dequeue (file comment). The pool is shared
     * so callers can administer it (drain/readmit, fault injectors)
     * alongside the service. Same policy validation as above.
     */
    ExecutionService(std::shared_ptr<BackendPool> pool,
                     ServicePolicy policy = {});

    /** True when this service schedules over a BackendPool. */
    bool fleetMode() const { return pool_ != nullptr; }

    /** The fleet (fleet mode only; fatals otherwise). */
    BackendPool &pool();

    /** Attach the fault source (single-backend mode only; fleet
     *  members get injectors via BackendPool::setFaultInjector). */
    void setFaultInjector(std::shared_ptr<FaultInjector> injector)
    {
        executor().setFaultInjector(std::move(injector));
    }

    /**
     * Drift-watchdog recalibration hook (single-backend mode). The
     * service keeps its own composite hook installed on the executor
     * — a recalibration first retires the persisted-propagator
     * generation (docs/PERSISTENCE.md), then runs this user hook.
     */
    void setRecalibrationHook(std::function<void()> hook)
    {
        executor(); // Fatals in fleet mode, as before.
        userRecalHook_ = std::move(hook);
    }

    /** This service's artifact store (null: persistence disabled;
     *  fleet mode: the pool's store). */
    std::shared_ptr<store::ArtifactStore> artifactStore() const;

    /**
     * The single-backend persistent propagator cache (null when
     * persistence is off or in fleet mode — fleet members keep
     * per-member caches inside the BackendPool).
     */
    const std::shared_ptr<store::PersistentPropagatorCache> &
    persistentCache() const
    {
        return persistCache_;
    }

    /**
     * The compile cache circuit-carrying jobs go through: this
     * service's own in single-backend mode, the pool's shared one in
     * fleet mode. Never null.
     */
    std::shared_ptr<CompileCache> compileCache() const;

    /** The single-backend compiler (fatals in fleet mode: each pool
     *  member owns its own — BackendPool::compiler). */
    PulseCompiler &compiler()
    {
        qpulseRequire(compiler_ != nullptr,
                      "ExecutionService::compiler: fleet-mode "
                      "services keep per-backend compilers inside "
                      "the BackendPool");
        return *compiler_;
    }

    /**
     * Push every queued propagator write-back to disk — this
     * service's cache, or every pool member's in fleet mode. drain()
     * already calls this at the end of each drain; call it directly
     * before a planned process exit.
     */
    Status flushPersistence();

    /**
     * Admission control. Queue has room: admit, return Ok. Queue full:
     * when the newcomer strictly outranks the lowest-priority queued
     * job, that job is shed (most-recently-submitted among ties) and
     * recorded as a resource-exhausted JobOutcome; otherwise the
     * newcomer is rejected with resource-exhausted. A job whose token
     * or deadline already fired is refused up front with its reason.
     */
    Status submit(JobRequest request);

    /**
     * Execute every queued job and return all outcomes — executed,
     * shed and fast-failed — sorted by submission id. Clears the
     * queue. Single-backend mode runs highest priority first
     * (submission order among equals). Fleet mode interleaves tenants
     * weighted-fair — each dequeue goes to the tenant with the
     * smallest virtual finish time (jobs served / weight), priority
     * order within the tenant — and pumps the quarantine probe loop
     * between jobs. JobOutcome::drainSeq records the actual execution
     * order for both modes.
     */
    std::vector<JobOutcome> drain();

    std::size_t queueDepth() const { return queue_.size(); }
    std::size_t queueCapacity() const { return capacity_; }

    const ServiceStats &stats() const { return stats_; }

    /** The breaker gating `backendName` (created on first use). */
    CircuitBreaker &breaker(const std::string &backendName);

    /** The single-backend executor (fatals in fleet mode: each pool
     *  member owns its own). */
    ResilientExecutor &executor()
    {
        qpulseRequire(executor_ != nullptr,
                      "ExecutionService::executor: fleet-mode "
                      "services keep per-backend executors inside "
                      "the BackendPool");
        return *executor_;
    }

    /** Effective quota for `tenant` (override or the default). */
    const TenantQuota &tenantQuota(const std::string &tenant) const;

    /** Jobs `tenant` currently holds in the queue. */
    std::size_t queuedForTenant(const std::string &tenant) const;

  private:
    struct PendingJob
    {
        std::uint64_t id = 0;
        JobRequest request;
    };

    JobOutcome executeJob(PendingJob &job);
    JobOutcome executeFleetJob(PendingJob &job);
    void noteTerminal(const Status &status, bool executed);
    /** Composite recalibration handler: retire the persisted
     *  generation, then run the user hook (single-backend mode). */
    void onRecalibration();
    /**
     * Drain-time warm-up: compile every distinct pending circuit
     * concurrently on the shared ThreadPool (deduped by CompileKey
     * first, so counters stay deterministic: one miss per distinct
     * key regardless of thread count). Compile errors are swallowed
     * here — the per-job compile in executeJob reports them with the
     * job's identity attached.
     */
    void precompileQueued(std::vector<PendingJob> &jobs);
    /**
     * Lower `circuit` through `compiler`'s cache into `out`. Non-Ok:
     * the compile threw (structured) or its validation failed; the
     * job must terminate without executing.
     */
    static Status compileCircuit(const PulseCompiler &compiler,
                                 const QuantumCircuit &circuit,
                                 Schedule &out);

    std::shared_ptr<const PulseBackend> backend_;
    std::optional<PulseSimulator> sim_;   ///< Single-backend mode.
    ServicePolicy policy_;
    std::size_t capacity_ = 0;
    std::unique_ptr<ResilientExecutor> executor_; ///< Single-backend.
    std::unique_ptr<PulseCompiler> compiler_;     ///< Single-backend.
    std::shared_ptr<CompileCache> compileCache_;  ///< Single-backend.
    std::shared_ptr<BackendPool> pool_;           ///< Fleet mode.
    std::shared_ptr<store::ArtifactStore> artifactStore_;
    std::shared_ptr<store::PersistentPropagatorCache> persistCache_;
    std::function<void()> userRecalHook_;
    std::uint64_t recalEpoch_ = 0; ///< Keys the persist generation.
    std::deque<PendingJob> queue_;
    std::vector<JobOutcome> shedOutcomes_; ///< Victims since last drain.
    std::map<std::string, CircuitBreaker> breakers_;
    ServiceStats stats_;
    std::uint64_t nextId_ = 0;
};

} // namespace qpulse

#endif // QPULSE_SERVICE_EXECUTION_SERVICE_H
