/**
 * @file
 * BackendPool: the fault-tolerant backend fleet under the execution
 * service.
 *
 * The paper's workflow assumes a cloud fleet of independently
 * calibrated devices whose calibrations drift and fail independently;
 * this pool models exactly that. Each member owns its calibration
 * snapshot (backend + simulator), its own ResilientExecutor, its own
 * CircuitBreaker, and an independent seed-derived FaultInjector
 * (FaultPlan::deriveForBackend), so one wedged or drifting device
 * never takes the fleet down. The pool supplies the fleet primitives
 * the scheduler composes:
 *
 *  - **health-aware routing**: routingOrder() ranks the active
 *    backends by a deterministic health score — breaker state,
 *    rolling failure rate over a sliding outcome window, and
 *    calibration freshness (jobs since the last recalibration);
 *  - **quarantine / recovery**: a backend whose breaker trips Open is
 *    quarantined (excluded from routing) and re-admitted *only* after
 *    deterministic half-open health-probe jobs succeed
 *    (pumpProbes()), never by an admin call;
 *  - **graceful drain / re-admit**: beginDrain() removes a backend
 *    from routing for recalibration; readmit() refreshes its
 *    calibration snapshot (fault-injector recalibrate, freshness and
 *    breaker reset, calibration version bump) and restores it.
 *
 * Determinism: every routing, quarantine and probe decision is a pure
 * function of the job outcome sequence — breaker cooldowns count
 * denied calls, health windows count recorded outcomes, probe seeds
 * derive from a probe counter — so a fleet run under
 * QPULSE_VIRTUAL_TIME=1 is bit-identical across QPULSE_THREADS.
 * Sequential use only, like the service that drives it. Telemetry:
 * the fleet.* counters/gauges/spans in docs/OBSERVABILITY.md.
 */
#ifndef QPULSE_SERVICE_BACKEND_POOL_H
#define QPULSE_SERVICE_BACKEND_POOL_H

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "compile/compiler.h"
#include "device/fault_injector.h"
#include "device/resilient_executor.h"
#include "service/circuit_breaker.h"

namespace qpulse {

class CompileCache;

namespace store {
class ArtifactStore;
class PersistentPropagatorCache;
} // namespace store

/** Administrative state of one fleet member. */
enum class BackendAdminState
{
    Active,      ///< Routable: takes scheduled jobs.
    Quarantined, ///< Breaker tripped; only probe jobs may run.
    Draining     ///< Admin-drained for recalibration; not routable.
};

/** Stable lower-case name ("active" / "quarantined" / "draining"). */
const char *backendAdminStateName(BackendAdminState state);

/** Knobs of the deterministic per-backend health score. */
struct HealthPolicy
{
    /** Sliding window of recorded per-job outcomes per backend. */
    int window = 16;
    /** Score penalty at a 100% windowed failure rate. */
    double failureWeight = 4.0;
    /** Score penalty at full calibration staleness. */
    double freshnessWeight = 0.5;
    /** Jobs since recalibration at which staleness saturates at 1. */
    double freshnessHorizonJobs = 256.0;
};

/** Half-open health-probe configuration. */
struct ProbePolicy
{
    /** Shots per probe job (kept small: probes are overhead). */
    long shots = 8;
    /** Base seed; each probe derives from (seed, probe ordinal). */
    std::uint64_t seed = 0x9120BE5Eull;
    /** Thread cap for probe shot loops (probes are tiny; default 1). */
    std::size_t maxThreads = 1;
};

/** Deterministic fleet-level counters (mirrored into fleet.*). */
struct FleetStats
{
    long jobs = 0;          ///< Jobs routed through runOn().
    long failures = 0;      ///< Health-relevant job failures recorded.
    long quarantines = 0;   ///< Active -> Quarantined transitions.
    long readmissions = 0;  ///< Quarantined -> Active via probes.
    long probes = 0;        ///< Half-open probe jobs run.
    long probeFailures = 0; ///< Probes that re-opened the breaker.
    long drains = 0;        ///< beginDrain() calls honoured.
    long drainReadmissions = 0; ///< readmit() calls honoured.
    long recalibrations = 0;    ///< Drift-watchdog recalibrations.
};

class BackendPool
{
  public:
    /** Policies shared by every member (per-member state is owned). */
    struct Policies
    {
        RetryPolicy retry;
        DriftWatchdogPolicy watchdog;
        DegradePolicy degrade;
        CircuitBreakerPolicy breaker;
        HealthPolicy health;
        ProbePolicy probe;
        /**
         * Persistent artifact store shared by every member (null:
         * resolved from QPULSE_CACHE_DIR at construction; still null
         * after that means persistence is off and behavior is
         * bit-identical to a store-less pool). Each member gets its
         * own PersistentPropagatorCache over this store, keyed by its
         * basis version and per-member generation epoch
         * (docs/PERSISTENCE.md).
         */
        std::shared_ptr<store::ArtifactStore> artifactStore;

        /** Compile mode every member's compiler lowers in. */
        CompileMode compileMode = CompileMode::Optimized;

        /**
         * Compile cache shared by every member's compiler (null: the
         * pool builds one over its artifact store — the memory tier
         * exists even store-less, so failover hops between members
         * sharing a calibration generation hit instead of re-running
         * the pass pipeline). Keys carry each member's calibration
         * generation, so distinct calibrations never cross-serve.
         */
        std::shared_ptr<CompileCache> compileCache;
    };

    /** Result of routing one job to one member. */
    struct PoolRun
    {
        bool ran = false; ///< False: the member's breaker denied it.
        ResilientOutcome outcome;
    };

    /** Throws StatusError on a degenerate breaker/health policy.
     *  (Two overloads rather than one defaulted argument: a `= {}`
     *  default would be parsed before Policies' member initializers
     *  are complete.) */
    BackendPool();
    explicit BackendPool(Policies policies);

    /**
     * Register a fleet member. Names must be unique and non-empty.
     * The probe schedule defaults to backend->probeSchedule(0); pass
     * one explicitly for multi-qubit members. Insertion order is the
     * routing tie-break order, so add backends deterministically.
     */
    void addBackend(std::string name,
                    std::shared_ptr<const PulseBackend> backend,
                    PulseSimulator sim);
    void addBackend(std::string name,
                    std::shared_ptr<const PulseBackend> backend,
                    PulseSimulator sim, Schedule probe);

    /** Attach (or clear, with null) a member's fault source. */
    void setFaultInjector(const std::string &name,
                          std::shared_ptr<FaultInjector> injector);

    std::size_t size() const { return entries_.size(); }
    bool has(const std::string &name) const;
    /** Member names in insertion order. */
    std::vector<std::string> names() const;

    BackendAdminState adminState(const std::string &name) const;
    const CircuitBreaker &breaker(const std::string &name) const;
    long calibrationVersion(const std::string &name) const;
    long jobsSinceCalibration(const std::string &name) const;

    /**
     * Deterministic health score of one member: breaker base (closed
     * 1.0, half-open 0.5) minus the windowed failure rate and the
     * calibration-staleness penalties. Quarantined/draining members
     * score 0 (they are excluded from routing anyway).
     */
    double healthScore(const std::string &name) const;

    /**
     * Active members, healthiest first (score descending, insertion
     * order among ties). This is the failover order: a denied or
     * failed job retries down this list.
     */
    std::vector<std::string> routingOrder() const;

    /**
     * Execute one job on the named member: breaker gate, resilient
     * run, breaker/health accounting, and the Active -> Quarantined
     * transition when the member's breaker trips. The caller (the
     * fleet scheduler) owns failover across members.
     */
    PoolRun runOn(const std::string &name,
                  const ResilientRequest &request,
                  const PulseShotOptions &opts);

    /**
     * Quarantine recovery pump: for each quarantined member (in
     * insertion order) spend one breaker-cooldown denial, or — once
     * the cooldown is over — run one deterministic half-open health
     * probe. Enough successful probes close the breaker and re-admit
     * the member; a failed probe re-opens it and restarts the
     * cooldown. The service calls this once per drained job, so
     * recovery time is counted in scheduled work, not wall time.
     */
    void pumpProbes();

    /**
     * Remove an Active member from routing for recalibration.
     * Quarantined members cannot be drained (their path back is the
     * probe loop); draining twice is an error.
     */
    Status beginDrain(const std::string &name);

    /**
     * Re-admit a Draining member after recalibration: clears any
     * active drift (FaultInjector::recalibrate), resets calibration
     * freshness and the rolling health window, bumps the calibration
     * version and installs a fresh breaker. Only valid from
     * Draining — a quarantined member is re-admitted exclusively by
     * successful health probes.
     */
    Status readmit(const std::string &name);

    const FleetStats &stats() const { return stats_; }

    /** The shared policy block (read-only). */
    const Policies &policies() const { return policies_; }

    /** The shared artifact store (null: persistence disabled). */
    const std::shared_ptr<store::ArtifactStore> &artifactStore() const
    {
        return store_;
    }

    /**
     * One member's persistent propagator cache (null when persistence
     * is disabled). Its generation changes on every recalibration of
     * that member — drift-watchdog refresh or drain/readmit — so
     * artifacts persisted under the old calibration become
     * unreachable (docs/PERSISTENCE.md invalidation model).
     */
    std::shared_ptr<store::PersistentPropagatorCache>
    persistentCache(const std::string &name) const;

    /** Drain every member's write-back queue into the store. */
    Status flushPersistence();

    /**
     * One member's gate-to-pulse compiler, wired to the pool's shared
     * compile cache. Its generation tracks the member's recalibration
     * epoch: drift-watchdog refresh and drain/readmit both advance it,
     * so schedules compiled under the old calibration miss.
     */
    PulseCompiler &compiler(const std::string &name);

    /** One member's current compile-key calibration generation. */
    std::uint64_t compileGeneration(const std::string &name) const;

    /** The compile cache every member's compiler shares (never null). */
    const std::shared_ptr<CompileCache> &compileCache() const
    {
        return compileCache_;
    }

  private:
    struct Entry
    {
        std::string name;
        std::shared_ptr<const PulseBackend> backend;
        PulseSimulator sim;
        ResilientExecutor executor;
        CircuitBreaker breaker;
        std::shared_ptr<FaultInjector> injector;
        Schedule probe;
        BackendAdminState admin = BackendAdminState::Active;
        std::vector<char> window; ///< Rolling outcomes, 1 = failure.
        std::size_t windowNext = 0;
        std::size_t windowFill = 0;
        long windowFailures = 0;
        long jobsSinceCalibration = 0;
        long calibrationVersion = 0;
        std::uint64_t probeCounter = 0;
        /** Disk tier over the pool's shared store (null: disabled). */
        std::shared_ptr<store::PersistentPropagatorCache> persistCache;
        /** Monotonic recalibration count keyed into the generation. */
        std::uint64_t persistEpoch = 0;
        /** Member compiler over the pool's shared compile cache. */
        std::unique_ptr<PulseCompiler> compiler;

        Entry(std::string name_,
              std::shared_ptr<const PulseBackend> backend_,
              PulseSimulator sim_, Schedule probe_,
              const Policies &policies);
    };

    Entry &find(const std::string &name);
    const Entry &find(const std::string &name) const;

    double scoreOf(const Entry &entry) const;
    /** Record one health-relevant outcome into the rolling window. */
    void recordOutcome(Entry &entry, bool failure);
    /** Move a tripped member into quarantine (idempotent). */
    void maybeQuarantine(Entry &entry);
    /** Run one half-open probe job against `entry`. */
    void runProbe(Entry &entry);
    /** Refresh the fleet.* admin gauges after a state change. */
    void updateGauges() const;
    /** Advance `entry`'s generations (propagator + compile) after a
     *  recalibration, and persist a fresh calibration snapshot. */
    void bumpPersistGeneration(Entry &entry);

    Policies policies_;
    std::shared_ptr<store::ArtifactStore> store_;
    std::shared_ptr<CompileCache> compileCache_;
    std::vector<std::unique_ptr<Entry>> entries_;
    FleetStats stats_;
};

} // namespace qpulse

#endif // QPULSE_SERVICE_BACKEND_POOL_H
