#include "service/backend_pool.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "compile/compile_cache.h"
#include "store/persistent_propagator_cache.h"
#include "store/serde.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

const char *
backendAdminStateName(BackendAdminState state)
{
    switch (state) {
      case BackendAdminState::Active:      return "active";
      case BackendAdminState::Quarantined: return "quarantined";
      case BackendAdminState::Draining:    return "draining";
    }
    return "unknown";
}

namespace {

Status
validateHealthPolicy(const HealthPolicy &policy)
{
    const auto invalid = [](const std::string &detail) {
        return Status::error(ErrorCode::InvalidArgument,
                             "HealthPolicy: " + detail);
    };
    if (policy.window < 1)
        return invalid("window must be >= 1, got " +
                       std::to_string(policy.window));
    if (policy.failureWeight < 0.0)
        return invalid("failureWeight must be >= 0");
    if (policy.freshnessWeight < 0.0)
        return invalid("freshnessWeight must be >= 0");
    if (!(policy.freshnessHorizonJobs > 0.0))
        return invalid("freshnessHorizonJobs must be > 0");
    return Status::okStatus();
}

Status
validateProbePolicy(const ProbePolicy &policy)
{
    if (policy.shots < 1)
        return Status::error(ErrorCode::InvalidArgument,
                             "ProbePolicy: shots must be >= 1, got " +
                                 std::to_string(policy.shots));
    return Status::okStatus();
}

/** True when `code` says something about backend health. The same
 *  classes the service's breaker accounting uses: a deadline expiry
 *  is a failure (a healthy backend finishes inside its budget);
 *  cancellation and validation rejects record nothing. */
bool
healthFailure(ErrorCode code)
{
    switch (code) {
      case ErrorCode::TransientFailure:
      case ErrorCode::Timeout:
      case ErrorCode::RetriesExhausted:
      case ErrorCode::DeadlineExceeded:
        return true;
      default:
        return false;
    }
}

/** Generation of one member: its simulator basis version, its name
 *  (so same-named bases on different members never cross-serve), and
 *  its monotonic recalibration epoch. Any recalibration changes the
 *  epoch, so previously persisted propagators become unreachable. */
std::uint64_t
memberGeneration(const PulseSimulator &sim, const std::string &name,
                 std::uint64_t persistEpoch)
{
    const std::uint64_t base = store::mixHash(
        sim.basisVersion(),
        store::hashBytes(name.data(), name.size()));
    return store::mixHash(base, persistEpoch);
}

} // namespace

BackendPool::Entry::Entry(std::string name_,
                          std::shared_ptr<const PulseBackend> backend_,
                          PulseSimulator sim_, Schedule probe_,
                          const Policies &policies)
    : name(std::move(name_)), backend(std::move(backend_)),
      sim(std::move(sim_)),
      executor(backend, policies.retry, policies.watchdog,
               policies.degrade),
      breaker(policies.breaker), probe(std::move(probe_)),
      window(static_cast<std::size_t>(policies.health.window), 0)
{
}

BackendPool::BackendPool() : BackendPool(Policies{}) {}

BackendPool::BackendPool(Policies policies)
    : policies_(std::move(policies))
{
    throwIfError(validateBreakerPolicy(policies_.breaker));
    throwIfError(validateHealthPolicy(policies_.health));
    throwIfError(validateProbePolicy(policies_.probe));
    store_ = policies_.artifactStore ? policies_.artifactStore
                                     : store::ArtifactStore::openFromEnv();
    // One compile cache for the whole fleet: member compilers key by
    // their own calibration generation, so members sharing a
    // calibration share compiled schedules (the failover path serves
    // hop recompiles from cache) while distinct calibrations miss.
    compileCache_ = policies_.compileCache
                        ? policies_.compileCache
                        : std::make_shared<CompileCache>(
                              CompileCache::kDefaultCapacity, store_);
}

void
BackendPool::addBackend(std::string name,
                        std::shared_ptr<const PulseBackend> backend,
                        PulseSimulator sim)
{
    qpulseRequire(backend != nullptr,
                  "BackendPool::addBackend: null backend");
    Schedule probe = backend->probeSchedule(0);
    addBackend(std::move(name), std::move(backend), std::move(sim),
               std::move(probe));
}

void
BackendPool::addBackend(std::string name,
                        std::shared_ptr<const PulseBackend> backend,
                        PulseSimulator sim, Schedule probe)
{
    qpulseRequire(backend != nullptr,
                  "BackendPool::addBackend: null backend");
    qpulseRequire(!name.empty(),
                  "BackendPool::addBackend: empty backend name");
    qpulseRequire(!has(name), "BackendPool::addBackend: duplicate "
                              "backend name '" +
                                  name + "'");
    entries_.push_back(std::make_unique<Entry>(
        std::move(name), std::move(backend), std::move(sim),
        std::move(probe), policies_));
    Entry *entry = entries_.back().get();
    if (store_)
        entry->persistCache =
            std::make_shared<store::PersistentPropagatorCache>(
                store_,
                memberGeneration(entry->sim, entry->name,
                                 entry->persistEpoch),
                store::simConfigFingerprint(entry->sim));
    entry->compiler = std::make_unique<PulseCompiler>(
        entry->backend, policies_.compileMode);
    entry->compiler->setCompileCache(compileCache_);
    entry->compiler->setCompileGeneration(calibrationGeneration(
        entry->backend->library(), entry->persistEpoch));
    // The drift watchdog's targeted refresh re-tunes the member: its
    // calibration is fresh again, the fleet counts the event, and any
    // persisted propagators from the stale calibration are retired.
    entry->executor.setRecalibrationHook([this, entry] {
        static telemetry::Counter &c_recal =
            telemetry::MetricsRegistry::global().counter(
                "fleet.recalibrations");
        entry->jobsSinceCalibration = 0;
        ++stats_.recalibrations;
        c_recal.increment();
        bumpPersistGeneration(*entry);
    });
    updateGauges();
}

void
BackendPool::setFaultInjector(const std::string &name,
                              std::shared_ptr<FaultInjector> injector)
{
    Entry &entry = find(name);
    entry.injector = injector;
    entry.executor.setFaultInjector(std::move(injector));
}

bool
BackendPool::has(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry->name == name)
            return true;
    return false;
}

std::vector<std::string>
BackendPool::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry->name);
    return out;
}

BackendAdminState
BackendPool::adminState(const std::string &name) const
{
    return find(name).admin;
}

const CircuitBreaker &
BackendPool::breaker(const std::string &name) const
{
    return find(name).breaker;
}

long
BackendPool::calibrationVersion(const std::string &name) const
{
    return find(name).calibrationVersion;
}

long
BackendPool::jobsSinceCalibration(const std::string &name) const
{
    return find(name).jobsSinceCalibration;
}

double
BackendPool::healthScore(const std::string &name) const
{
    return scoreOf(find(name));
}

std::vector<std::string>
BackendPool::routingOrder() const
{
    std::vector<std::pair<double, const Entry *>> ranked;
    ranked.reserve(entries_.size());
    for (const auto &entry : entries_)
        if (entry->admin == BackendAdminState::Active)
            ranked.emplace_back(scoreOf(*entry), entry.get());
    // stable_sort keeps insertion order among equal scores, so the
    // failover order is fully deterministic.
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    std::vector<std::string> order;
    order.reserve(ranked.size());
    for (const auto &pair : ranked)
        order.push_back(pair.second->name);
    return order;
}

BackendPool::PoolRun
BackendPool::runOn(const std::string &name,
                   const ResilientRequest &request,
                   const PulseShotOptions &opts)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_jobs = registry.counter("fleet.jobs");
    static telemetry::Counter &c_failures =
        registry.counter("fleet.job_failures");
    static telemetry::Counter &c_denied =
        registry.counter("fleet.breaker_denied");

    Entry &entry = find(name);
    PoolRun run;

    // The member's own breaker gate. Routed traffic only reaches
    // Active members, whose breaker admits by construction; this
    // covers pinned jobs and keeps the gate self-contained.
    if (!entry.breaker.allow()) {
        c_denied.increment();
        run.outcome.status = Status::error(
            ErrorCode::Unavailable,
            breakerDenialMessage(entry.name, entry.breaker));
        run.outcome.lastError = run.outcome.status;
        maybeQuarantine(entry);
        return run;
    }

    run.ran = true;
    ++stats_.jobs;
    c_jobs.increment();
    registry.counter("fleet.routed." + entry.name).increment();

    // With persistence on, route the job's propagator derivations
    // through the member's disk-backed cache (memory -> disk ->
    // derive). A caller-supplied cache wins: it is an explicit choice.
    PulseShotOptions effective = opts;
    if (entry.persistCache && !effective.cache)
        effective.cache = entry.persistCache;
    run.outcome = entry.executor.run(entry.sim, request, effective);
    ++entry.jobsSinceCalibration;

    const ErrorCode code = run.outcome.status.code();
    if (code == ErrorCode::Ok) {
        entry.breaker.recordSuccess();
        recordOutcome(entry, /*failure=*/false);
    } else if (healthFailure(code)) {
        entry.breaker.recordFailure();
        recordOutcome(entry, /*failure=*/true);
        ++stats_.failures;
        c_failures.increment();
    }
    registry.gauge("fleet.breaker.state." + entry.name)
        .set(entry.breaker.stateValue());
    registry.gauge("fleet.health." + entry.name).set(scoreOf(entry));
    maybeQuarantine(entry);
    return run;
}

void
BackendPool::pumpProbes()
{
    for (auto &entryPtr : entries_) {
        Entry &entry = *entryPtr;
        if (entry.admin != BackendAdminState::Quarantined)
            continue;
        // While the cooldown lasts, each pump spends one denial; the
        // pump that exhausts it flips the breaker Half-Open and runs
        // a real probe job. Recovery latency is therefore measured in
        // scheduled work, deterministic across thread counts.
        if (!entry.breaker.allow())
            continue;
        runProbe(entry);
    }
}

Status
BackendPool::beginDrain(const std::string &name)
{
    if (!has(name))
        return Status::error(ErrorCode::InvalidArgument,
                             "BackendPool: unknown backend '" + name +
                                 "'");
    Entry &entry = find(name);
    if (entry.admin == BackendAdminState::Quarantined)
        return Status::error(
            ErrorCode::Unavailable,
            "backend '" + name +
                "' is quarantined: it re-enters service through "
                "health probes, not an admin drain");
    if (entry.admin == BackendAdminState::Draining)
        return Status::error(ErrorCode::InvalidArgument,
                             "backend '" + name +
                                 "' is already draining");
    entry.admin = BackendAdminState::Draining;
    ++stats_.drains;
    static telemetry::Counter &c_drains =
        telemetry::MetricsRegistry::global().counter("fleet.drains");
    c_drains.increment();
    updateGauges();
    return Status::okStatus();
}

Status
BackendPool::readmit(const std::string &name)
{
    if (!has(name))
        return Status::error(ErrorCode::InvalidArgument,
                             "BackendPool: unknown backend '" + name +
                                 "'");
    Entry &entry = find(name);
    if (entry.admin == BackendAdminState::Quarantined)
        return Status::error(
            ErrorCode::Unavailable,
            "backend '" + name +
                "' is quarantined: only successful health probes "
                "re-admit it");
    if (entry.admin == BackendAdminState::Active)
        return Status::error(ErrorCode::InvalidArgument,
                             "backend '" + name +
                                 "' is not draining");
    // The drain's purpose: a full recalibration pass. Clear any
    // active drift, reset freshness and the health window, and start
    // the member on a fresh breaker.
    if (entry.injector)
        entry.injector->recalibrate();
    entry.jobsSinceCalibration = 0;
    ++entry.calibrationVersion;
    bumpPersistGeneration(entry);
    entry.breaker = CircuitBreaker(policies_.breaker);
    std::fill(entry.window.begin(), entry.window.end(), 0);
    entry.windowNext = 0;
    entry.windowFill = 0;
    entry.windowFailures = 0;
    entry.admin = BackendAdminState::Active;
    ++stats_.drainReadmissions;
    static telemetry::Counter &c_readmit =
        telemetry::MetricsRegistry::global().counter(
            "fleet.drain_readmissions");
    c_readmit.increment();
    updateGauges();
    return Status::okStatus();
}

BackendPool::Entry &
BackendPool::find(const std::string &name)
{
    for (auto &entry : entries_)
        if (entry->name == name)
            return *entry;
    qpulseFatal("BackendPool: unknown backend '" + name + "'");
}

const BackendPool::Entry &
BackendPool::find(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry->name == name)
            return *entry;
    qpulseFatal("BackendPool: unknown backend '" + name + "'");
}

double
BackendPool::scoreOf(const Entry &entry) const
{
    if (entry.admin != BackendAdminState::Active)
        return 0.0;
    double base = 0.0;
    switch (entry.breaker.state()) {
      case BreakerState::Closed:   base = 1.0; break;
      case BreakerState::HalfOpen: base = 0.5; break;
      case BreakerState::Open:     return 0.0;
    }
    const double failRate =
        entry.windowFill == 0
            ? 0.0
            : static_cast<double>(entry.windowFailures) /
                  static_cast<double>(entry.windowFill);
    const double staleness =
        std::min(1.0, static_cast<double>(entry.jobsSinceCalibration) /
                          policies_.health.freshnessHorizonJobs);
    return base - policies_.health.failureWeight * failRate -
           policies_.health.freshnessWeight * staleness;
}

void
BackendPool::recordOutcome(Entry &entry, bool failure)
{
    if (entry.windowFill == entry.window.size()) {
        if (entry.window[entry.windowNext])
            --entry.windowFailures;
    } else {
        ++entry.windowFill;
    }
    entry.window[entry.windowNext] = failure ? 1 : 0;
    if (failure)
        ++entry.windowFailures;
    entry.windowNext = (entry.windowNext + 1) % entry.window.size();
}

void
BackendPool::maybeQuarantine(Entry &entry)
{
    if (entry.admin != BackendAdminState::Active)
        return;
    if (entry.breaker.state() != BreakerState::Open)
        return;
    entry.admin = BackendAdminState::Quarantined;
    ++stats_.quarantines;
    static telemetry::Counter &c_quarantines =
        telemetry::MetricsRegistry::global().counter(
            "fleet.quarantines");
    c_quarantines.increment();
    updateGauges();
}

void
BackendPool::runProbe(Entry &entry)
{
    telemetry::TraceSpan span("fleet.probe");
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_probes =
        registry.counter("fleet.probes");
    static telemetry::Counter &c_probe_failures =
        registry.counter("fleet.probe_failures");
    static telemetry::Counter &c_readmissions =
        registry.counter("fleet.readmissions");

    ++stats_.probes;
    c_probes.increment();

    // Probes carry no stale-tracking key and no fallback: a probe
    // must exercise the real substrate, not degrade around it.
    ResilientRequest request;
    request.schedule = entry.probe;

    PulseShotOptions opts;
    opts.shots = policies_.probe.shots;
    opts.seed = Rng::deriveSeed(policies_.probe.seed,
                                entry.probeCounter++);
    opts.maxThreads = policies_.probe.maxThreads;
    if (entry.persistCache)
        opts.cache = entry.persistCache;

    const ResilientOutcome outcome =
        entry.executor.run(entry.sim, request, opts);

    if (outcome.status.ok()) {
        entry.breaker.recordSuccess();
        if (entry.breaker.state() == BreakerState::Closed) {
            // Enough consecutive probe successes: the breaker closed
            // and the member rejoins routing with a clean window.
            std::fill(entry.window.begin(), entry.window.end(), 0);
            entry.windowNext = 0;
            entry.windowFill = 0;
            entry.windowFailures = 0;
            entry.admin = BackendAdminState::Active;
            ++stats_.readmissions;
            c_readmissions.increment();
        }
    } else {
        // A failed probe re-opens the breaker and restarts the
        // cooldown; the member stays quarantined.
        entry.breaker.recordFailure();
        ++stats_.probeFailures;
        c_probe_failures.increment();
    }
    registry.gauge("fleet.breaker.state." + entry.name)
        .set(entry.breaker.stateValue());
    registry.gauge("fleet.health." + entry.name).set(scoreOf(entry));
    updateGauges();
}

std::shared_ptr<store::PersistentPropagatorCache>
BackendPool::persistentCache(const std::string &name) const
{
    return find(name).persistCache;
}

Status
BackendPool::flushPersistence()
{
    Status first = Status::okStatus();
    for (auto &entry : entries_) {
        if (!entry->persistCache)
            continue;
        const Status status = entry->persistCache->flush();
        if (!status.ok() && first.ok())
            first = status;
    }
    if (compileCache_) {
        const Status status = compileCache_->flush();
        if (!status.ok() && first.ok())
            first = status;
    }
    return first;
}

PulseCompiler &
BackendPool::compiler(const std::string &name)
{
    return *find(name).compiler;
}

std::uint64_t
BackendPool::compileGeneration(const std::string &name) const
{
    return find(name).compiler->compileGeneration();
}

void
BackendPool::bumpPersistGeneration(Entry &entry)
{
    // The epoch always advances: compiled schedules keyed under the
    // old calibration generation must miss even when the persistent
    // tier is off (the memory tier invalidates the same way).
    ++entry.persistEpoch;
    if (entry.persistCache)
        entry.persistCache->setGeneration(memberGeneration(
            entry.sim, entry.name, entry.persistEpoch));
    if (entry.compiler)
        entry.compiler->setCompileGeneration(calibrationGeneration(
            entry.backend->library(), entry.persistEpoch));
    // A fresh snapshot marks the recalibration point for the next
    // process's bootstrap (newest-wins on the fixed snapshot key).
    if (store_)
        writeCalibrationSnapshot(*store_, entry.backend->library());
}

void
BackendPool::updateGauges() const
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Gauge &g_active =
        registry.gauge("fleet.backends_active");
    static telemetry::Gauge &g_quarantined =
        registry.gauge("fleet.backends_quarantined");
    static telemetry::Gauge &g_draining =
        registry.gauge("fleet.backends_draining");
    double active = 0.0, quarantined = 0.0, draining = 0.0;
    for (const auto &entry : entries_) {
        switch (entry->admin) {
          case BackendAdminState::Active:      active += 1.0; break;
          case BackendAdminState::Quarantined: quarantined += 1.0; break;
          case BackendAdminState::Draining:    draining += 1.0; break;
        }
    }
    g_active.set(active);
    g_quarantined.set(quarantined);
    g_draining.set(draining);
}

} // namespace qpulse
