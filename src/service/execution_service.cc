#include "service/execution_service.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <unordered_set>

#include "common/env.h"
#include "common/thread_pool.h"
#include "compile/compile_cache.h"
#include "store/persistent_propagator_cache.h"
#include "store/serde.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

namespace {

/** Wall-clock microseconds since `t0` (histogram-only; not counted). */
double
wallUsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Queue capacity from the policy or the diagnosed env default. */
std::size_t
resolveCapacity(const ServicePolicy &policy)
{
    return policy.queueCapacity != 0
               ? policy.queueCapacity
               : static_cast<std::size_t>(envLong(
                     "QPULSE_SERVICE_QUEUE", 32, 1, 4096));
}

/**
 * Construction-time policy validation: a service must refuse to start
 * with a breaker that can never trip/close or a fleet scheduler whose
 * shares are degenerate, instead of misbehaving silently later.
 */
Status
validateServicePolicy(const ServicePolicy &policy, bool fleet)
{
    if (Status breakerStatus = validateBreakerPolicy(policy.breaker);
        !breakerStatus.ok())
        return breakerStatus;
    if (!fleet)
        return Status::okStatus();
    if (policy.fleet.failoverBudget < 1)
        return Status::error(
            ErrorCode::InvalidArgument,
            "FleetPolicy: failoverBudget must be >= 1 (a job always "
            "tries at least one backend), got " +
                std::to_string(policy.fleet.failoverBudget));
    if (!(policy.fleet.defaultQuota.weight > 0.0))
        return Status::error(ErrorCode::InvalidArgument,
                             "FleetPolicy: defaultQuota.weight must "
                             "be > 0 for weighted-fair dequeue");
    for (const auto &entry : policy.fleet.tenants)
        if (!(entry.second.weight > 0.0))
            return Status::error(
                ErrorCode::InvalidArgument,
                "FleetPolicy: tenant '" + entry.first +
                    "' weight must be > 0 for weighted-fair dequeue");
    return Status::okStatus();
}

/**
 * Codes worth retrying on another fleet member. Backend-health
 * failures (and a breaker denial) fail over; a deadline expiry ends
 * the job (its budget is spent and the partial result is preserved),
 * and cancellation/validation codes mean the same thing everywhere.
 */
bool
failoverEligible(ErrorCode code)
{
    switch (code) {
      case ErrorCode::TransientFailure:
      case ErrorCode::Timeout:
      case ErrorCode::RetriesExhausted:
      case ErrorCode::StaleCalibration:
      case ErrorCode::Unavailable:
        return true;
      default:
        return false;
    }
}

} // namespace

ExecutionService::ExecutionService(
    std::shared_ptr<const PulseBackend> backend, PulseSimulator sim,
    ServicePolicy policy)
    : backend_(std::move(backend)), sim_(std::move(sim)),
      policy_(policy), capacity_(resolveCapacity(policy))
{
    throwIfError(validateServicePolicy(policy_, /*fleet=*/false));
    executor_ = std::make_unique<ResilientExecutor>(
        backend_, policy_.retry, policy_.watchdog, policy_.degrade);
    artifactStore_ = policy_.artifactStore
                         ? policy_.artifactStore
                         : store::ArtifactStore::openFromEnv();
    if (artifactStore_)
        persistCache_ =
            std::make_shared<store::PersistentPropagatorCache>(
                artifactStore_,
                store::mixHash(sim_->basisVersion(), recalEpoch_),
                store::simConfigFingerprint(*sim_));
    // Circuit-carrying jobs compile through a memoized two-tier cache:
    // the memory tier always exists; the persistent tier rides the
    // same artifact store as the propagators.
    compileCache_ = policy_.compileCache
                        ? policy_.compileCache
                        : std::make_shared<CompileCache>(
                              CompileCache::kDefaultCapacity,
                              artifactStore_);
    compiler_ = std::make_unique<PulseCompiler>(backend_,
                                                policy_.compileMode);
    compiler_->setCompileCache(compileCache_);
    compiler_->setCompileGeneration(
        calibrationGeneration(backend_->library(), recalEpoch_));
    // Composite hook: a recalibration means the calibration the
    // persisted propagators were derived under is gone — retire the
    // generation before any user-visible bookkeeping runs.
    executor_->setRecalibrationHook([this] { onRecalibration(); });
}

void
ExecutionService::onRecalibration()
{
    // The epoch always advances: compiled schedules keyed under the
    // old calibration generation must miss even when persistence is
    // off (the memory tier invalidates by the same unreachability).
    ++recalEpoch_;
    if (persistCache_)
        persistCache_->setGeneration(
            store::mixHash(sim_->basisVersion(), recalEpoch_));
    if (compiler_)
        compiler_->setCompileGeneration(
            calibrationGeneration(backend_->library(), recalEpoch_));
    // A fresh snapshot marks the recalibration point for the next
    // process's bootstrap (newest-wins on the fixed snapshot key).
    if (artifactStore_ && backend_)
        writeCalibrationSnapshot(*artifactStore_, backend_->library());
    if (userRecalHook_)
        userRecalHook_();
}

std::shared_ptr<store::ArtifactStore>
ExecutionService::artifactStore() const
{
    return pool_ != nullptr ? pool_->artifactStore() : artifactStore_;
}

std::shared_ptr<CompileCache>
ExecutionService::compileCache() const
{
    return pool_ != nullptr ? pool_->compileCache() : compileCache_;
}

Status
ExecutionService::flushPersistence()
{
    if (pool_ != nullptr)
        return pool_->flushPersistence();
    Status first = persistCache_ ? persistCache_->flush()
                                 : Status::okStatus();
    if (compileCache_) {
        const Status compile = compileCache_->flush();
        if (!compile.ok() && first.ok())
            first = compile;
    }
    return first;
}

ExecutionService::ExecutionService(std::shared_ptr<BackendPool> pool,
                                   ServicePolicy policy)
    : policy_(policy), capacity_(resolveCapacity(policy)),
      pool_(std::move(pool))
{
    qpulseRequire(pool_ != nullptr,
                  "ExecutionService: fleet constructor needs a "
                  "non-null BackendPool");
    throwIfError(validateServicePolicy(policy_, /*fleet=*/true));
}

BackendPool &
ExecutionService::pool()
{
    qpulseRequire(pool_ != nullptr,
                  "ExecutionService::pool: not a fleet-mode service");
    return *pool_;
}

const TenantQuota &
ExecutionService::tenantQuota(const std::string &tenant) const
{
    auto it = policy_.fleet.tenants.find(tenant);
    return it == policy_.fleet.tenants.end()
               ? policy_.fleet.defaultQuota
               : it->second;
}

std::size_t
ExecutionService::queuedForTenant(const std::string &tenant) const
{
    std::size_t count = 0;
    for (const PendingJob &job : queue_)
        if (job.request.tenant == tenant)
            ++count;
    return count;
}

CircuitBreaker &
ExecutionService::breaker(const std::string &backendName)
{
    auto it = breakers_.find(backendName);
    if (it == breakers_.end())
        it = breakers_
                 .emplace(backendName, CircuitBreaker(policy_.breaker))
                 .first;
    return it->second;
}

void
ExecutionService::noteTerminal(const Status &status, bool /*executed*/)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_completed =
        registry.counter("service.completed");
    static telemetry::Counter &c_cancelled =
        registry.counter("service.cancelled");
    static telemetry::Counter &c_deadline =
        registry.counter("service.deadline_exceeded");
    static telemetry::Counter &c_failed =
        registry.counter("service.failed");
    switch (status.code()) {
      case ErrorCode::Ok:
        ++stats_.completed;
        c_completed.increment();
        break;
      case ErrorCode::Cancelled:
        ++stats_.cancelled;
        c_cancelled.increment();
        break;
      case ErrorCode::DeadlineExceeded:
        ++stats_.deadlineExceeded;
        c_deadline.increment();
        break;
      default:
        ++stats_.failed;
        c_failed.increment();
        break;
    }
}

Status
ExecutionService::submit(JobRequest request)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_submitted =
        registry.counter("service.submitted");
    static telemetry::Counter &c_admitted =
        registry.counter("service.admitted");
    static telemetry::Counter &c_rejected =
        registry.counter("service.rejected");
    static telemetry::Counter &c_shed =
        registry.counter("service.shed");
    static telemetry::Gauge &g_depth =
        registry.gauge("service.queue_depth");

    ++stats_.submitted;
    c_submitted.increment();

    // A job whose token/deadline already fired never takes a slot.
    if (Status gate = request.deadline.check(request.token);
        !gate.ok()) {
        noteTerminal(gate, /*executed=*/false);
        return gate;
    }

    // Fleet tenant quota: one tenant may never crowd the shared queue
    // past its cap, however fast it submits — capacity left open this
    // way is what keeps other tenants' jobs admissible.
    if (pool_ != nullptr) {
        static telemetry::Counter &c_tenant_rejected =
            registry.counter("service.tenant_rejected");
        const TenantQuota &quota = tenantQuota(request.tenant);
        if (quota.maxQueued > 0 &&
            queuedForTenant(request.tenant) >= quota.maxQueued) {
            ++stats_.rejected;
            ++stats_.tenantRejected;
            c_rejected.increment();
            c_tenant_rejected.increment();
            return Status::error(
                ErrorCode::ResourceExhausted,
                "tenant '" + request.tenant + "' is at its quota (" +
                    std::to_string(quota.maxQueued) +
                    " queued jobs): admission refused");
        }
    }

    if (queue_.size() >= capacity_) {
        // Shed candidate: the lowest-priority queued job; among ties
        // the most recently submitted loses (earlier submissions of
        // equal priority have waited longer and keep their claim).
        auto victim = queue_.end();
        for (auto it = queue_.begin(); it != queue_.end(); ++it)
            if (victim == queue_.end() ||
                it->request.priority < victim->request.priority ||
                (it->request.priority == victim->request.priority &&
                 it->id > victim->id))
                victim = it;
        if (victim == queue_.end() ||
            victim->request.priority >= request.priority) {
            ++stats_.rejected;
            c_rejected.increment();
            return Status::error(
                ErrorCode::ResourceExhausted,
                "queue full (" + std::to_string(capacity_) +
                    " jobs) and priority " +
                    std::to_string(request.priority) +
                    " does not outrank any queued job");
        }
        JobOutcome out;
        out.id = victim->id;
        out.key = victim->request.key;
        out.priority = victim->request.priority;
        out.shed = true;
        out.status = Status::error(
            ErrorCode::ResourceExhausted,
            "shed by admission control: displaced by a priority-" +
                std::to_string(request.priority) + " job");
        shedOutcomes_.push_back(std::move(out));
        queue_.erase(victim);
        ++stats_.shed;
        c_shed.increment();
    }

    PendingJob job;
    job.id = nextId_++;
    job.request = std::move(request);
    queue_.push_back(std::move(job));
    ++stats_.admitted;
    c_admitted.increment();
    g_depth.set(static_cast<double>(queue_.size()));
    return Status::okStatus();
}

Status
ExecutionService::compileCircuit(const PulseCompiler &compiler,
                                 const QuantumCircuit &circuit,
                                 Schedule &out)
{
    try {
        CompileResult result = compiler.compile(circuit);
        // A failed validation is the compiler saying the current
        // cmd_def cannot express this circuit within the channel
        // budget — structurally terminal, never executed.
        if (!result.validation.ok())
            return result.validation;
        out = std::move(result.schedule);
        return Status::okStatus();
    } catch (const StatusError &error) {
        return error.status();
    } catch (const std::exception &error) {
        return Status::error(ErrorCode::InvalidArgument,
                             std::string("compile failed: ") +
                                 error.what());
    }
}

JobOutcome
ExecutionService::executeJob(PendingJob &job)
{
    telemetry::TraceSpan span("service.job");
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_fastfail =
        registry.counter("service.breaker_fastfail");
    static telemetry::Histogram &h_wall =
        registry.histogram("service.job.wall_us");
    const auto t0 = std::chrono::steady_clock::now();

    JobOutcome out;
    out.id = job.id;
    out.key = job.request.key;
    out.priority = job.request.priority;
    out.tenant = job.request.tenant;
    out.backend = job.request.backendName;

    // Gate 1: a cancelled or expired job terminates without touching
    // the backend (and without charging the breaker either way).
    if (Status gate =
            job.request.deadline.check(job.request.token);
        !gate.ok()) {
        out.status = std::move(gate);
        noteTerminal(out.status, /*executed=*/false);
        h_wall.observe(wallUsSince(t0));
        return out;
    }

    // Gate 2: the backend's circuit breaker. Open = fail fast with a
    // structured `unavailable` naming the backend, the breaker state
    // and the cooldown progress, instead of burning the retry budget.
    CircuitBreaker &brk = breaker(job.request.backendName);
    telemetry::Gauge &g_state = registry.gauge(
        "service.breaker.state." + job.request.backendName);
    if (!brk.allow()) {
        out.breakerFastFail = true;
        out.status = Status::error(
            ErrorCode::Unavailable,
            breakerDenialMessage(job.request.backendName, brk));
        ++stats_.breakerFastFails;
        c_fastfail.increment();
        g_state.set(brk.stateValue());
        h_wall.observe(wallUsSince(t0));
        return out;
    }

    ResilientRequest request;
    request.schedule = job.request.schedule;
    request.key = job.request.key;
    request.fallback = job.request.fallback;
    request.baselineProxy = job.request.baselineProxy;

    // Circuit-carrying job: lower it through the memoized compile
    // cache (the drain-time precompile usually makes this a hit). A
    // compile failure terminates the job here — it never reaches the
    // backend, and the breaker records nothing (a bad circuit says
    // nothing about backend health).
    if (job.request.circuit) {
        if (Status compiled = compileCircuit(
                *compiler_, *job.request.circuit, request.schedule);
            !compiled.ok()) {
            out.status = std::move(compiled);
            noteTerminal(out.status, /*executed=*/false);
            h_wall.observe(wallUsSince(t0));
            return out;
        }
    }

    PulseShotOptions opts;
    opts.shots = job.request.shots;
    opts.seed = job.request.seed;
    opts.maxThreads = policy_.maxThreads;
    opts.token = job.request.token;
    opts.deadline = job.request.deadline;
    // Persistence on: propagator derivations go through the disk-
    // backed cache (memory hit -> disk hit -> derive and write back).
    if (persistCache_)
        opts.cache = persistCache_;

    out.execution = executor_->run(*sim_, request, opts);
    out.executed = true;
    out.status = out.execution.status;

    // Breaker accounting: backend-health outcomes only. A deadline
    // expiry counts as a failure — a healthy backend finishes inside
    // its budget, and a wedged one (100% timeouts) must trip the
    // breaker so the rest of the queue fails fast instead of timing
    // out job by job. Cancellation and validation rejects say nothing
    // about backend health and record neither.
    switch (out.status.code()) {
      case ErrorCode::Ok:
        brk.recordSuccess();
        break;
      case ErrorCode::TransientFailure:
      case ErrorCode::Timeout:
      case ErrorCode::RetriesExhausted:
      case ErrorCode::DeadlineExceeded:
        brk.recordFailure();
        break;
      default:
        break;
    }
    g_state.set(brk.stateValue());
    noteTerminal(out.status, /*executed=*/true);
    h_wall.observe(wallUsSince(t0));
    return out;
}

JobOutcome
ExecutionService::executeFleetJob(PendingJob &job)
{
    telemetry::TraceSpan span("service.job");
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_fastfail =
        registry.counter("service.breaker_fastfail");
    static telemetry::Counter &c_failovers =
        registry.counter("fleet.failovers");
    static telemetry::Histogram &h_wall =
        registry.histogram("service.job.wall_us");
    const auto t0 = std::chrono::steady_clock::now();

    JobOutcome out;
    out.id = job.id;
    out.key = job.request.key;
    out.priority = job.request.priority;
    out.tenant = job.request.tenant;

    // Gate 1: cancellation/deadline, as in single-backend mode.
    if (Status gate =
            job.request.deadline.check(job.request.token);
        !gate.ok()) {
        out.status = std::move(gate);
        noteTerminal(out.status, /*executed=*/false);
        h_wall.observe(wallUsSince(t0));
        return out;
    }

    // Routing set. "default" routes freely across the healthy fleet;
    // any other name pins the job to that member — no failover, and a
    // fast fail naming the backend when it is not in service.
    const bool pinned = !job.request.backendName.empty() &&
                        job.request.backendName != "default";
    std::vector<std::string> candidates;
    if (pinned) {
        const std::string &name = job.request.backendName;
        if (!pool_->has(name)) {
            out.status = Status::error(
                ErrorCode::InvalidArgument,
                "unknown backend '" + name + "': not in the fleet");
            noteTerminal(out.status, /*executed=*/false);
            h_wall.observe(wallUsSince(t0));
            return out;
        }
        const BackendAdminState admin = pool_->adminState(name);
        if (admin != BackendAdminState::Active) {
            out.breakerFastFail = true;
            out.backend = name;
            out.status = Status::error(
                ErrorCode::Unavailable,
                admin == BackendAdminState::Draining
                    ? "backend '" + name +
                          "' unavailable: draining for "
                          "recalibration; failing fast"
                    : breakerDenialMessage(name,
                                           pool_->breaker(name)));
            ++stats_.breakerFastFails;
            c_fastfail.increment();
            h_wall.observe(wallUsSince(t0));
            return out;
        }
        candidates.push_back(name);
    } else {
        candidates = pool_->routingOrder();
    }

    if (candidates.empty()) {
        out.breakerFastFail = true;
        out.status = Status::error(
            ErrorCode::Unavailable,
            "no active backends in the fleet (all quarantined or "
            "draining): failing fast");
        ++stats_.breakerFastFails;
        c_fastfail.increment();
        h_wall.observe(wallUsSince(t0));
        return out;
    }

    ResilientRequest request;
    request.schedule = job.request.schedule;
    request.key = job.request.key;
    request.fallback = job.request.fallback;
    request.baselineProxy = job.request.baselineProxy;

    PulseShotOptions opts;
    opts.shots = job.request.shots;
    opts.seed = job.request.seed;
    opts.maxThreads = policy_.maxThreads;
    opts.token = job.request.token;
    opts.deadline = job.request.deadline;

    // Failover loop: walk the routing order healthiest-first, up to
    // the budget of distinct backends. The deadline is shared across
    // hops (Deadline state is shared), so failing over never buys a
    // job more budget than it was admitted with.
    const int budget = (!pinned && policy_.fleet.failoverEnabled)
                           ? std::max(1, policy_.fleet.failoverBudget)
                           : 1;
    int hops = 0;
    for (const std::string &name : candidates) {
        if (hops >= budget)
            break;
        ++hops;
        // Circuit-carrying job: lower it for *this* member through its
        // compiler. All member compilers share one CompileCache, and
        // the key carries the calibration generation — members sharing
        // a calibration serve the hop from cache instead of re-running
        // the pass pipeline per failover hop.
        if (job.request.circuit) {
            if (Status compiled = compileCircuit(
                    pool_->compiler(name), *job.request.circuit,
                    request.schedule);
                !compiled.ok()) {
                out.path.push_back(
                    FailoverHop{name, compiled.code()});
                out.backend = name;
                out.execution = ResilientOutcome{};
                out.execution.status = std::move(compiled);
                if (!failoverEligible(out.execution.status.code()))
                    break;
                continue;
            }
        }
        BackendPool::PoolRun run = pool_->runOn(name, request, opts);
        out.path.push_back(FailoverHop{name, run.outcome.status.code()});
        out.backend = name;
        out.executed = out.executed || run.ran;
        out.execution = std::move(run.outcome);
        const ErrorCode code = out.execution.status.code();
        if (code == ErrorCode::Ok || !failoverEligible(code))
            break;
    }
    if (hops > 1) {
        stats_.failovers += hops - 1;
        c_failovers.add(static_cast<std::uint64_t>(hops - 1));
    }

    out.status = out.execution.status;
    if (!out.status.ok() && out.path.size() > 1) {
        // Breadcrumb trail: the terminal Status records every backend
        // tried and how each hop ended.
        std::string trail;
        for (std::size_t i = 0; i < out.path.size(); ++i) {
            if (i != 0)
                trail += " -> ";
            trail += out.path[i].backend;
            trail += ':';
            trail += errorCodeName(out.path[i].code);
        }
        out.status = Status(out.status.code(),
                            out.status.message() +
                                " [fleet path: " + trail + "]");
    }

    if (!out.executed &&
        out.status.code() == ErrorCode::Unavailable) {
        // Every hop was a breaker denial: the job never ran anywhere.
        out.breakerFastFail = true;
        ++stats_.breakerFastFails;
        c_fastfail.increment();
        h_wall.observe(wallUsSince(t0));
        return out;
    }

    noteTerminal(out.status, out.executed);
    h_wall.observe(wallUsSince(t0));
    return out;
}

void
ExecutionService::precompileQueued(std::vector<PendingJob> &jobs)
{
    // The compiler the drain will (first) lower against: the service's
    // own in single-backend mode, the healthiest routable member's in
    // fleet mode (failover hops recompile per member, but a shared
    // calibration generation makes those hops cache hits).
    const PulseCompiler *compiler = compiler_.get();
    if (pool_ != nullptr) {
        const std::vector<std::string> order = pool_->routingOrder();
        if (order.empty())
            return;
        compiler = &pool_->compiler(order.front());
    }
    if (compiler == nullptr)
        return;

    // Dedup BEFORE fanning out: each distinct CompileKey compiles
    // exactly once, so the compile.cache.* counters are thread-count
    // invariant (one miss per distinct key; duplicates become memory
    // hits at execute time) — concurrent same-key compiles would
    // instead split miss/coalesced by scheduling. Compile errors are
    // swallowed here; the per-job compile reports them with the job's
    // identity attached.
    std::vector<const QuantumCircuit *> distinct;
    std::unordered_set<CompileKey, CompileKeyHash> seen;
    for (const PendingJob &job : jobs) {
        if (!job.request.circuit)
            continue;
        if (seen.insert(compiler->cacheKey(*job.request.circuit))
                .second)
            distinct.push_back(&*job.request.circuit);
    }
    if (distinct.empty())
        return;

    telemetry::TraceSpan span("service.precompile");
    ThreadPool::global().parallelFor(
        distinct.size(),
        [&](std::size_t i) {
            Schedule lowered;
            (void)compileCircuit(*compiler, *distinct[i], lowered);
        },
        policy_.maxThreads);
}

std::vector<JobOutcome>
ExecutionService::drain()
{
    static telemetry::Gauge &g_depth =
        telemetry::MetricsRegistry::global().gauge(
            "service.queue_depth");

    std::vector<PendingJob> jobs(
        std::make_move_iterator(queue_.begin()),
        std::make_move_iterator(queue_.end()));
    queue_.clear();
    g_depth.set(0.0);

    // Warm the compile cache for every distinct pending circuit
    // concurrently before the (sequential) execution loop starts.
    precompileQueued(jobs);

    std::vector<JobOutcome> outcomes = std::move(shedOutcomes_);
    shedOutcomes_.clear();
    outcomes.reserve(outcomes.size() + jobs.size());
    long seq = 0;

    if (pool_ == nullptr) {
        // Highest priority first; submission order among equals. The
        // sort key is total, so the execution order — and every
        // counter derived from it — is deterministic.
        std::sort(jobs.begin(), jobs.end(),
                  [](const PendingJob &a, const PendingJob &b) {
                      if (a.request.priority != b.request.priority)
                          return a.request.priority >
                                 b.request.priority;
                      return a.id < b.id;
                  });
        for (PendingJob &job : jobs) {
            JobOutcome out = executeJob(job);
            out.drainSeq = seq++;
            outcomes.push_back(std::move(out));
        }
    } else {
        // Weighted-fair interleave across tenants: each dequeue goes
        // to the tenant with the smallest virtual finish time
        // (jobs served / weight; ties to the lexicographically first
        // tenant), priority order within the tenant. A heavy tenant
        // gets proportionally more slots but can never lock the
        // lighter ones out of the drain.
        std::map<std::string, std::deque<PendingJob>> lanes;
        {
            std::sort(jobs.begin(), jobs.end(),
                      [](const PendingJob &a, const PendingJob &b) {
                          if (a.request.priority !=
                              b.request.priority)
                              return a.request.priority >
                                     b.request.priority;
                          return a.id < b.id;
                      });
            for (PendingJob &job : jobs)
                lanes[job.request.tenant].push_back(std::move(job));
        }
        std::map<std::string, long> served;

        // Give quarantined members a recovery pump before routing —
        // probes, not scheduled jobs, are their way back in.
        pool_->pumpProbes();

        while (!lanes.empty()) {
            auto next = lanes.end();
            double nextFinish = 0.0;
            for (auto it = lanes.begin(); it != lanes.end(); ++it) {
                const double weight =
                    tenantQuota(it->first).weight;
                const double finish =
                    static_cast<double>(served[it->first] + 1) /
                    weight;
                if (next == lanes.end() || finish < nextFinish) {
                    next = it;
                    nextFinish = finish;
                }
            }
            PendingJob job = std::move(next->second.front());
            next->second.pop_front();
            ++served[next->first];
            if (next->second.empty())
                lanes.erase(next);

            JobOutcome out = executeFleetJob(job);
            out.drainSeq = seq++;
            outcomes.push_back(std::move(out));
            pool_->pumpProbes();
        }
    }

    std::sort(outcomes.begin(), outcomes.end(),
              [](const JobOutcome &a, const JobOutcome &b) {
                  return a.id < b.id;
              });

    // End-of-drain persistence flush: newly derived propagators reach
    // disk at a deterministic point, so a process that exits after a
    // drain leaves a warm cache behind. Flush failures are structured
    // but non-fatal — the cache is an accelerator, never a
    // correctness dependency.
    flushPersistence();
    return outcomes;
}

} // namespace qpulse
