#include "service/execution_service.h"

#include <algorithm>
#include <chrono>
#include <iterator>

#include "common/env.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

namespace {

/** Wall-clock microseconds since `t0` (histogram-only; not counted). */
double
wallUsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

ExecutionService::ExecutionService(
    std::shared_ptr<const PulseBackend> backend, PulseSimulator sim,
    ServicePolicy policy)
    : backend_(std::move(backend)), sim_(std::move(sim)),
      policy_(policy),
      capacity_(policy.queueCapacity != 0
                    ? policy.queueCapacity
                    : static_cast<std::size_t>(envLong(
                          "QPULSE_SERVICE_QUEUE", 32, 1, 4096))),
      executor_(backend_, policy.retry, policy.watchdog, policy.degrade)
{
}

CircuitBreaker &
ExecutionService::breaker(const std::string &backendName)
{
    auto it = breakers_.find(backendName);
    if (it == breakers_.end())
        it = breakers_
                 .emplace(backendName, CircuitBreaker(policy_.breaker))
                 .first;
    return it->second;
}

void
ExecutionService::noteTerminal(const Status &status, bool /*executed*/)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_completed =
        registry.counter("service.completed");
    static telemetry::Counter &c_cancelled =
        registry.counter("service.cancelled");
    static telemetry::Counter &c_deadline =
        registry.counter("service.deadline_exceeded");
    static telemetry::Counter &c_failed =
        registry.counter("service.failed");
    switch (status.code()) {
      case ErrorCode::Ok:
        ++stats_.completed;
        c_completed.increment();
        break;
      case ErrorCode::Cancelled:
        ++stats_.cancelled;
        c_cancelled.increment();
        break;
      case ErrorCode::DeadlineExceeded:
        ++stats_.deadlineExceeded;
        c_deadline.increment();
        break;
      default:
        ++stats_.failed;
        c_failed.increment();
        break;
    }
}

Status
ExecutionService::submit(JobRequest request)
{
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_submitted =
        registry.counter("service.submitted");
    static telemetry::Counter &c_admitted =
        registry.counter("service.admitted");
    static telemetry::Counter &c_rejected =
        registry.counter("service.rejected");
    static telemetry::Counter &c_shed =
        registry.counter("service.shed");
    static telemetry::Gauge &g_depth =
        registry.gauge("service.queue_depth");

    ++stats_.submitted;
    c_submitted.increment();

    // A job whose token/deadline already fired never takes a slot.
    if (Status gate = request.deadline.check(request.token);
        !gate.ok()) {
        noteTerminal(gate, /*executed=*/false);
        return gate;
    }

    if (queue_.size() >= capacity_) {
        // Shed candidate: the lowest-priority queued job; among ties
        // the most recently submitted loses (earlier submissions of
        // equal priority have waited longer and keep their claim).
        auto victim = queue_.end();
        for (auto it = queue_.begin(); it != queue_.end(); ++it)
            if (victim == queue_.end() ||
                it->request.priority < victim->request.priority ||
                (it->request.priority == victim->request.priority &&
                 it->id > victim->id))
                victim = it;
        if (victim == queue_.end() ||
            victim->request.priority >= request.priority) {
            ++stats_.rejected;
            c_rejected.increment();
            return Status::error(
                ErrorCode::ResourceExhausted,
                "queue full (" + std::to_string(capacity_) +
                    " jobs) and priority " +
                    std::to_string(request.priority) +
                    " does not outrank any queued job");
        }
        JobOutcome out;
        out.id = victim->id;
        out.key = victim->request.key;
        out.priority = victim->request.priority;
        out.shed = true;
        out.status = Status::error(
            ErrorCode::ResourceExhausted,
            "shed by admission control: displaced by a priority-" +
                std::to_string(request.priority) + " job");
        shedOutcomes_.push_back(std::move(out));
        queue_.erase(victim);
        ++stats_.shed;
        c_shed.increment();
    }

    PendingJob job;
    job.id = nextId_++;
    job.request = std::move(request);
    queue_.push_back(std::move(job));
    ++stats_.admitted;
    c_admitted.increment();
    g_depth.set(static_cast<double>(queue_.size()));
    return Status::okStatus();
}

JobOutcome
ExecutionService::executeJob(PendingJob &job)
{
    telemetry::TraceSpan span("service.job");
    telemetry::MetricsRegistry &registry =
        telemetry::MetricsRegistry::global();
    static telemetry::Counter &c_fastfail =
        registry.counter("service.breaker_fastfail");
    static telemetry::Histogram &h_wall =
        registry.histogram("service.job.wall_us");
    const auto t0 = std::chrono::steady_clock::now();

    JobOutcome out;
    out.id = job.id;
    out.key = job.request.key;
    out.priority = job.request.priority;

    // Gate 1: a cancelled or expired job terminates without touching
    // the backend (and without charging the breaker either way).
    if (Status gate =
            job.request.deadline.check(job.request.token);
        !gate.ok()) {
        out.status = std::move(gate);
        noteTerminal(out.status, /*executed=*/false);
        h_wall.observe(wallUsSince(t0));
        return out;
    }

    // Gate 2: the backend's circuit breaker. Open = fail fast with a
    // structured `unavailable` instead of burning the retry budget.
    CircuitBreaker &brk = breaker(job.request.backendName);
    telemetry::Gauge &g_state = registry.gauge(
        "service.breaker.state." + job.request.backendName);
    if (!brk.allow()) {
        out.breakerFastFail = true;
        out.status = Status::error(
            ErrorCode::Unavailable,
            "circuit breaker open for backend '" +
                job.request.backendName + "': failing fast");
        ++stats_.breakerFastFails;
        c_fastfail.increment();
        g_state.set(brk.stateValue());
        h_wall.observe(wallUsSince(t0));
        return out;
    }

    ResilientRequest request;
    request.schedule = job.request.schedule;
    request.key = job.request.key;
    request.fallback = job.request.fallback;
    request.baselineProxy = job.request.baselineProxy;

    PulseShotOptions opts;
    opts.shots = job.request.shots;
    opts.seed = job.request.seed;
    opts.maxThreads = policy_.maxThreads;
    opts.token = job.request.token;
    opts.deadline = job.request.deadline;

    out.execution = executor_.run(sim_, request, opts);
    out.executed = true;
    out.status = out.execution.status;

    // Breaker accounting: backend-health outcomes only. A deadline
    // expiry counts as a failure — a healthy backend finishes inside
    // its budget, and a wedged one (100% timeouts) must trip the
    // breaker so the rest of the queue fails fast instead of timing
    // out job by job. Cancellation and validation rejects say nothing
    // about backend health and record neither.
    switch (out.status.code()) {
      case ErrorCode::Ok:
        brk.recordSuccess();
        break;
      case ErrorCode::TransientFailure:
      case ErrorCode::Timeout:
      case ErrorCode::RetriesExhausted:
      case ErrorCode::DeadlineExceeded:
        brk.recordFailure();
        break;
      default:
        break;
    }
    g_state.set(brk.stateValue());
    noteTerminal(out.status, /*executed=*/true);
    h_wall.observe(wallUsSince(t0));
    return out;
}

std::vector<JobOutcome>
ExecutionService::drain()
{
    static telemetry::Gauge &g_depth =
        telemetry::MetricsRegistry::global().gauge(
            "service.queue_depth");

    std::vector<PendingJob> jobs(
        std::make_move_iterator(queue_.begin()),
        std::make_move_iterator(queue_.end()));
    queue_.clear();
    g_depth.set(0.0);

    // Highest priority first; submission order among equals. The sort
    // key is total, so the execution order — and every counter derived
    // from it — is deterministic.
    std::sort(jobs.begin(), jobs.end(),
              [](const PendingJob &a, const PendingJob &b) {
                  if (a.request.priority != b.request.priority)
                      return a.request.priority > b.request.priority;
                  return a.id < b.id;
              });

    std::vector<JobOutcome> outcomes = std::move(shedOutcomes_);
    shedOutcomes_.clear();
    outcomes.reserve(outcomes.size() + jobs.size());
    for (PendingJob &job : jobs)
        outcomes.push_back(executeJob(job));

    std::sort(outcomes.begin(), outcomes.end(),
              [](const JobOutcome &a, const JobOutcome &b) {
                  return a.id < b.id;
              });
    return outcomes;
}

} // namespace qpulse
