/**
 * @file
 * Per-backend circuit breaker for the execution service.
 *
 * A wedged backend — 100% timeouts, every attempt burned — must not be
 * allowed to eat every queued job's retry budget. The breaker watches
 * the failure rate over a sliding window of recent executions and trips
 * Open after the rate crosses the policy threshold; while Open, jobs
 * fail fast with a structured `unavailable` Status instead of running
 * the full retry loop. After a cooldown the breaker goes Half-Open and
 * lets probe jobs through: a streak of successes closes it, a probe
 * failure re-opens it.
 *
 * Determinism: the cooldown is counted in *denied allow() calls*, not
 * wall time, so the breaker's state trajectory — and every counter
 * derived from it — is a pure function of the job sequence, bit-
 * identical across QPULSE_THREADS settings. The class is sequential
 * (one breaker per backend, driven by the service's sequential drain
 * loop) and deliberately unsynchronized.
 */
#ifndef QPULSE_SERVICE_CIRCUIT_BREAKER_H
#define QPULSE_SERVICE_CIRCUIT_BREAKER_H

#include <cstdint>
#include <deque>

#include "common/status.h"

namespace qpulse {

/** The classic three-state breaker. */
enum class BreakerState
{
    Closed,  ///< Healthy: every job passes.
    Open,    ///< Tripped: jobs fail fast with `unavailable`.
    HalfOpen ///< Probing: jobs pass; outcomes decide open vs closed.
};

/** Stable lower-case name ("closed" / "open" / "half-open"). */
const char *breakerStateName(BreakerState state);

struct CircuitBreakerPolicy
{
    /** Sliding window of recent recorded outcomes. */
    int window = 8;
    /** Outcomes required in the window before the rate is evaluated. */
    int minSamples = 4;
    /** Failure rate (failures / samples) at which the breaker trips. */
    double openFailureRate = 0.5;
    /**
     * allow() calls denied while Open before the next call becomes a
     * Half-Open probe. Counted in calls, not wall time, so breaker
     * trajectories replay deterministically.
     */
    int cooldownDenials = 2;
    /** Consecutive probe successes that close a Half-Open breaker. */
    int halfOpenSuccesses = 2;
};

/**
 * Structured validation of a breaker policy. Degenerate configs —
 * a breaker that can never open (openFailureRate > 1, minSamples >
 * window) or never close (non-positive halfOpenSuccesses) — are
 * rejected with an `invalid-argument` Status naming the field, so a
 * service refuses to start with a breaker that silently can't do its
 * job. CircuitBreaker's constructor throws the same Status as a
 * StatusError; validate first when a throw is unwanted.
 */
Status validateBreakerPolicy(const CircuitBreakerPolicy &policy);

class CircuitBreaker;

/**
 * The structured fast-fail message for a job denied by `breaker`:
 * names the backend, the breaker state and — while Open — how many
 * more denied jobs remain before the half-open probe, so an
 * `unavailable` Status tells the caller *which* backend refused and
 * how far through its cooldown it is. Call after allow() returned
 * false (the denial just counted is already reflected).
 */
std::string breakerDenialMessage(const std::string &backendName,
                                 const CircuitBreaker &breaker);

class CircuitBreaker
{
  public:
    /** Throws StatusError(validateBreakerPolicy(policy)) if invalid. */
    explicit CircuitBreaker(CircuitBreakerPolicy policy = {});

    /**
     * Gate one job. Closed/Half-Open: true. Open: counts a denial and
     * returns false until the cooldown is spent, then transitions to
     * Half-Open and admits the call as a probe.
     */
    bool allow();

    /** Record the gated job's outcome (only for jobs that ran). */
    void recordSuccess();
    void recordFailure();

    BreakerState state() const { return state_; }

    /** Numeric state for the telemetry gauge (0/1/2 as declared). */
    double stateValue() const
    {
        return static_cast<double>(static_cast<int>(state_));
    }

    /** Lifetime count of fast-failed (denied) allow() calls. */
    std::uint64_t denials() const { return denials_; }

    /**
     * Denied allow() calls still owed before an Open breaker admits
     * its Half-Open probe (0 unless Open). Surfaced so fast-fail
     * Status messages and cooldown-accounting tests can report how
     * far through the cooldown a backend is.
     */
    int
    cooldownRemaining() const
    {
        if (state_ != BreakerState::Open)
            return 0;
        return policy_.cooldownDenials - cooldownSpent_;
    }

    /** Lifetime count of Closed->Open transitions. */
    std::uint64_t trips() const { return trips_; }

  private:
    void record(bool failure);

    CircuitBreakerPolicy policy_;
    BreakerState state_ = BreakerState::Closed;
    std::deque<bool> window_; ///< true = failure.
    int cooldownSpent_ = 0;   ///< Denials since the breaker opened.
    int probeStreak_ = 0;     ///< Consecutive Half-Open successes.
    std::uint64_t denials_ = 0;
    std::uint64_t trips_ = 0;
};

} // namespace qpulse

#endif // QPULSE_SERVICE_CIRCUIT_BREAKER_H
