/**
 * @file
 * telemetry::Report: one-call snapshot of the metrics registry (plus
 * tracer health), renderable as human-readable text for bench stdout
 * and as a JSON object for the machine-readable BENCH_*.json files —
 * every bench gains a "telemetry" section through this type (see
 * bench/bench_util.h).
 */
#ifndef QPULSE_TELEMETRY_REPORT_H
#define QPULSE_TELEMETRY_REPORT_H

#include <cstdint>
#include <string>

#include "telemetry/metrics.h"

namespace qpulse {
namespace telemetry {

/** A captured view of everything the telemetry subsystem knows. */
struct Report
{
    MetricsSnapshot metrics;
    std::uint64_t traceEventsDropped = 0;

    /** Snapshot the global registry and tracer. */
    static Report capture();

    /**
     * Pretty-printed JSON object: {"counters": {...}, "gauges":
     * {...}, "histograms": {...}, "trace_events_dropped": N}. Every
     * line after the first is prefixed with `base_indent` so the
     * object can be embedded at any nesting depth of a larger JSON
     * document. Counters are emitted name-sorted, so two captures of
     * identical counter states render identically.
     */
    std::string toJson(const std::string &base_indent = "") const;

    /** Compact name=value summary for bench stdout. */
    std::string toText() const;
};

} // namespace telemetry
} // namespace qpulse

#endif // QPULSE_TELEMETRY_REPORT_H
