#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>

namespace qpulse {
namespace telemetry {

namespace {

/** Thread identity registered through setCurrentThreadInfo. */
thread_local std::uint32_t tls_tid = 0;
thread_local std::string tls_thread_name;

/** Minimal JSON string escape (names are identifiers, but be safe). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

/**
 * Construct the singleton during static initialization so a
 * QPULSE_TRACE set in the environment takes effect before any span
 * runs, and the atexit flush is registered early (it then runs after
 * main's locals are gone but before static destruction).
 */
[[maybe_unused]] const bool g_tracer_boot =
    (Tracer::instance(), true);

} // namespace

std::atomic<bool> Tracer::s_enabled{false};

/**
 * Fixed-capacity ring of completed events. The per-thread mutex is
 * uncontended except while a drain is merging, so the record path is
 * a stamp + lock + store.
 */
struct Tracer::ThreadBuffer
{
    std::mutex mutex;
    std::vector<TraceEvent> events; ///< Ring storage.
    std::size_t next = 0;           ///< Ring write cursor.
    std::size_t count = 0;          ///< Resident events (<= capacity).
    std::uint64_t dropped = 0;      ///< Overwritten since last drain.
    std::uint32_t tid = 0;
    std::string name;
};

Tracer::Tracer()
{
    const char *depth = std::getenv("QPULSE_TRACE_BUFFER");
    if (depth != nullptr && depth[0] != '\0') {
        char *end = nullptr;
        const long parsed = std::strtol(depth, &end, 10);
        if (end != nullptr && *end == '\0' && parsed >= 1)
            capacity_ = static_cast<std::size_t>(parsed);
        else
            std::fprintf(stderr,
                         "qpulse warning: ignoring invalid "
                         "QPULSE_TRACE_BUFFER='%s'\n",
                         depth);
    }

    const char *path = std::getenv("QPULSE_TRACE");
    if (path != nullptr && path[0] != '\0') {
        const std::string trace_path(path);
        const bool jsonl = trace_path.size() >= 6 &&
            trace_path.compare(trace_path.size() - 6, 6, ".jsonl") == 0;
        configure(trace_path, jsonl ? TraceFormat::Jsonl
                                    : TraceFormat::ChromeJson);
        std::atexit([] { Tracer::instance().flush(); });
    }
}

Tracer &
Tracer::instance()
{
    // Leaked on purpose: worker threads and atexit handlers may record
    // or flush after static destructors would have torn it down.
    static Tracer *tracer = new Tracer();
    return *tracer;
}

void
Tracer::setEnabled(bool on)
{
    s_enabled.store(on, std::memory_order_relaxed);
}

void
Tracer::configure(const std::string &path, TraceFormat format)
{
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        path_ = path;
        format_ = format;
    }
    setEnabled(true);
}

Tracer::ThreadBuffer &
Tracer::threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
        auto fresh = std::make_shared<ThreadBuffer>();
        fresh->events.resize(capacity_);
        fresh->tid = tls_tid;
        fresh->name = tls_thread_name;
        std::lock_guard<std::mutex> lock(registryMutex_);
        buffers_.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

void
Tracer::record(const char *name, const char *category,
               std::uint64_t start_ns, std::uint64_t duration_ns)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.startNs = start_ns;
    event.durationNs = duration_ns;
    event.tid = tls_tid;
    event.seq = seq_.fetch_add(1, std::memory_order_relaxed);

    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    // Pick up a thread registration that happened after the buffer
    // was created (setCurrentThreadInfo updates tls state only).
    buffer.tid = tls_tid;
    if (buffer.name != tls_thread_name)
        buffer.name = tls_thread_name;
    const std::size_t capacity = buffer.events.size();
    buffer.events[buffer.next] = event;
    buffer.next = (buffer.next + 1) % capacity;
    if (buffer.count < capacity)
        ++buffer.count;
    else
        ++buffer.dropped;
}

std::vector<TraceEvent>
Tracer::drain()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        buffers = buffers_;
    }
    std::vector<TraceEvent> merged;
    for (const auto &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        const std::size_t capacity = buffer->events.size();
        // Ring order: oldest resident event first.
        const std::size_t first =
            (buffer->next + capacity - buffer->count) % capacity;
        for (std::size_t k = 0; k < buffer->count; ++k)
            merged.push_back(
                buffer->events[(first + k) % capacity]);
        buffer->count = 0;
        buffer->next = 0;
        buffer->dropped = 0;
    }
    std::sort(merged.begin(), merged.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.startNs != b.startNs ? a.startNs < b.startNs
                                                : a.seq < b.seq;
              });
    return merged;
}

void
Tracer::clear()
{
    drain();
}

std::uint64_t
Tracer::dropped() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        buffers = buffers_;
    }
    std::uint64_t total = 0;
    for (const auto &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        total += buffer->dropped;
    }
    return total;
}

void
Tracer::flush()
{
    std::string path;
    TraceFormat format;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        path = path_;
        format = format_;
    }
    if (path.empty())
        return;
    const std::vector<TraceEvent> events = drain();
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr,
                     "qpulse warning: QPULSE_TRACE: cannot open '%s'\n",
                     path.c_str());
        return;
    }
    if (format == TraceFormat::Jsonl)
        writeJsonl(out, events);
    else
        writeChromeTrace(out, events);
}

void
Tracer::writeChromeTrace(std::ostream &os,
                         const std::vector<TraceEvent> &events)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;

    // One metadata row per tid labels the track in chrome://tracing /
    // Perfetto ("main", "worker-3", ...).
    std::map<std::uint32_t, std::string> names;
    for (const TraceEvent &event : events)
        if (names.find(event.tid) == names.end())
            names[event.tid] = "";
    {
        std::lock_guard<std::mutex> lock(
            Tracer::instance().registryMutex_);
        for (const auto &buffer : Tracer::instance().buffers_) {
            const auto it = names.find(buffer->tid);
            if (it != names.end() && it->second.empty())
                it->second = buffer->name;
        }
    }
    char line[256];
    for (const auto &entry : names) {
        const std::string label = entry.second.empty()
            ? (entry.first == 0 ? "main"
                                : "thread-" + std::to_string(entry.first))
            : entry.second;
        std::snprintf(line, sizeof line,
                      "{\"ph\":\"M\",\"name\":\"thread_name\","
                      "\"pid\":1,\"tid\":%u,"
                      "\"args\":{\"name\":\"%s\"}}",
                      entry.first, jsonEscape(label).c_str());
        os << (first ? "" : ",\n") << line;
        first = false;
    }

    for (const TraceEvent &event : events) {
        // ts/dur in microseconds, the unit trace_event expects.
        std::snprintf(line, sizeof line,
                      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                      "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                      jsonEscape(event.name).c_str(),
                      jsonEscape(event.category).c_str(),
                      static_cast<double>(event.startNs) / 1000.0,
                      static_cast<double>(event.durationNs) / 1000.0,
                      event.tid);
        os << (first ? "" : ",\n") << line;
        first = false;
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void
Tracer::writeJsonl(std::ostream &os,
                   const std::vector<TraceEvent> &events)
{
    char line[256];
    for (const TraceEvent &event : events) {
        std::snprintf(line, sizeof line,
                      "{\"name\":\"%s\",\"cat\":\"%s\","
                      "\"ts_ns\":%llu,\"dur_ns\":%llu,\"tid\":%u}",
                      jsonEscape(event.name).c_str(),
                      jsonEscape(event.category).c_str(),
                      static_cast<unsigned long long>(event.startNs),
                      static_cast<unsigned long long>(event.durationNs),
                      event.tid);
        os << line << "\n";
    }
}

std::uint64_t
Tracer::nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
setCurrentThreadInfo(std::uint32_t tid, const std::string &name)
{
    tls_tid = tid;
    tls_thread_name = name;
}

std::uint32_t
currentThreadId()
{
    return tls_tid;
}

} // namespace telemetry
} // namespace qpulse
