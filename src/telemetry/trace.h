/**
 * @file
 * Low-overhead span tracer for the compile -> simulate -> readout
 * pipeline.
 *
 * A TraceSpan is an RAII marker: construction stamps a monotonic-clock
 * start, destruction records one completed TraceEvent into the calling
 * thread's ring buffer. Buffers are per-thread (no contention on the
 * hot path beyond one uncontended mutex) and merged at drain/flush
 * time into a deterministic (startNs, seq)-sorted event list.
 *
 * Tracing is disabled by default; the *entire* disabled cost of a span
 * is one relaxed atomic load and a branch, so instrumentation can stay
 * compiled into release hot paths (the < 2 % bench budget in
 * docs/OBSERVABILITY.md). It is enabled either programmatically
 * (Tracer::setEnabled, tests) or by the QPULSE_TRACE=<path>
 * environment variable, in which case the process flushes the buffer
 * to <path> at exit: a ".jsonl" suffix selects the compact JSONL
 * exporter, anything else the Chrome trace_event JSON format that
 * chrome://tracing and Perfetto load directly.
 *
 * Span names must be string literals (or otherwise outlive the
 * tracer): events store the pointer, never a copy, so the record path
 * does not allocate.
 *
 * This library sits below qpulse_common (it links nothing but the
 * threads runtime), so even the ThreadPool can be instrumented.
 * Thread identity is an explicit hook: ThreadPool workers call
 * setCurrentThreadInfo with their stable worker id; unregistered
 * threads get tid 0 ("main").
 */
#ifndef QPULSE_TELEMETRY_TRACE_H
#define QPULSE_TELEMETRY_TRACE_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qpulse {
namespace telemetry {

/** One completed span, as stored in the ring buffers. */
struct TraceEvent
{
    const char *name = "";
    const char *category = "qpulse";
    std::uint64_t startNs = 0;    ///< Monotonic-clock start.
    std::uint64_t durationNs = 0; ///< Span duration.
    std::uint32_t tid = 0;        ///< Stable thread id (0 = main).
    std::uint64_t seq = 0;        ///< Global completion order.
};

/** Export flavour, derived from the QPULSE_TRACE path suffix. */
enum class TraceFormat
{
    ChromeJson, ///< {"traceEvents": [...]} for chrome://tracing.
    Jsonl,      ///< One compact JSON object per line.
};

/**
 * Process-wide trace collector. All methods are thread-safe.
 */
class Tracer
{
  public:
    /**
     * Default events retained per thread before the ring overwrites
     * its oldest entry; QPULSE_TRACE_BUFFER overrides (long traced
     * runs — a full bench under QPULSE_TRACE — need a deeper ring to
     * keep their earliest compile-stage spans).
     */
    static constexpr std::size_t kThreadBufferCapacity = 16384;

    /** The per-thread ring capacity in effect for this process. */
    std::size_t threadBufferCapacity() const { return capacity_; }

    /** The process-wide tracer (constructed on first use, leaked). */
    static Tracer &instance();

    /** The single-branch gate every TraceSpan checks first. */
    static bool enabled()
    {
        return s_enabled.load(std::memory_order_relaxed);
    }

    /** Enable/disable collection (does not touch the output path). */
    void setEnabled(bool on);

    /** Set the flush destination and enable collection. */
    void configure(const std::string &path, TraceFormat format);

    const std::string &path() const { return path_; }
    TraceFormat format() const { return format_; }

    /**
     * Record one completed span on the calling thread's buffer.
     * No-op when disabled. Name/category must outlive the tracer.
     */
    void record(const char *name, const char *category,
                std::uint64_t start_ns, std::uint64_t duration_ns);

    /**
     * Remove and return every buffered event, merged across threads
     * and sorted by (startNs, seq) so the export is deterministic for
     * a fixed set of events.
     */
    std::vector<TraceEvent> drain();

    /** Drop all buffered events (tests). */
    void clear();

    /** Events lost to ring overwrite since the last drain/clear. */
    std::uint64_t dropped() const;

    /**
     * Drain and write to the configured path in the configured
     * format. No-op without a path. Registered with atexit when
     * QPULSE_TRACE enables tracing, so instrumented binaries emit
     * their trace without any per-binary code.
     */
    void flush();

    /** Chrome trace_event JSON ("X" complete events + thread names). */
    static void writeChromeTrace(std::ostream &os,
                                 const std::vector<TraceEvent> &events);

    /** Compact JSONL: one {"name",...} object per line. */
    static void writeJsonl(std::ostream &os,
                           const std::vector<TraceEvent> &events);

    /** Monotonic clock, ns. */
    static std::uint64_t nowNs();

  private:
    Tracer();

    struct ThreadBuffer;
    ThreadBuffer &threadBuffer();

    static std::atomic<bool> s_enabled;

    mutable std::mutex registryMutex_;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
    std::atomic<std::uint64_t> seq_{0};
    std::string path_;
    TraceFormat format_ = TraceFormat::ChromeJson;
    std::size_t capacity_ = kThreadBufferCapacity;
};

/**
 * RAII span: alive range = [construction, destruction). Constructing
 * one while tracing is disabled costs a single atomic load.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name,
                       const char *category = "qpulse")
    {
        if (Tracer::enabled()) {
            name_ = name;
            category_ = category;
            startNs_ = Tracer::nowNs();
        }
    }

    ~TraceSpan()
    {
        if (name_ != nullptr)
            Tracer::instance().record(
                name_, category_, startNs_,
                Tracer::nowNs() - startNs_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_ = nullptr;
    const char *category_ = nullptr;
    std::uint64_t startNs_ = 0;
};

/**
 * Register the calling thread's stable id/name with the tracer (the
 * ThreadPool hook: workers pass their currentWorkerId()). The name is
 * copied; it labels the tid row in chrome://tracing.
 */
void setCurrentThreadInfo(std::uint32_t tid, const std::string &name);

/** The id registered for this thread (0 when never registered). */
std::uint32_t currentThreadId();

} // namespace telemetry
} // namespace qpulse

#endif // QPULSE_TELEMETRY_TRACE_H
