#include "telemetry/report.h"

#include <cstdio>
#include <sstream>

#include "telemetry/trace.h"

namespace qpulse {
namespace telemetry {

namespace {

std::string
fmtDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.3f", value);
    return buf;
}

} // namespace

Report
Report::capture()
{
    Report report;
    report.metrics = MetricsRegistry::global().snapshot();
    report.traceEventsDropped = Tracer::instance().dropped();
    return report;
}

std::string
Report::toJson(const std::string &base_indent) const
{
    const std::string ind = base_indent + "  ";
    const std::string ind2 = ind + "  ";
    std::ostringstream os;
    os << "{\n";

    os << ind << "\"counters\": {";
    for (std::size_t i = 0; i < metrics.counters.size(); ++i)
        os << (i == 0 ? "\n" : ",\n") << ind2 << "\""
           << metrics.counters[i].first
           << "\": " << metrics.counters[i].second;
    os << (metrics.counters.empty() ? "" : "\n" + ind) << "},\n";

    os << ind << "\"gauges\": {";
    for (std::size_t i = 0; i < metrics.gauges.size(); ++i)
        os << (i == 0 ? "\n" : ",\n") << ind2 << "\""
           << metrics.gauges[i].first
           << "\": " << fmtDouble(metrics.gauges[i].second);
    os << (metrics.gauges.empty() ? "" : "\n" + ind) << "},\n";

    os << ind << "\"histograms\": {";
    for (std::size_t i = 0; i < metrics.histograms.size(); ++i) {
        const auto &entry = metrics.histograms[i];
        const Histogram::Snapshot &snap = entry.second;
        os << (i == 0 ? "\n" : ",\n") << ind2 << "\"" << entry.first
           << "\": {\"count\": " << snap.count
           << ", \"sum\": " << fmtDouble(snap.sum)
           << ", \"mean\": " << fmtDouble(snap.mean())
           << ", \"p50\": " << fmtDouble(snap.p50())
           << ", \"p95\": " << fmtDouble(snap.p95())
           << ", \"p99\": " << fmtDouble(snap.p99()) << "}";
    }
    os << (metrics.histograms.empty() ? "" : "\n" + ind) << "},\n";

    os << ind << "\"trace_events_dropped\": " << traceEventsDropped
       << "\n";
    os << base_indent << "}";
    return os.str();
}

std::string
Report::toText() const
{
    std::ostringstream os;
    os << "telemetry:";
    if (metrics.counters.empty())
        os << " (no counters)";
    for (const auto &entry : metrics.counters)
        os << "\n  " << entry.first << " = " << entry.second;
    for (const auto &entry : metrics.histograms) {
        const Histogram::Snapshot &snap = entry.second;
        os << "\n  " << entry.first << " (us): count="
           << snap.count << " mean=" << fmtDouble(snap.mean())
           << " p50=" << fmtDouble(snap.p50())
           << " p95=" << fmtDouble(snap.p95())
           << " p99=" << fmtDouble(snap.p99());
    }
    return os.str();
}

} // namespace telemetry
} // namespace qpulse
