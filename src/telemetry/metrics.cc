#include "telemetry/metrics.h"

#include <algorithm>

namespace qpulse {
namespace telemetry {

namespace {

/** fetch_add for atomic<double> (not guaranteed lock-free pre-C++20). */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1)
{
    std::sort(bounds_.begin(), bounds_.end());
}

void
Histogram::observe(double value)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t index =
        static_cast<std::size_t>(it - bounds_.begin());
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, value);
}

double
Histogram::Snapshot::percentile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const std::uint64_t in_bucket = buckets[i];
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(cumulative + in_bucket) >= rank) {
            const double lower = i == 0 ? 0.0 : bounds[i - 1];
            if (i >= bounds.size())
                return lower; // Overflow bucket: no finite upper edge.
            const double upper = bounds[i];
            const double fraction =
                (rank - static_cast<double>(cumulative)) /
                static_cast<double>(in_bucket);
            return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
        }
        cumulative += in_bucket;
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.bounds = bounds_;
    snap.buckets.reserve(buckets_.size());
    for (const auto &bucket : buckets_)
        snap.buckets.push_back(
            bucket.load(std::memory_order_relaxed));
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double> &
defaultLatencyBoundsUs()
{
    static const std::vector<double> bounds = {
        1.0,     2.0,     5.0,     10.0,    20.0,    50.0,
        100.0,   200.0,   500.0,   1000.0,  2000.0,  5000.0,
        10000.0, 20000.0, 50000.0, 100000.0, 200000.0, 500000.0,
        1000000.0,
    };
    return bounds;
}

std::uint64_t
MetricsSnapshot::counterValue(const std::string &name) const
{
    for (const auto &entry : counters)
        if (entry.first == name)
            return entry.second;
    return 0;
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked for the same reason as the Tracer: worker threads may
    // still bump counters while static destructors run.
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &upper_bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(upper_bounds);
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &entry : counters_)
        snap.counters.emplace_back(entry.first,
                                   entry.second->value());
    for (const auto &entry : gauges_)
        snap.gauges.emplace_back(entry.first, entry.second->value());
    for (const auto &entry : histograms_)
        snap.histograms.emplace_back(entry.first,
                                     entry.second->snapshot());
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &entry : counters_)
        entry.second->reset();
    for (const auto &entry : gauges_)
        entry.second->reset();
    for (const auto &entry : histograms_)
        entry.second->reset();
}

} // namespace telemetry
} // namespace qpulse
