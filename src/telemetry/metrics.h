/**
 * @file
 * Process-wide metrics registry: named monotonic counters, gauges and
 * fixed-bucket latency histograms, exported as one deterministic
 * snapshot (telemetry/report.h) so every subsystem — the propagator
 * cache, the thread pool, the compiler, the resilient executor —
 * reports through a single sink instead of scattering bespoke stat
 * structs.
 *
 * Handles returned by MetricsRegistry are stable for the life of the
 * process (values live behind unique_ptr; reset() zeroes in place and
 * never erases), so hot paths cache a reference once:
 *
 *   static telemetry::Counter &hits =
 *       telemetry::MetricsRegistry::global().counter(
 *           "pulsesim.cache.hits");
 *   hits.increment();
 *
 * and pay one relaxed atomic add per event.
 *
 * Determinism contract: counters must count *work*, never *scheduling*
 * — anything incremented here has to reach the same value whatever
 * QPULSE_THREADS is (see docs/OBSERVABILITY.md). Histogram bucket
 * counts share that property; their sums are wall-clock and do not.
 */
#ifndef QPULSE_TELEMETRY_METRICS_H
#define QPULSE_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qpulse {
namespace telemetry {

/** Monotonic counter (relaxed atomic add). */
class Counter
{
  public:
    void add(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    void increment() { add(1); }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-writer-wins instantaneous value. */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram with percentile snapshots.
 *
 * Buckets are defined by ascending finite upper bounds plus an
 * implicit overflow bucket; observation i lands in the first bucket
 * whose bound is >= the value. Percentiles interpolate linearly
 * inside the selected bucket (the overflow bucket reports its lower
 * bound), so for a fixed multiset of observations the snapshot is
 * exact and reproducible.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double value);

    struct Snapshot
    {
        std::vector<double> bounds;         ///< Finite upper bounds.
        std::vector<std::uint64_t> buckets; ///< bounds.size() + 1.
        std::uint64_t count = 0;
        double sum = 0.0;

        /** Linear-interpolated quantile, q in [0, 1]. */
        double percentile(double q) const;

        double p50() const { return percentile(0.50); }
        double p95() const { return percentile(0.95); }
        double p99() const { return percentile(0.99); }
        double mean() const
        {
            return count == 0 ? 0.0
                              : sum / static_cast<double>(count);
        }
    };

    Snapshot snapshot() const;
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * Log-spaced microsecond latency bounds, 1 us .. 1 s (the default
 * histogram shape for span-duration metrics).
 */
const std::vector<double> &defaultLatencyBoundsUs();

/** Name-sorted point-in-time copy of every registered metric. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

    /** Value of a counter by name (0 when absent). */
    std::uint64_t counterValue(const std::string &name) const;
};

/**
 * The registry. get-or-create lookups take a mutex; returned
 * references stay valid forever, so cache them at call sites.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry every subsystem reports into. */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /**
     * Get-or-create a histogram. Bounds are fixed at creation; later
     * calls with different bounds return the existing instance.
     */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &upper_bounds =
                             defaultLatencyBoundsUs());

    MetricsSnapshot snapshot() const;

    /**
     * Zero every value in place. Handles cached by call sites remain
     * valid — names are never erased.
     */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace telemetry
} // namespace qpulse

#endif // QPULSE_TELEMETRY_METRICS_H
