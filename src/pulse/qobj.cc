#include "pulse/qobj.h"

#include <cctype>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace qpulse {

namespace {

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::setprecision(precision) << value;
    return os.str();
}

/** Minimal JSON scanner for the subset this module emits. */
class JsonScanner
{
  public:
    explicit JsonScanner(const std::string &text) : text_(text) {}

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool peek(char c)
    {
        skipSpace();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    void expect(char c)
    {
        skipSpace();
        qpulseRequire(pos_ < text_.size() && text_[pos_] == c,
                      "qobj parse error: expected '", std::string(1, c),
                      "' at offset ", pos_);
        ++pos_;
    }

    bool tryConsume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"')
            out += text_[pos_++];
        expect('"');
        return out;
    }

    double parseNumber()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        qpulseRequire(pos_ > start, "qobj parse error: expected number "
                                    "at offset ",
                      start);
        return std::stod(text_.substr(start, pos_ - start));
    }

    std::size_t pos() const { return pos_; }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
};

Channel
channelFromString(const std::string &name)
{
    qpulseRequire(name.size() >= 2, "bad channel name \"", name, "\"");
    const std::size_t index = std::stoul(name.substr(1));
    switch (name[0]) {
      case 'd': return driveChannel(index);
      case 'u': return controlChannel(index);
      case 'm': return measureChannel(index);
      case 'a': return acquireChannel(index);
      default:
        qpulseFatal("bad channel name \"", name, "\"");
    }
}

} // namespace

std::string
scheduleToQobjJson(const Schedule &schedule,
                   const QobjWriteOptions &options)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"name\": \""
       << (schedule.name().empty() ? "schedule" : schedule.name())
       << "\",\n";
    os << "  \"duration\": " << schedule.duration() << ",\n";
    os << "  \"instructions\": [\n";

    bool first = true;
    for (const auto &inst : schedule.instructions()) {
        if (!first)
            os << ",\n";
        first = false;
        os << "    {\"t0\": " << inst.startTime << ", \"ch\": \""
           << inst.channel.toString() << "\", ";
        switch (inst.kind) {
          case PulseInstructionKind::Play: {
            os << "\"name\": \"play\", \"pulse\": \""
               << inst.waveform->name() << "\", \"duration\": "
               << inst.duration;
            if (options.includeSamples) {
                os << ", \"samples\": [";
                for (long t = 0; t < inst.waveform->duration(); ++t) {
                    const Complex sample = inst.waveform->sample(t);
                    os << (t ? ", " : "") << "["
                       << fmt(sample.real(), options.precision) << ", "
                       << fmt(sample.imag(), options.precision) << "]";
                }
                os << "]";
            }
            break;
          }
          case PulseInstructionKind::ShiftPhase:
            os << "\"name\": \"fc\", \"phase\": "
               << fmt(inst.phase, options.precision);
            break;
          case PulseInstructionKind::ShiftFrequency:
            os << "\"name\": \"sf\", \"frequency\": "
               << fmt(inst.frequencyGhz, options.precision);
            break;
          case PulseInstructionKind::Delay:
            os << "\"name\": \"delay\", \"duration\": "
               << inst.duration;
            break;
          case PulseInstructionKind::Acquire:
            os << "\"name\": \"acquire\", \"duration\": "
               << inst.duration;
            break;
        }
        os << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

Schedule
scheduleFromQobjJson(const std::string &json)
{
    JsonScanner scanner(json);
    Schedule schedule;

    scanner.expect('{');
    bool done_object = false;
    while (!done_object) {
        const std::string key = scanner.parseString();
        scanner.expect(':');
        if (key == "name") {
            schedule.setName(scanner.parseString());
        } else if (key == "duration") {
            scanner.parseNumber(); // Recomputed from instructions.
        } else if (key == "instructions") {
            scanner.expect('[');
            if (!scanner.tryConsume(']')) {
                do {
                    scanner.expect('{');
                    long t0 = 0, duration = 0;
                    std::string channel_name, inst_name, pulse_name;
                    double phase = 0.0, frequency = 0.0;
                    std::vector<Complex> samples;
                    bool done_inst = false;
                    while (!done_inst) {
                        const std::string field =
                            scanner.parseString();
                        scanner.expect(':');
                        if (field == "t0") {
                            t0 = static_cast<long>(
                                scanner.parseNumber());
                        } else if (field == "ch") {
                            channel_name = scanner.parseString();
                        } else if (field == "name") {
                            inst_name = scanner.parseString();
                        } else if (field == "pulse") {
                            pulse_name = scanner.parseString();
                        } else if (field == "duration") {
                            duration = static_cast<long>(
                                scanner.parseNumber());
                        } else if (field == "phase") {
                            phase = scanner.parseNumber();
                        } else if (field == "frequency") {
                            frequency = scanner.parseNumber();
                        } else if (field == "samples") {
                            scanner.expect('[');
                            if (!scanner.tryConsume(']')) {
                                do {
                                    scanner.expect('[');
                                    const double re =
                                        scanner.parseNumber();
                                    scanner.expect(',');
                                    const double im =
                                        scanner.parseNumber();
                                    scanner.expect(']');
                                    samples.emplace_back(re, im);
                                } while (scanner.tryConsume(','));
                                scanner.expect(']');
                            }
                        } else {
                            qpulseFatal("unknown qobj field \"", field,
                                        "\"");
                        }
                        if (!scanner.tryConsume(','))
                            done_inst = true;
                    }
                    scanner.expect('}');

                    const Channel channel =
                        channelFromString(channel_name);
                    PulseInstruction inst;
                    inst.channel = channel;
                    inst.startTime = t0;
                    if (inst_name == "play") {
                        qpulseRequire(!samples.empty(),
                                      "play instruction without "
                                      "samples (serialise with "
                                      "includeSamples=true to round-"
                                      "trip)");
                        inst.kind = PulseInstructionKind::Play;
                        inst.waveform = std::make_shared<SampledWaveform>(
                            std::move(samples),
                            pulse_name.empty() ? "sampled" : pulse_name);
                        inst.duration = inst.waveform->duration();
                    } else if (inst_name == "fc") {
                        inst.kind = PulseInstructionKind::ShiftPhase;
                        inst.phase = phase;
                    } else if (inst_name == "sf") {
                        inst.kind =
                            PulseInstructionKind::ShiftFrequency;
                        inst.frequencyGhz = frequency;
                    } else if (inst_name == "delay") {
                        inst.kind = PulseInstructionKind::Delay;
                        inst.duration = duration;
                    } else if (inst_name == "acquire") {
                        inst.kind = PulseInstructionKind::Acquire;
                        inst.duration = duration;
                    } else {
                        qpulseFatal("unknown qobj instruction \"",
                                    inst_name, "\"");
                    }
                    schedule.addInstruction(std::move(inst));
                } while (scanner.tryConsume(','));
                scanner.expect(']');
            }
        } else {
            qpulseFatal("unknown qobj key \"", key, "\"");
        }
        if (!scanner.tryConsume(','))
            done_object = true;
    }
    scanner.expect('}');
    return schedule;
}

} // namespace qpulse
