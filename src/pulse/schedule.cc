#include "pulse/schedule.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/status.h"

namespace qpulse {

std::string
Channel::toString() const
{
    switch (kind) {
      case ChannelKind::Drive:   return "d" + std::to_string(index);
      case ChannelKind::Control: return "u" + std::to_string(index);
      case ChannelKind::Measure: return "m" + std::to_string(index);
      case ChannelKind::Acquire: return "a" + std::to_string(index);
    }
    qpulsePanic("unknown channel kind");
}

long
Schedule::duration() const
{
    long latest = 0;
    for (const auto &inst : instructions_)
        latest = std::max(latest, inst.endTime());
    return latest;
}

long
Schedule::channelEndTime(const Channel &channel) const
{
    long latest = 0;
    for (const auto &inst : instructions_)
        if (inst.channel == channel)
            latest = std::max(latest, inst.endTime());
    return latest;
}

std::vector<Channel>
Schedule::channels() const
{
    std::set<Channel> unique;
    for (const auto &inst : instructions_)
        unique.insert(inst.channel);
    return {unique.begin(), unique.end()};
}

void
Schedule::play(const Channel &channel, WaveformPtr waveform)
{
    playAt(channelEndTime(channel), channel, std::move(waveform));
}

void
Schedule::playAt(long start, const Channel &channel, WaveformPtr waveform)
{
    qpulseRequire(waveform != nullptr, "play requires a waveform");
    if (start < 0)
        throw StatusError(Status::error(
            ErrorCode::NegativeTime,
            "play on " + channel.toString() + " starts at t = " +
                std::to_string(start) + " < 0"));
    PulseInstruction inst;
    inst.kind = PulseInstructionKind::Play;
    inst.channel = channel;
    inst.startTime = start;
    inst.duration = waveform->duration();
    inst.waveform = std::move(waveform);
    instructions_.push_back(std::move(inst));
}

void
Schedule::shiftPhase(const Channel &channel, double phase)
{
    PulseInstruction inst;
    inst.kind = PulseInstructionKind::ShiftPhase;
    inst.channel = channel;
    inst.startTime = channelEndTime(channel);
    inst.phase = phase;
    inst.duration = 0;
    instructions_.push_back(inst);
}

void
Schedule::shiftFrequency(const Channel &channel, double freq_ghz)
{
    PulseInstruction inst;
    inst.kind = PulseInstructionKind::ShiftFrequency;
    inst.channel = channel;
    inst.startTime = channelEndTime(channel);
    inst.frequencyGhz = freq_ghz;
    inst.duration = 0;
    instructions_.push_back(inst);
}

void
Schedule::delay(const Channel &channel, long duration)
{
    qpulseRequire(duration >= 0, "delay must be >= 0");
    PulseInstruction inst;
    inst.kind = PulseInstructionKind::Delay;
    inst.channel = channel;
    inst.startTime = channelEndTime(channel);
    inst.duration = duration;
    instructions_.push_back(inst);
}

void
Schedule::acquire(const Channel &channel, long duration)
{
    PulseInstruction inst;
    inst.kind = PulseInstructionKind::Acquire;
    inst.channel = channel;
    inst.startTime = channelEndTime(channel);
    inst.duration = duration;
    instructions_.push_back(inst);
}

void
Schedule::append(const Schedule &other)
{
    // The appended schedule shifts as a rigid block: offset = max over
    // its channels of (our end time on that channel minus its first use
    // of that channel) -- i.e. ASAP while preserving internal alignment.
    long offset = 0;
    for (const auto &channel : other.channels()) {
        long other_first = other.duration();
        for (const auto &inst : other.instructions_)
            if (inst.channel == channel)
                other_first = std::min(other_first, inst.startTime);
        offset = std::max(offset, channelEndTime(channel) - other_first);
    }
    for (const auto &inst : other.instructions_) {
        PulseInstruction copy = inst;
        copy.startTime += offset;
        instructions_.push_back(std::move(copy));
    }
}

void
Schedule::appendBarrier(const Schedule &other)
{
    const long offset = duration();
    for (const auto &inst : other.instructions_) {
        PulseInstruction copy = inst;
        copy.startTime += offset;
        instructions_.push_back(std::move(copy));
    }
}

Schedule
Schedule::shifted(long offset) const
{
    Schedule result(name_);
    for (const auto &inst : instructions_) {
        PulseInstruction copy = inst;
        copy.startTime += offset;
        if (copy.startTime < 0)
            throw StatusError(Status::error(
                ErrorCode::NegativeTime,
                "shifted schedule has a negative start time"));
        result.instructions_.push_back(std::move(copy));
    }
    return result;
}

void
Schedule::addInstruction(PulseInstruction instruction)
{
    if (instruction.startTime < 0)
        throw StatusError(Status::error(
            ErrorCode::NegativeTime,
            "instruction start time must be >= 0 (got " +
                std::to_string(instruction.startTime) + ")"));
    instructions_.push_back(std::move(instruction));
}

std::size_t
Schedule::playCount() const
{
    return static_cast<std::size_t>(std::count_if(
        instructions_.begin(), instructions_.end(),
        [](const PulseInstruction &inst) {
            return inst.kind == PulseInstructionKind::Play;
        }));
}

double
Schedule::totalAbsArea() const
{
    double total = 0.0;
    for (const auto &inst : instructions_)
        if (inst.kind == PulseInstructionKind::Play)
            total += inst.waveform->absArea();
    return total;
}

std::vector<std::string>
Schedule::validate() const
{
    std::vector<std::string> violations;

    // Per-channel Play intervals for overlap checking.
    std::map<Channel, std::vector<std::pair<long, long>>> intervals;
    for (const auto &inst : instructions_) {
        if (inst.startTime < 0)
            violations.push_back("instruction on " +
                                 inst.channel.toString() +
                                 " starts before t=0");
        if (inst.kind != PulseInstructionKind::Play)
            continue;
        const double peak = inst.waveform->peakAmplitude();
        if (peak > 1.0 + 1e-9)
            violations.push_back(
                "pulse on " + inst.channel.toString() + " at t=" +
                std::to_string(inst.startTime) + " exceeds |d|<=1 (" +
                std::to_string(peak) + ")");
        intervals[inst.channel].emplace_back(inst.startTime,
                                             inst.endTime());
    }
    for (auto &entry : intervals) {
        auto &spans = entry.second;
        std::sort(spans.begin(), spans.end());
        for (std::size_t i = 1; i < spans.size(); ++i)
            if (spans[i].first < spans[i - 1].second)
                violations.push_back(
                    "overlapping pulses on " + entry.first.toString() +
                    " around t=" + std::to_string(spans[i].first));
    }
    return violations;
}

std::string
Schedule::render() const
{
    std::ostringstream os;
    os << "schedule " << (name_.empty() ? "<anon>" : name_)
       << " duration=" << duration() << "dt\n";

    // Group instructions by channel, ordered by start time.
    std::map<Channel, std::vector<const PulseInstruction *>> by_channel;
    for (const auto &inst : instructions_)
        by_channel[inst.channel].push_back(&inst);

    for (auto &entry : by_channel) {
        std::sort(entry.second.begin(), entry.second.end(),
                  [](const PulseInstruction *a, const PulseInstruction *b) {
                      return a->startTime < b->startTime;
                  });
        os << "  " << entry.first.toString() << ": ";
        for (const auto *inst : entry.second) {
            switch (inst->kind) {
              case PulseInstructionKind::Play:
                os << "[" << inst->startTime << ".." << inst->endTime()
                   << " " << inst->waveform->name() << "] ";
                break;
              case PulseInstructionKind::ShiftPhase:
                os << "[fc@" << inst->startTime << " " << inst->phase
                   << "rad] ";
                break;
              case PulseInstructionKind::ShiftFrequency:
                os << "[sf@" << inst->startTime << " "
                   << inst->frequencyGhz << "GHz] ";
                break;
              case PulseInstructionKind::Delay:
                os << "[delay " << inst->startTime << ".."
                   << inst->endTime() << "] ";
                break;
              case PulseInstructionKind::Acquire:
                os << "[acquire " << inst->startTime << ".."
                   << inst->endTime() << "] ";
                break;
            }
        }
        os << "\n";
    }
    return os.str();
}

} // namespace qpulse
