#include "pulse/cmd_def.h"

#include "common/logging.h"

namespace qpulse {

void
CmdDef::define(GateType type, const std::vector<std::size_t> &qubits,
               ScheduleBuilder builder)
{
    qpulseRequire(builder != nullptr, "CmdDef::define requires a builder");
    builders_[{type, qubits}] = std::move(builder);
}

bool
CmdDef::has(GateType type, const std::vector<std::size_t> &qubits) const
{
    return builders_.count({type, qubits}) > 0;
}

Schedule
CmdDef::schedule(const Gate &gate) const
{
    const auto it = builders_.find({gate.type, gate.qubits});
    qpulseRequire(it != builders_.end(),
                  "no cmd_def entry for ", gate.toString());
    return it->second(gate);
}

std::vector<std::pair<GateType, std::vector<std::size_t>>>
CmdDef::keys() const
{
    std::vector<std::pair<GateType, std::vector<std::size_t>>> result;
    result.reserve(builders_.size());
    for (const auto &entry : builders_)
        result.push_back(entry.first);
    return result;
}

} // namespace qpulse
