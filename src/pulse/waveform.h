/**
 * @file
 * Parametric pulse envelopes (complex-valued sample generators).
 *
 * The paper's optimizations are *transformations of calibrated
 * waveforms*: vertical amplitude scaling for DirectRx (Section 4),
 * horizontal stretching of the flat-top of an echoed cross-resonance
 * pulse for CR(theta) (Section 6), and sideband modulation
 * d(t) -> d(t) e^{-i alpha t} for qudit transitions (Section 7). The
 * Waveform hierarchy here supports exactly those transformations while
 * keeping every envelope |d(t)| <= 1 as OpenPulse requires.
 */
#ifndef QPULSE_PULSE_WAVEFORM_H
#define QPULSE_PULSE_WAVEFORM_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/constants.h"

namespace qpulse {

/**
 * One full pass over a waveform's samples, summarised for validation:
 * the peak |d(t)| and the index of the first non-finite sample (-1 if
 * every sample is finite). Computed once per Waveform object and
 * memoized — envelopes are immutable, so repeated schedule validation
 * (e.g. re-validating a cached compile result against the current
 * calibration) costs O(instructions) instead of O(samples).
 */
struct WaveformScan {
    double peak = 0.0;
    long firstNonFinite = -1;
};

/**
 * A complex pulse envelope defined over an integer number of AWG
 * samples (dt ticks).
 */
class Waveform
{
  public:
    virtual ~Waveform() = default;

    /** Duration in samples. */
    virtual long duration() const = 0;

    /** Envelope value at sample index (0 <= t < duration). */
    virtual Complex sample(long t) const = 0;

    /** Short descriptive name, e.g. "drag", "gaussian_square". */
    virtual std::string name() const = 0;

    /** Materialise all samples. */
    std::vector<Complex> samples() const;

    /** Sum of |d(t)| over all samples — "area under curve" (Figure 4). */
    double absArea() const;

    /** Largest |d(t)|; OpenPulse requires this to be <= 1. */
    double peakAmplitude() const;

    /** Memoized full-sample scan (thread-safe; computed on first use). */
    const WaveformScan &sampleScan() const;

    /**
     * Pre-fill the scan memo with a value computed elsewhere (e.g.
     * persisted alongside a compiled-schedule record, so re-validating
     * a deserialized schedule skips the full sample pass). No-op when
     * the memo is already populated; the caller is responsible for the
     * seed actually matching scanSamples() — a wrong seed only skews
     * validation, never the samples themselves.
     */
    void seedSampleScan(const WaveformScan &scan) const;

  protected:
    Waveform() = default;
    // The memoized scan is derived data: copies start with a fresh
    // (uncomputed) memo rather than sharing the source's state.
    Waveform(const Waveform &) {}
    Waveform &operator=(const Waveform &) { return *this; }

    /** One pass over all samples; subclasses may override with a
     *  direct (non-virtual) loop when they hold materialised samples. */
    virtual WaveformScan scanSamples() const;

  private:
    // Double-checked memo: scanReady_ (acquire/release) publishes
    // scan_; scanMutex_ serialises the one computing/seeding writer.
    mutable std::atomic<bool> scanReady_{false};
    mutable std::mutex scanMutex_;
    mutable WaveformScan scan_;
};

using WaveformPtr = std::shared_ptr<const Waveform>;

/** Gaussian envelope amp * exp(-(t-center)^2 / (2 sigma^2)). */
class GaussianWaveform : public Waveform
{
  public:
    GaussianWaveform(long duration, double sigma, Complex amp);

    long duration() const override { return duration_; }
    Complex sample(long t) const override;
    std::string name() const override { return "gaussian"; }

    double sigma() const { return sigma_; }
    Complex amp() const { return amp_; }

  private:
    long duration_;
    double sigma_;
    Complex amp_;
};

/**
 * DRAG envelope: Gaussian with a derivative-proportional imaginary
 * component that cancels leakage to the second excited state
 * (Motzoi et al.): d(t) = g(t) + i * beta * g'(t).
 */
class DragWaveform : public Waveform
{
  public:
    DragWaveform(long duration, double sigma, Complex amp, double beta);

    long duration() const override { return duration_; }
    Complex sample(long t) const override;
    std::string name() const override { return "drag"; }

    double beta() const { return beta_; }
    double sigma() const { return sigma_; }
    Complex amp() const { return amp_; }

  private:
    long duration_;
    double sigma_;
    Complex amp_;
    double beta_;
};

/**
 * Flat-top pulse with Gaussian rise and fall — the shape of the
 * cross-resonance drive. Stretching CR(theta) means stretching the
 * flat-top width while keeping the risefall intact (Section 6.1).
 */
class GaussianSquareWaveform : public Waveform
{
  public:
    GaussianSquareWaveform(long duration, double sigma, long risefall,
                           Complex amp);

    long duration() const override { return duration_; }
    Complex sample(long t) const override;
    std::string name() const override { return "gaussian_square"; }

    long risefall() const { return risefall_; }
    long flatTop() const { return duration_ - 2 * risefall_; }
    Complex amp() const { return amp_; }
    double sigma() const { return sigma_; }

  private:
    long duration_;
    double sigma_;
    long risefall_;
    Complex amp_;
};

/** Constant envelope. */
class ConstantWaveform : public Waveform
{
  public:
    ConstantWaveform(long duration, Complex amp)
        : duration_(duration), amp_(amp)
    {}

    long duration() const override { return duration_; }
    Complex sample(long) const override { return amp_; }
    std::string name() const override { return "constant"; }

  private:
    long duration_;
    Complex amp_;
};

/** Arbitrary sample list (e.g. a reverse-engineered backend pulse). */
class SampledWaveform : public Waveform
{
  public:
    explicit SampledWaveform(std::vector<Complex> samples,
                             std::string label = "sampled");

    long duration() const override
    {
        return static_cast<long>(samples_.size());
    }
    Complex sample(long t) const override { return samples_[t]; }
    std::string name() const override { return label_; }

  protected:
    WaveformScan scanSamples() const override;

  private:
    std::vector<Complex> samples_;
    std::string label_;
};

/**
 * Vertical amplitude scaling of a calibrated pulse: the DirectRx(theta)
 * construction downscales the calibrated Rx(180) by theta/180deg
 * (Section 4.2). Also applies a complex phase when needed.
 */
class ScaledWaveform : public Waveform
{
  public:
    ScaledWaveform(WaveformPtr base, Complex scale);

    long duration() const override { return base_->duration(); }
    Complex sample(long t) const override
    {
        return scale_ * base_->sample(t);
    }
    std::string name() const override
    {
        return "scaled(" + base_->name() + ")";
    }
    Complex scale() const { return scale_; }

  private:
    WaveformPtr base_;
    Complex scale_;
};

/**
 * Sideband modulation d(t) -> d(t) * e^{-i 2 pi f_shift t dt}: shifts
 * the effective local-oscillator frequency to address the f12 or
 * f02/2 transitions of a transmon (Section 7.1, Equation 1).
 * Frequencies are in GHz since dt is in ns.
 */
class SidebandWaveform : public Waveform
{
  public:
    SidebandWaveform(WaveformPtr base, double freq_shift_ghz);

    long duration() const override { return base_->duration(); }
    Complex sample(long t) const override;
    std::string name() const override
    {
        return "sideband(" + base_->name() + ")";
    }
    double freqShiftGhz() const { return freqShiftGhz_; }

  private:
    WaveformPtr base_;
    double freqShiftGhz_;
};

/**
 * Horizontal stretch of a GaussianSquare pulse: rescale the flat-top
 * duration by `factor` while keeping amplitude and risefall fixed.
 * This is how CR(theta) is bootstrapped from the calibrated CR(90)
 * without knowing the Hamiltonian (Section 6.1).
 */
WaveformPtr stretchGaussianSquare(const GaussianSquareWaveform &base,
                                  double factor);

} // namespace qpulse

#endif // QPULSE_PULSE_WAVEFORM_H
