#include "pulse/waveform.h"

#include <cmath>

#include "common/logging.h"

namespace qpulse {

std::vector<Complex>
Waveform::samples() const
{
    std::vector<Complex> result(static_cast<std::size_t>(duration()));
    for (long t = 0; t < duration(); ++t)
        result[static_cast<std::size_t>(t)] = sample(t);
    return result;
}

double
Waveform::absArea() const
{
    double area = 0.0;
    for (long t = 0; t < duration(); ++t)
        area += std::abs(sample(t));
    return area;
}

double
Waveform::peakAmplitude() const
{
    return sampleScan().peak;
}

WaveformScan
Waveform::scanSamples() const
{
    WaveformScan scan;
    const long n = duration();
    for (long t = 0; t < n; ++t) {
        const Complex d = sample(t);
        if (scan.firstNonFinite < 0 &&
            (!std::isfinite(d.real()) || !std::isfinite(d.imag())))
            scan.firstNonFinite = t;
        scan.peak = std::max(scan.peak, std::abs(d));
    }
    return scan;
}

const WaveformScan &
Waveform::sampleScan() const
{
    if (!scanReady_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(scanMutex_);
        if (!scanReady_.load(std::memory_order_relaxed)) {
            scan_ = scanSamples();
            scanReady_.store(true, std::memory_order_release);
        }
    }
    return scan_;
}

void
Waveform::seedSampleScan(const WaveformScan &scan) const
{
    if (scanReady_.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(scanMutex_);
    if (scanReady_.load(std::memory_order_relaxed))
        return;
    scan_ = scan;
    scanReady_.store(true, std::memory_order_release);
}

GaussianWaveform::GaussianWaveform(long duration, double sigma, Complex amp)
    : duration_(duration), sigma_(sigma), amp_(amp)
{
    qpulseRequire(duration > 0, "waveform duration must be positive");
    qpulseRequire(sigma > 0.0, "gaussian sigma must be positive");
}

Complex
GaussianWaveform::sample(long t) const
{
    const double center = static_cast<double>(duration_ - 1) / 2.0;
    const double dt = static_cast<double>(t) - center;
    return amp_ * std::exp(-dt * dt / (2.0 * sigma_ * sigma_));
}

DragWaveform::DragWaveform(long duration, double sigma, Complex amp,
                           double beta)
    : duration_(duration), sigma_(sigma), amp_(amp), beta_(beta)
{
    qpulseRequire(duration > 0, "waveform duration must be positive");
    qpulseRequire(sigma > 0.0, "drag sigma must be positive");
}

Complex
DragWaveform::sample(long t) const
{
    const double center = static_cast<double>(duration_ - 1) / 2.0;
    const double dt = static_cast<double>(t) - center;
    const double gauss = std::exp(-dt * dt / (2.0 * sigma_ * sigma_));
    // g'(t) = -dt / sigma^2 * g(t); DRAG adds i * beta * g'(t).
    const double derivative = -dt / (sigma_ * sigma_) * gauss;
    return amp_ * (Complex{gauss, 0.0} + kI * beta_ * derivative);
}

GaussianSquareWaveform::GaussianSquareWaveform(long duration, double sigma,
                                               long risefall, Complex amp)
    : duration_(duration), sigma_(sigma), risefall_(risefall), amp_(amp)
{
    qpulseRequire(duration > 0, "waveform duration must be positive");
    qpulseRequire(risefall >= 0 && 2 * risefall <= duration,
                  "gaussian_square risefall must fit inside the duration");
    qpulseRequire(sigma > 0.0, "gaussian_square sigma must be positive");
}

Complex
GaussianSquareWaveform::sample(long t) const
{
    double envelope;
    if (t < risefall_) {
        const double dt = static_cast<double>(t - risefall_);
        envelope = std::exp(-dt * dt / (2.0 * sigma_ * sigma_));
    } else if (t >= duration_ - risefall_) {
        const double dt =
            static_cast<double>(t - (duration_ - risefall_ - 1));
        envelope = std::exp(-dt * dt / (2.0 * sigma_ * sigma_));
    } else {
        envelope = 1.0;
    }
    return amp_ * envelope;
}

SampledWaveform::SampledWaveform(std::vector<Complex> samples,
                                 std::string label)
    : samples_(std::move(samples)), label_(std::move(label))
{
    qpulseRequire(!samples_.empty(), "sampled waveform must be nonempty");
}

WaveformScan
SampledWaveform::scanSamples() const
{
    WaveformScan scan;
    for (std::size_t t = 0; t < samples_.size(); ++t) {
        const Complex d = samples_[t];
        if (scan.firstNonFinite < 0 &&
            (!std::isfinite(d.real()) || !std::isfinite(d.imag())))
            scan.firstNonFinite = static_cast<long>(t);
        scan.peak = std::max(scan.peak, std::abs(d));
    }
    return scan;
}

ScaledWaveform::ScaledWaveform(WaveformPtr base, Complex scale)
    : base_(std::move(base)), scale_(scale)
{
    qpulseRequire(base_ != nullptr, "scaled waveform needs a base");
    qpulseRequire(std::abs(scale) <= 1.0 + 1e-9,
                  "amplitude scaling must not exceed the |d(t)| <= 1 "
                  "OpenPulse bound");
}

SidebandWaveform::SidebandWaveform(WaveformPtr base, double freq_shift_ghz)
    : base_(std::move(base)), freqShiftGhz_(freq_shift_ghz)
{
    qpulseRequire(base_ != nullptr, "sideband waveform needs a base");
}

Complex
SidebandWaveform::sample(long t) const
{
    const double time_ns = static_cast<double>(t) * kDtNs;
    const double phase = -2.0 * kPi * freqShiftGhz_ * time_ns;
    return base_->sample(t) * std::exp(Complex{0.0, phase});
}

WaveformPtr
stretchGaussianSquare(const GaussianSquareWaveform &base, double factor)
{
    qpulseRequire(factor >= 0.0, "stretch factor must be >= 0");
    const long flat = base.flatTop();
    const long new_flat =
        static_cast<long>(std::llround(static_cast<double>(flat) * factor));
    const long new_duration = new_flat + 2 * base.risefall();
    return std::make_shared<GaussianSquareWaveform>(
        new_duration, base.sigma(), base.risefall(), base.amp());
}

} // namespace qpulse
