/**
 * @file
 * Pulse channels, instructions, and the Schedule container — the
 * "pulse schedule" stage of Table 1, mirroring the OpenPulse model:
 * Play instructions of complex envelopes on drive/control channels,
 * zero-duration ShiftPhase instructions (virtual-Z frame changes),
 * frequency shifts, delays, and acquisition markers.
 */
#ifndef QPULSE_PULSE_SCHEDULE_H
#define QPULSE_PULSE_SCHEDULE_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pulse/waveform.h"

namespace qpulse {

/** Kinds of pulse channels (OpenPulse naming). */
enum class ChannelKind
{
    Drive,   ///< d{i}: resonant drive of qubit i.
    Control, ///< u{i}: cross-resonance drive (on the control qubit's line
             ///< at the target's frequency).
    Measure, ///< m{i}: readout stimulus.
    Acquire, ///< a{i}: digitiser capture.
};

/** A channel identity, e.g. d0, u1, m3. */
struct Channel
{
    ChannelKind kind;
    std::size_t index;

    std::string toString() const;
    bool operator<(const Channel &other) const
    {
        return kind != other.kind ? kind < other.kind
                                  : index < other.index;
    }
    bool operator==(const Channel &other) const
    {
        return kind == other.kind && index == other.index;
    }
};

inline Channel driveChannel(std::size_t i) {
    return {ChannelKind::Drive, i};
}
inline Channel controlChannel(std::size_t i) {
    return {ChannelKind::Control, i};
}
inline Channel measureChannel(std::size_t i) {
    return {ChannelKind::Measure, i};
}
inline Channel acquireChannel(std::size_t i) {
    return {ChannelKind::Acquire, i};
}

/** Instruction kinds. */
enum class PulseInstructionKind
{
    Play,           ///< Emit a waveform on a channel.
    ShiftPhase,     ///< Virtual-Z frame change (zero duration).
    ShiftFrequency, ///< Persistent LO frequency offset.
    Delay,          ///< Explicit idle.
    Acquire,        ///< Readout capture window.
};

/** One scheduled instruction. */
struct PulseInstruction
{
    PulseInstructionKind kind;
    Channel channel;
    long startTime = 0;         ///< In dt samples.
    WaveformPtr waveform;       ///< Play only.
    double phase = 0.0;         ///< ShiftPhase only (radians).
    double frequencyGhz = 0.0;  ///< ShiftFrequency only.
    long duration = 0;          ///< Play: waveform; Delay/Acquire: explicit.

    long endTime() const { return startTime + duration; }
};

/**
 * A pulse schedule: instructions with explicit start times across
 * channels. Supports sequential (ASAP barrier-free) and parallel
 * composition, channel filtering, and textual rendering.
 */
class Schedule
{
  public:
    Schedule() = default;
    explicit Schedule(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Total duration: max end time across instructions. */
    long duration() const;

    /** End time on one channel (0 if unused). */
    long channelEndTime(const Channel &channel) const;

    const std::vector<PulseInstruction> &instructions() const
    {
        return instructions_;
    }

    /** All channels referenced by the schedule. */
    std::vector<Channel> channels() const;

    /** Append a Play at the channel's current end time. */
    void play(const Channel &channel, WaveformPtr waveform);

    /** Append a Play at an explicit time. */
    void playAt(long start, const Channel &channel, WaveformPtr waveform);

    /** Zero-duration frame change at the channel's current end time. */
    void shiftPhase(const Channel &channel, double phase);

    /** Persistent frequency shift (Section 7 sideband alternative). */
    void shiftFrequency(const Channel &channel, double freq_ghz);

    /** Idle the channel for the given number of samples. */
    void delay(const Channel &channel, long duration);

    /** Acquisition window. */
    void acquire(const Channel &channel, long duration);

    /**
     * Append another schedule ASAP per channel, preserving the relative
     * alignment of the appended schedule's channels (they all shift by
     * the same offset so cross-channel timing like CR echoes stays
     * intact).
     */
    void append(const Schedule &other);

    /**
     * Append with a synchronisation barrier: the other schedule starts
     * only after every channel it uses has finished.
     */
    void appendBarrier(const Schedule &other);

    /** Shift every instruction by a constant offset. */
    Schedule shifted(long offset) const;

    /** Insert a fully-specified instruction (absolute start time). */
    void addInstruction(PulseInstruction instruction);

    /** Number of Play instructions. */
    std::size_t playCount() const;

    /** Sum of |d(t)| areas of all Play waveforms. */
    double totalAbsArea() const;

    /** ASCII rendering: one line per channel with pulse spans. */
    std::string render() const;

    /**
     * Validate hardware constraints: every envelope respects the
     * OpenPulse |d(t)| <= 1 bound, no two Play instructions overlap
     * on the same channel, and no instruction starts before t = 0.
     * @return Human-readable violation descriptions (empty = valid).
     */
    std::vector<std::string> validate() const;

  private:
    std::string name_;
    std::vector<PulseInstruction> instructions_;
};

} // namespace qpulse

#endif // QPULSE_PULSE_SCHEDULE_H
