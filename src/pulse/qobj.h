/**
 * @file
 * OpenPulse-style serialisation: render a Schedule as the JSON wire
 * format the OpenPulse specification ([6] in the paper) uses for
 * experiment payloads — one instruction object per entry with `name`,
 * `ch`, `t0` and the instruction-specific fields, samples inlined for
 * parametric pulses. A matching parser round-trips the subset this
 * library emits, so schedules can be exported, inspected, diffed and
 * re-imported.
 */
#ifndef QPULSE_PULSE_QOBJ_H
#define QPULSE_PULSE_QOBJ_H

#include <string>

#include "pulse/schedule.h"

namespace qpulse {

/** Options for schedule serialisation. */
struct QobjWriteOptions
{
    /** Inline the complex sample arrays of Play instructions (the
     *  OpenPulse "sample pulse" form). When false, only the pulse
     *  name/duration metadata is emitted. */
    bool includeSamples = false;
    /** Fixed-point digits for floating-point fields. */
    int precision = 8;
};

/** Serialise a schedule to OpenPulse-style JSON. */
std::string scheduleToQobjJson(const Schedule &schedule,
                               const QobjWriteOptions &options = {});

/**
 * Parse a JSON payload produced by scheduleToQobjJson (with samples
 * included) back into a Schedule. Play instructions come back as
 * SampledWaveform. Fatal on malformed input.
 */
Schedule scheduleFromQobjJson(const std::string &json);

} // namespace qpulse

#endif // QPULSE_PULSE_QOBJ_H
