/**
 * @file
 * CmdDef: the backend's (gate, qubits) -> pulse-schedule translation
 * table. In OpenPulse these translations are "stored in the cmd_def
 * object, and reported by the hardware" (Section 3.1.4); the standard
 * compiler consumes them as-is, while our optimized compiler *extracts*
 * calibrated pulses from them (e.g. the CR(90) half inside the CNOT
 * schedule, or the Rx(180) calibrated alongside the two-qubit gate) and
 * registers new augmented-basis entries built by scaling/stretching.
 */
#ifndef QPULSE_PULSE_CMD_DEF_H
#define QPULSE_PULSE_CMD_DEF_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "circuit/gate.h"
#include "pulse/schedule.h"

namespace qpulse {

/** Builds a schedule for one gate instance (parameters come from it). */
using ScheduleBuilder = std::function<Schedule(const Gate &)>;

/**
 * The translation table from basis-gate instances to pulse schedules.
 */
class CmdDef
{
  public:
    /** Register a builder for (gate type, qubit tuple). */
    void define(GateType type, const std::vector<std::size_t> &qubits,
                ScheduleBuilder builder);

    /** True when a translation exists for this gate instance. */
    bool has(GateType type, const std::vector<std::size_t> &qubits) const;

    /** Build the schedule for a gate instance; fatal if undefined. */
    Schedule schedule(const Gate &gate) const;

    /** All defined (type, qubits) keys, for introspection. */
    std::vector<std::pair<GateType, std::vector<std::size_t>>> keys() const;

  private:
    using Key = std::pair<GateType, std::vector<std::size_t>>;
    std::map<Key, ScheduleBuilder> builders_;
};

} // namespace qpulse

#endif // QPULSE_PULSE_CMD_DEF_H
