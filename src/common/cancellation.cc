#include "common/cancellation.h"

#include <cstdlib>
#include <cstring>
#include <limits>

namespace qpulse {

bool
virtualTimeEnabled()
{
    const char *raw = std::getenv("QPULSE_VIRTUAL_TIME");
    return raw != nullptr && std::strcmp(raw, "1") == 0;
}

CancelToken
CancelToken::make()
{
    CancelToken token;
    token.state_ = std::make_shared<State>();
    return token;
}

void
CancelToken::cancel(Status reason)
{
    if (state_ == nullptr)
        return;
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->cancelled.load(std::memory_order_relaxed))
        return; // First cancel wins; keep the original reason.
    state_->reason = std::move(reason);
    state_->cancelled.store(true, std::memory_order_release);
}

Status
CancelToken::reason() const
{
    if (!cancelled())
        return Status::okStatus();
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->reason;
}

Deadline
Deadline::afterMs(double ms)
{
    Deadline deadline;
    deadline.state_ = std::make_shared<State>();
    deadline.state_->isVirtual = false;
    deadline.state_->expiry =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms < 0.0 ? 0.0
                                                               : ms));
    return deadline;
}

Deadline
Deadline::virtualBudget(std::uint64_t units)
{
    Deadline deadline;
    deadline.state_ = std::make_shared<State>();
    deadline.state_->isVirtual = true;
    deadline.state_->budget = units;
    return deadline;
}

Deadline
Deadline::afterMsOrBudget(double ms, std::uint64_t units)
{
    return virtualTimeEnabled() ? virtualBudget(units) : afterMs(ms);
}

bool
Deadline::expired() const
{
    if (state_ == nullptr)
        return false;
    if (state_->isVirtual)
        return state_->spent.load(std::memory_order_relaxed) >=
               state_->budget;
    return std::chrono::steady_clock::now() >= state_->expiry;
}

double
Deadline::remainingMs() const
{
    if (state_ == nullptr || state_->isVirtual)
        return std::numeric_limits<double>::infinity();
    const double left =
        std::chrono::duration<double, std::milli>(
            state_->expiry - std::chrono::steady_clock::now())
            .count();
    return left > 0.0 ? left : 0.0;
}

std::uint64_t
Deadline::remainingUnits() const
{
    if (state_ == nullptr || !state_->isVirtual)
        return std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t spent =
        state_->spent.load(std::memory_order_relaxed);
    return spent >= state_->budget ? 0 : state_->budget - spent;
}

bool
Deadline::tryCharge(std::uint64_t units) const
{
    if (state_ == nullptr)
        return true;
    if (!state_->isVirtual)
        return !expired();
    const std::uint64_t before =
        state_->spent.fetch_add(units, std::memory_order_relaxed);
    return before < state_->budget;
}

Status
Deadline::check(const CancelToken &token) const
{
    if (token.cancelled())
        return token.reason();
    if (expired())
        return Status::error(
            ErrorCode::DeadlineExceeded,
            isVirtual() ? "virtual-time budget exhausted"
                        : "wall-clock deadline passed");
    return Status::okStatus();
}

} // namespace qpulse
