/**
 * @file
 * Physical and experimental constants shared across qpulse.
 *
 * These mirror the experimental setup of the paper (Section 2.4):
 * IBM Almaden's arbitrary waveform generator emits a new complex sample
 * every dt = 2/9 ns (4.5 gigasamples per second), and every experiment in
 * the evaluation quotes an explicit shot count which we reuse verbatim.
 */
#ifndef QPULSE_COMMON_CONSTANTS_H
#define QPULSE_COMMON_CONSTANTS_H

#include <complex>
#include <numbers>

namespace qpulse {

/** Complex amplitude type used throughout the library. */
using Complex = std::complex<double>;

/** Imaginary unit. */
inline constexpr Complex kI{0.0, 1.0};

/** pi, shared so all modules agree on the literal. */
inline constexpr double kPi = std::numbers::pi;

/** AWG sample period in nanoseconds (4.5 GS/s, Section 3.1.4). */
inline constexpr double kDtNs = 2.0 / 9.0;

/** Convert a duration in AWG samples (dt) to nanoseconds. */
constexpr double
dtToNs(long samples)
{
    return static_cast<double>(samples) * kDtNs;
}

/** Convert a duration in nanoseconds to AWG samples, rounding to nearest. */
constexpr long
nsToDt(double ns)
{
    return static_cast<long>(ns / kDtNs + 0.5);
}

/** Degrees to radians. */
constexpr double
deg(double degrees)
{
    return degrees * kPi / 180.0;
}

/** Radians to degrees. */
constexpr double
toDegrees(double radians)
{
    return radians * 180.0 / kPi;
}

namespace shots {

/** Shot counts quoted in the paper, by experiment. */
inline constexpr long kOpenCnot = 16000;         ///< Section 5.2
inline constexpr long kDirectRxPerPoint = 1000;  ///< Figure 7 (3 x 41 x 1k)
inline constexpr long kCrTomoPerPoint = 1000;    ///< Figure 9 (41x3x2x1k)
inline constexpr long kZzPerPoint = 2000;        ///< Figure 10 (21x2x2k)
inline constexpr long kBenchmarks = 8000;        ///< Figure 12 (6x2x8k)
inline constexpr long kRbPerPoint = 8000;        ///< Figure 13 (5x24x3x8k)
inline constexpr long kQutrit = 2500;            ///< Figure 11 (150k total)

} // namespace shots

} // namespace qpulse

#endif // QPULSE_COMMON_CONSTANTS_H
