/**
 * @file
 * Minimal fixed-width text table printer used by the bench harnesses to
 * emit paper-style tables and figure series.
 */
#ifndef QPULSE_COMMON_TABLE_H
#define QPULSE_COMMON_TABLE_H

#include <string>
#include <vector>

namespace qpulse {

/**
 * Accumulates rows of strings and renders them as an aligned text table.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table (header, separator, rows) as a string. */
    std::string render() const;

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (fixed notation). */
std::string fmtFixed(double value, int precision);

/** Format a value as a percentage string, e.g. 98.40%. */
std::string fmtPercent(double fraction, int precision = 2);

} // namespace qpulse

#endif // QPULSE_COMMON_TABLE_H
