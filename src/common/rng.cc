#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace qpulse {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** splitmix64, used to expand the user seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::deriveSeed(std::uint64_t base, std::uint64_t index)
{
    // Two splitmix64 rounds over a base/index mix: enough avalanche
    // that adjacent indices yield unrelated generator states.
    std::uint64_t state = base ^ (index * 0xD1342543DE82EF95ull);
    (void)splitmix64(state);
    return splitmix64(state);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    qpulseRequire(n > 0, "uniformInt requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t draw;
    do {
        draw = nextU64();
    } while (draw >= limit);
    return draw % n;
}

double
Rng::gaussian()
{
    if (haveCachedGaussian_) {
        haveCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * 3.14159265358979323846 * u2;
    cachedGaussian_ = radius * std::sin(angle);
    haveCachedGaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

long
Rng::binomial(long n, double p)
{
    qpulseRequire(n >= 0, "binomial requires n >= 0");
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;

    const double variance = static_cast<double>(n) * p * (1.0 - p);
    if (n <= 64 || variance < 25.0) {
        long successes = 0;
        for (long i = 0; i < n; ++i)
            if (uniform() < p)
                ++successes;
        return successes;
    }

    // Gaussian approximation with continuity correction; accurate for the
    // thousands-of-shots regime used throughout the paper's experiments.
    const double mean = static_cast<double>(n) * p;
    double draw = gaussian(mean, std::sqrt(variance));
    long k = static_cast<long>(std::llround(draw));
    if (k < 0)
        k = 0;
    if (k > n)
        k = n;
    return k;
}

std::vector<long>
Rng::multinomial(long n, const std::vector<double> &probs)
{
    qpulseRequire(!probs.empty(), "multinomial requires nonempty probs");
    double total = 0.0;
    for (double p : probs) {
        qpulseRequire(p >= -1e-12, "multinomial probabilities must be >= 0");
        total += std::max(p, 0.0);
    }
    qpulseRequire(total > 0.0, "multinomial probabilities must not be all 0");

    std::vector<long> counts(probs.size(), 0);
    long remaining = n;
    double remainingProb = total;
    // Sequential conditional-binomial decomposition.
    for (std::size_t i = 0; i + 1 < probs.size() && remaining > 0; ++i) {
        const double p = std::max(probs[i], 0.0);
        const double conditional =
            remainingProb > 0.0 ? std::min(1.0, p / remainingProb) : 0.0;
        const long draw = binomial(remaining, conditional);
        counts[i] = draw;
        remaining -= draw;
        remainingProb -= p;
    }
    counts.back() = remaining;
    return counts;
}

std::size_t
Rng::discrete(const std::vector<double> &probs)
{
    double total = 0.0;
    for (double p : probs)
        total += std::max(p, 0.0);
    double draw = uniform() * total;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        draw -= std::max(probs[i], 0.0);
        if (draw <= 0.0)
            return i;
    }
    return probs.size() - 1;
}

} // namespace qpulse
