#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/table.h"

namespace qpulse {

std::string
renderAsciiPlot(const std::vector<PlotSeries> &series,
                const PlotOptions &options)
{
    qpulseRequire(!series.empty(), "renderAsciiPlot needs a series");
    qpulseRequire(options.width >= 8 && options.height >= 4,
                  "plot grid too small");

    double x_lo = 1e300, x_hi = -1e300;
    double y_lo = options.yLo, y_hi = options.yHi;
    const bool auto_y = !(y_lo < y_hi);
    if (auto_y) {
        y_lo = 1e300;
        y_hi = -1e300;
    }
    for (const auto &entry : series) {
        qpulseRequire(entry.xs.size() == entry.ys.size(),
                      "plot series size mismatch");
        for (double x : entry.xs) {
            x_lo = std::min(x_lo, x);
            x_hi = std::max(x_hi, x);
        }
        if (auto_y)
            for (double y : entry.ys) {
                y_lo = std::min(y_lo, y);
                y_hi = std::max(y_hi, y);
            }
    }
    qpulseRequire(x_lo <= x_hi, "plot has no points");
    if (x_hi == x_lo)
        x_hi = x_lo + 1.0;
    if (y_hi <= y_lo)
        y_hi = y_lo + 1.0;

    std::vector<std::string> grid(
        static_cast<std::size_t>(options.height),
        std::string(static_cast<std::size_t>(options.width), ' '));

    for (const auto &entry : series) {
        for (std::size_t k = 0; k < entry.xs.size(); ++k) {
            const double fx =
                (entry.xs[k] - x_lo) / (x_hi - x_lo);
            const double fy =
                (entry.ys[k] - y_lo) / (y_hi - y_lo);
            int col = static_cast<int>(
                std::lround(fx * (options.width - 1)));
            int row = static_cast<int>(
                std::lround((1.0 - fy) * (options.height - 1)));
            col = std::clamp(col, 0, options.width - 1);
            row = std::clamp(row, 0, options.height - 1);
            grid[static_cast<std::size_t>(row)]
                [static_cast<std::size_t>(col)] = entry.glyph;
        }
    }

    std::ostringstream os;
    os << fmtFixed(y_hi, 3) << "\n";
    for (const auto &row : grid)
        os << "  |" << row << "|\n";
    os << fmtFixed(y_lo, 3) << "  x: [" << fmtFixed(x_lo, 2) << ", "
       << fmtFixed(x_hi, 2) << "]\n";
    for (const auto &entry : series)
        os << "  " << entry.glyph << " = " << entry.label << "\n";
    return os.str();
}

} // namespace qpulse
