/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * qpulseFatal() is for user error (bad arguments, inconsistent
 * configuration); qpulsePanic() is for internal invariant violations.
 */
#ifndef QPULSE_COMMON_LOGGING_H
#define QPULSE_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace qpulse {

/** Exception thrown for user-facing configuration/argument errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    formatInto(os, rest...);
}

} // namespace detail

/** Throw a FatalError built from the streamed arguments. */
template <typename... Args>
[[noreturn]] void
qpulseFatal(const Args &...args)
{
    std::ostringstream os;
    os << "qpulse fatal: ";
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Throw a PanicError built from the streamed arguments. */
template <typename... Args>
[[noreturn]] void
qpulsePanic(const Args &...args)
{
    std::ostringstream os;
    os << "qpulse panic: ";
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/** Assert an invariant; panics with a message on failure. */
template <typename... Args>
void
qpulseAssert(bool condition, const Args &...args)
{
    if (!condition)
        qpulsePanic(args...);
}

/** Validate a user-supplied condition; fatals with a message on failure. */
template <typename... Args>
void
qpulseRequire(bool condition, const Args &...args)
{
    if (!condition)
        qpulseFatal(args...);
}

} // namespace qpulse

#endif // QPULSE_COMMON_LOGGING_H
