#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace qpulse {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    qpulseRequire(!headers_.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    qpulseRequire(cells.size() == headers_.size(),
                  "TextTable row arity ", cells.size(),
                  " != header arity ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << " |\n";
    };

    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << (c == 0 ? "|-" : "-|-");
        os << std::string(widths[c], '-');
    }
    os << "-|\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
fmtFixed(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
fmtPercent(double fraction, int precision)
{
    return fmtFixed(fraction * 100.0, precision) + "%";
}

} // namespace qpulse
