/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * Every experiment harness in the repository takes an explicit seed so
 * that the tables and figures regenerate bit-identically. The engine is
 * xoshiro256**, a small, fast generator with excellent statistical
 * quality, wrapped with the distribution helpers the experiments need
 * (uniform, Gaussian, binomial, multinomial sampling).
 */
#ifndef QPULSE_COMMON_RNG_H
#define QPULSE_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace qpulse {

/**
 * Deterministic random generator (xoshiro256**) with sampling helpers.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /**
     * Derive a decorrelated child seed for stream `index`. Parallel
     * loops use Rng(Rng::deriveSeed(base, i)) so every iteration gets
     * its own reproducible stream regardless of execution order or
     * thread count.
     */
    static std::uint64_t deriveSeed(std::uint64_t base,
                                    std::uint64_t index);

    /** Next raw 64-bit draw. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal draw (Box-Muller, cached pair). */
    double gaussian();

    /** Normal draw with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Binomial sample: number of successes in n trials with probability p.
     *
     * Uses direct simulation for small n and a Gaussian approximation
     * (clamped) once n*p*(1-p) is large, which is accurate for the
     * multi-thousand-shot experiments in the paper.
     */
    long binomial(long n, double p);

    /**
     * Multinomial sample: distribute n shots over the given probability
     * vector. Probabilities are normalized internally.
     *
     * @param n     Number of shots.
     * @param probs Outcome probabilities (need not sum exactly to 1).
     * @return Counts per outcome, summing to n.
     */
    std::vector<long> multinomial(long n, const std::vector<double> &probs);

    /** Index sampled from a discrete distribution (single draw). */
    std::size_t discrete(const std::vector<double> &probs);

  private:
    std::uint64_t s_[4];
    bool haveCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

} // namespace qpulse

#endif // QPULSE_COMMON_RNG_H
