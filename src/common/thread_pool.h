/**
 * @file
 * Shared worker-thread pool for the embarrassingly parallel loops in
 * qpulse: shot sampling, ZNE stretch sweeps, RB sequence batches and
 * the per-point sweeps in the figure benches.
 *
 * The pool is a process-wide singleton sized from
 * std::thread::hardware_concurrency(), overridable with the
 * QPULSE_THREADS environment variable (QPULSE_THREADS=1 disables
 * worker threads entirely and every parallelFor runs inline). Work is
 * submitted through parallelFor, which distributes loop iterations
 * over the workers with an atomic cursor and blocks until the loop is
 * complete. Nested parallelFor calls (a body that itself calls
 * parallelFor) degrade gracefully to inline execution instead of
 * deadlocking on the shared queue.
 *
 * Determinism contract: parallelFor imposes no iteration order, so
 * loop bodies must be independent (callers that need reproducible
 * randomness derive one Rng per iteration index, see Rng).
 */
#ifndef QPULSE_COMMON_THREAD_POOL_H
#define QPULSE_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace qpulse {

/**
 * Fixed-size worker pool executing queued tasks.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total parallelism (including the calling thread
     *                during parallelFor). 0 or 1 means no workers.
     */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (worker threads + the calling thread). */
    std::size_t size() const { return workers_.size() + 1; }

    /**
     * Stable identity of the calling thread within its pool: 0 for
     * the main thread (or any thread not owned by a pool), 1..N-1 for
     * pool workers, fixed for the worker's lifetime. Consumers that
     * need per-thread state without locking — the telemetry tracer's
     * per-thread buffers, per-worker scratch arenas — key off this
     * instead of std::this_thread::get_id(), which is neither small
     * nor stable across runs.
     */
    static std::size_t currentWorkerId();

    /** "main" or "worker-<id>", matching currentWorkerId(). */
    static const std::string &currentWorkerName();

    /**
     * Run body(i) for every i in [0, n), distributing iterations over
     * the pool; the calling thread participates. Blocks until every
     * iteration has finished. The first exception thrown by any
     * iteration is rethrown on the calling thread (remaining
     * iterations still run to completion). Runs inline when the pool
     * has no workers, n <= 1, or the caller is itself a pool worker.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body,
                     std::size_t maxThreads = 0);

    /**
     * The process-wide pool. Sized from QPULSE_THREADS when set (>= 1),
     * otherwise std::thread::hardware_concurrency().
     */
    static ThreadPool &global();

  private:
    void workerLoop(std::size_t worker_id);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

/**
 * Convenience: ThreadPool::global().parallelFor(n, body), optionally
 * capped at maxThreads total threads (0 = no cap). Use the cap to make
 * a workload's thread count explicit, e.g. in benches comparing 1 vs N
 * threads.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 std::size_t maxThreads = 0);

} // namespace qpulse

#endif // QPULSE_COMMON_THREAD_POOL_H
