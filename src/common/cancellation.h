/**
 * @file
 * Cooperative cancellation and deadlines for the execution stack.
 *
 * A CancelToken is a cheap, copyable handle to a shared cancellation
 * flag: the service layer (or any caller) cancels it once, and every
 * layer holding a copy — PulseBackend::runShots between shot batches,
 * the PulseSimulator evolve loops every few hundred AWG samples, the
 * ResilientExecutor between retry attempts — observes the flag and
 * winds down cooperatively, surfacing the work completed so far as a
 * partial result instead of throwing it away.
 *
 * A Deadline bounds a job's execution in one of two currencies:
 *
 *  - wall-clock: a steady_clock expiry. Honest about real latency, but
 *    inherently scheduling-dependent — two runs with different thread
 *    counts can complete different amounts of work before expiry.
 *  - virtual time: a budget of simulated AWG samples, charged at batch
 *    granularity *before* any parallel work is dispatched. Expiry is a
 *    pure function of the workload, so partial results, shed counters
 *    and every telemetry export stay bit-identical across
 *    QPULSE_THREADS settings — the determinism contract the
 *    `service`-label tests and BENCH runs rely on.
 *
 * QPULSE_VIRTUAL_TIME=1 flips Deadline::afterMsOrBudget (the form the
 * service layer and benches use) from wall-clock to virtual budgets,
 * making a whole run deterministic without touching call sites.
 *
 * Both types share their state through shared_ptr, so copies threaded
 * down the stack observe one flag / consume one budget. All reads are
 * lock-free; Deadline::tryCharge is a single atomic fetch_add.
 */
#ifndef QPULSE_COMMON_CANCELLATION_H
#define QPULSE_COMMON_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/status.h"

namespace qpulse {

/**
 * True when QPULSE_VIRTUAL_TIME=1: deadlines constructed through
 * Deadline::afterMsOrBudget run on sample budgets instead of the
 * clock. Read per call (not cached) so tests can flip the variable.
 */
bool virtualTimeEnabled();

/**
 * Shared cooperative-cancellation flag. A default-constructed token is
 * *inert*: it can never be cancelled and costs nothing to check, so it
 * is safe as a default member of option structs. CancelToken::make()
 * returns a live token.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** A live (cancellable) token. */
    static CancelToken make();

    /** True when this token can ever fire (i.e. not inert). */
    bool cancellable() const { return state_ != nullptr; }

    /**
     * Request cancellation with a structured reason (default:
     * Cancelled). First cancel wins; later calls keep the original
     * reason. No-op on an inert token.
     */
    void cancel(Status reason = Status::error(
                    ErrorCode::Cancelled, "cancelled by caller"));

    /** True once cancel() has been called. */
    bool cancelled() const
    {
        return state_ != nullptr &&
               state_->cancelled.load(std::memory_order_acquire);
    }

    /** The cancel reason; Ok while not cancelled. */
    Status reason() const;

  private:
    struct State
    {
        std::atomic<bool> cancelled{false};
        std::mutex mutex;
        Status reason;
    };

    std::shared_ptr<State> state_;
};

/**
 * A job deadline: unlimited (default), wall-clock, or a virtual-time
 * budget of simulated AWG samples. Copies share the consumed budget.
 */
class Deadline
{
  public:
    /** Unlimited: never expires, charges are free. */
    Deadline() = default;

    static Deadline none() { return Deadline(); }

    /** Wall-clock deadline `ms` milliseconds from now. */
    static Deadline afterMs(double ms);

    /** Virtual-time deadline: a budget of `units` simulated samples. */
    static Deadline virtualBudget(std::uint64_t units);

    /**
     * The service-layer constructor: wall-clock `ms` normally, a
     * virtual budget of `units` when QPULSE_VIRTUAL_TIME=1.
     */
    static Deadline afterMsOrBudget(double ms, std::uint64_t units);

    bool unlimited() const { return state_ == nullptr; }
    bool isVirtual() const
    {
        return state_ != nullptr && state_->isVirtual;
    }

    /**
     * True once the deadline passed: wall-clock now >= expiry, or the
     * virtual budget is fully consumed. Never true when unlimited.
     */
    bool expired() const;

    /**
     * Wall-clock milliseconds left (floored at 0). Returns +infinity
     * when unlimited *or virtual* — virtual budgets bound work, not
     * latency, so they must never shrink a backoff delay.
     */
    double remainingMs() const;

    /** Unconsumed virtual units (max() when unlimited or wall-clock). */
    std::uint64_t remainingUnits() const;

    /**
     * Admission-charge one unit of work costing `units`. Virtual mode:
     * atomically consumes the cost and returns true iff the budget had
     * *any* capacity left before the charge — the unit that crosses
     * the boundary is still admitted (guaranteed progress), everything
     * after it is refused. Wall-clock mode: charges nothing, returns
     * !expired(). Unlimited: always true.
     *
     * Call sequentially (e.g. per shot batch, before dispatching the
     * parallel loop) when the admitted set must be deterministic.
     */
    bool tryCharge(std::uint64_t units) const;

    /**
     * Combined gate: the token's cancel reason if it fired, else a
     * structured deadline-exceeded error if expired, else Ok.
     * Cancellation wins because it is the more specific intent.
     */
    Status check(const CancelToken &token) const;

  private:
    struct State
    {
        bool isVirtual = false;
        std::chrono::steady_clock::time_point expiry{};
        std::uint64_t budget = 0;
        std::atomic<std::uint64_t> spent{0};
    };

    std::shared_ptr<State> state_;
};

} // namespace qpulse

#endif // QPULSE_COMMON_CANCELLATION_H
