#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <string>

#include "common/env.h"
#include "common/logging.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace qpulse {

namespace {

/** Set inside workerLoop so nested parallelFor calls run inline. */
thread_local bool tls_in_worker = false;

/** Stable per-pool identity: 0 = main/external, 1.. = workers. */
thread_local std::size_t tls_worker_id = 0;
thread_local std::string tls_worker_name = "main";

std::size_t
configuredThreadCount()
{
    const unsigned hw_raw = std::thread::hardware_concurrency();
    const long hw = hw_raw > 0 ? static_cast<long>(hw_raw) : 1;
    // Cap at 4x hardware concurrency: more threads than that only adds
    // contention, and a mistyped huge value would spawn thousands of
    // workers. Unparsable or out-of-range values warn (env.h) instead
    // of silently falling back.
    return static_cast<std::size_t>(
        envLong("QPULSE_THREADS", hw, 1, 4 * hw));
}

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t workers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back(&ThreadPool::workerLoop, this, i + 1);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::size_t
ThreadPool::currentWorkerId()
{
    return tls_worker_id;
}

const std::string &
ThreadPool::currentWorkerName()
{
    return tls_worker_name;
}

void
ThreadPool::workerLoop(std::size_t worker_id)
{
    tls_in_worker = true;
    tls_worker_id = worker_id;
    tls_worker_name = "worker-" + std::to_string(worker_id);
    // Hook for the tracer's per-thread buffers: spans recorded from
    // this worker land on a stable, human-labelled tid row.
    telemetry::setCurrentThreadInfo(
        static_cast<std::uint32_t>(worker_id), tls_worker_name);
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body,
                        std::size_t maxThreads)
{
    if (n == 0)
        return;
    // Counters count *work* (calls, iterations), never scheduling
    // decisions like inline-vs-pooled: exported values must be
    // identical for every QPULSE_THREADS (docs/OBSERVABILITY.md).
    static telemetry::Counter &c_loops =
        telemetry::MetricsRegistry::global().counter(
            "threadpool.parallel_for.calls");
    static telemetry::Counter &c_iterations =
        telemetry::MetricsRegistry::global().counter(
            "threadpool.parallel_for.iterations");
    c_loops.increment();
    c_iterations.add(n);
    telemetry::TraceSpan span("threadpool.parallel_for");

    std::size_t width = size();
    if (maxThreads > 0)
        width = std::min(width, maxThreads);
    width = std::min(width, n);
    if (width <= 1 || workers_.empty() || tls_in_worker) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    struct LoopState
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> active{0};
        std::mutex doneMutex;
        std::condition_variable done;
        std::exception_ptr error;
        std::mutex errorMutex;
    };
    auto state = std::make_shared<LoopState>();
    state->active.store(width, std::memory_order_relaxed);

    const auto run = [state, n, &body]() {
        for (;;) {
            const std::size_t i =
                state->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->errorMutex);
                if (!state->error)
                    state->error = std::current_exception();
            }
        }
        if (state->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(state->doneMutex);
            state->done.notify_all();
        }
    };

    // The body reference stays valid: the calling thread blocks below
    // until every enqueued task has finished.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i + 1 < width; ++i)
            queue_.emplace_back(run);
    }
    wake_.notify_all();

    run(); // The caller participates as the width-th lane.

    {
        std::unique_lock<std::mutex> lock(state->doneMutex);
        state->done.wait(lock, [&state] {
            return state->active.load(std::memory_order_acquire) == 0;
        });
    }
    if (state->error)
        std::rethrow_exception(state->error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(configuredThreadCount());
    return pool;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
            std::size_t maxThreads)
{
    ThreadPool::global().parallelFor(n, body, maxThreads);
}

} // namespace qpulse
