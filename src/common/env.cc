#include "common/env.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace qpulse {

void
envWarn(const std::string &name, const std::string &detail)
{
    std::fprintf(stderr, "qpulse warning: %s: %s\n", name.c_str(),
                 detail.c_str());
}

long
envLong(const char *name, long fallback, long lo, long hi)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;

    char *end = nullptr;
    const long parsed = std::strtol(raw, &end, 10);
    if (end == raw || (end != nullptr && *end != '\0')) {
        envWarn(name, std::string("unparsable value '") + raw +
                          "', using default " +
                          std::to_string(fallback));
        return fallback;
    }
    if (parsed < lo || parsed > hi) {
        const long clamped = std::clamp(parsed, lo, hi);
        envWarn(name, "value " + std::to_string(parsed) +
                          " outside [" + std::to_string(lo) + ", " +
                          std::to_string(hi) + "], clamping to " +
                          std::to_string(clamped));
        return clamped;
    }
    return parsed;
}

std::size_t
envBatchWidth()
{
    return static_cast<std::size_t>(
        envLong("QPULSE_BATCH", 64, 1, 4096));
}

std::optional<std::string>
envString(const char *name)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return std::nullopt;
    return std::string(raw);
}

std::optional<std::string>
envCacheDir()
{
    return envString("QPULSE_CACHE_DIR");
}

long
envBytes(const char *name, long fallback, long lo, long hi)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;

    char *end = nullptr;
    long parsed = std::strtol(raw, &end, 10);
    if (end == raw) {
        envWarn(name, std::string("unparsable value '") + raw +
                          "', using default " +
                          std::to_string(fallback));
        return fallback;
    }

    // Optional binary suffix; anything after it is trailing junk.
    long scale = 1;
    if (*end != '\0') {
        switch (*end) {
        case 'k': case 'K': scale = 1L << 10; break;
        case 'm': case 'M': scale = 1L << 20; break;
        case 'g': case 'G': scale = 1L << 30; break;
        case 't': case 'T': scale = 1L << 40; break;
        default: scale = 0; break;
        }
        if (scale == 0 || end[1] != '\0') {
            envWarn(name, std::string("unparsable value '") + raw +
                              "' (expected <int>[K|M|G|T]), using "
                              "default " +
                              std::to_string(fallback));
            return fallback;
        }
    }
    // Overflow-safe scale-up: saturate instead of wrapping, so a
    // "9999999T" typo clamps to `hi` with a warning rather than
    // flipping negative.
    constexpr long kMax = std::numeric_limits<long>::max();
    constexpr long kMin = std::numeric_limits<long>::min();
    if (parsed > kMax / scale)
        parsed = kMax;
    else if (parsed < kMin / scale)
        parsed = kMin;
    else
        parsed *= scale;

    if (parsed < lo || parsed > hi) {
        const long clamped = std::clamp(parsed, lo, hi);
        envWarn(name, "value " + std::to_string(parsed) +
                          " outside [" + std::to_string(lo) + ", " +
                          std::to_string(hi) + "], clamping to " +
                          std::to_string(clamped));
        return clamped;
    }
    return parsed;
}

long
envCacheMaxBytes()
{
    constexpr long kMiB = 1024L * 1024L;
    return envBytes("QPULSE_CACHE_MAX_BYTES", 256L * kMiB, kMiB,
                    kMiB * kMiB);
}

long
envIngestMaxBytes()
{
    return envBytes("QPULSE_INGEST_MAX_BYTES", 8L << 20, 4L << 10,
                    1L << 30);
}

} // namespace qpulse
