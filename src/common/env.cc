#include "common/env.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace qpulse {

void
envWarn(const std::string &name, const std::string &detail)
{
    std::fprintf(stderr, "qpulse warning: %s: %s\n", name.c_str(),
                 detail.c_str());
}

long
envLong(const char *name, long fallback, long lo, long hi)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;

    char *end = nullptr;
    const long parsed = std::strtol(raw, &end, 10);
    if (end == raw || (end != nullptr && *end != '\0')) {
        envWarn(name, std::string("unparsable value '") + raw +
                          "', using default " +
                          std::to_string(fallback));
        return fallback;
    }
    if (parsed < lo || parsed > hi) {
        const long clamped = std::clamp(parsed, lo, hi);
        envWarn(name, "value " + std::to_string(parsed) +
                          " outside [" + std::to_string(lo) + ", " +
                          std::to_string(hi) + "], clamping to " +
                          std::to_string(clamped));
        return clamped;
    }
    return parsed;
}

std::size_t
envBatchWidth()
{
    return static_cast<std::size_t>(
        envLong("QPULSE_BATCH", 64, 1, 4096));
}

std::optional<std::string>
envString(const char *name)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return std::nullopt;
    return std::string(raw);
}

std::optional<std::string>
envCacheDir()
{
    return envString("QPULSE_CACHE_DIR");
}

long
envCacheMaxBytes()
{
    constexpr long kMiB = 1024L * 1024L;
    return envLong("QPULSE_CACHE_MAX_BYTES", 256L * kMiB, kMiB,
                   kMiB * kMiB);
}

} // namespace qpulse
