/**
 * @file
 * Structured error taxonomy for the execution stack.
 *
 * qpulseFatal/qpulseRequire (logging.h) report *what* went wrong as a
 * string; resilient execution additionally needs *which class* of
 * failure occurred, because the recovery action differs per class: a
 * transient shot-batch failure is retried, a validation reject is
 * never retried (the schedule is structurally wrong), a drift
 * detection triggers recalibration, and a stale augmented-basis entry
 * triggers fallback to the standard decomposition. Status carries an
 * ErrorCode plus a human-readable message; StatusError is the
 * exception form thrown at API boundaries that cannot return a Status
 * (it derives from FatalError so existing catch sites keep working).
 */
#ifndef QPULSE_COMMON_STATUS_H
#define QPULSE_COMMON_STATUS_H

#include <string>
#include <utility>

#include "common/logging.h"

namespace qpulse {

/** Failure classes of the execution stack (docs/ROBUSTNESS.md). */
enum class ErrorCode
{
    Ok = 0,

    // Validation rejects: the schedule is structurally malformed and
    // must never reach the simulator (each class is distinct so tests
    // and callers can tell them apart).
    InvalidArgument,     ///< Malformed request (bad shots, empty plan...).
    NonFiniteSample,     ///< A Play waveform contains NaN/Inf samples.
    AmplitudeSaturation, ///< |d(t)| exceeds the OpenPulse bound of 1.
    UnknownChannel,      ///< Channel index outside the backend's budget.
    NegativeTime,        ///< Instruction starts before t = 0.
    NonMonotonicTime,    ///< Overlapping Play spans on one channel.
    EmptySchedule,       ///< Schedule carries no instructions at all.
    ZeroDurationPlay,    ///< A Play instruction has no samples.

    // Execution faults: the schedule is fine but the run failed.
    TransientFailure, ///< Shot batch rejected/failed transiently.
    Timeout,          ///< Shot batch timed out.
    RetriesExhausted, ///< Bounded retry gave up; see the message.
    StaleCalibration, ///< Entry marked stale; fallback recommended.

    // Service-layer outcomes (src/service, common/cancellation.h).
    Cancelled,         ///< Cooperative cancellation via a CancelToken.
    DeadlineExceeded,  ///< The job's deadline/budget expired.
    ResourceExhausted, ///< Admission control rejected or shed the job.
    Unavailable,       ///< Backend circuit breaker is open: fail fast.

    ParseError, ///< Spec string (e.g. QPULSE_FAULT_PLAN) is malformed.

    // Ingestion boundary (src/ingest, docs/ROBUSTNESS.md). Every
    // rejection of an untrusted OpenPulse-JSON payload is one of these
    // distinct classes — never an exception, never a crash — with a
    // byte-offset + line/column context message.
    MalformedJson,      ///< JSON syntax violation (token-level).
    UnexpectedEnd,      ///< Input ended inside a value (truncation).
    InvalidUtf8,        ///< Payload is not well-formed UTF-8.
    DepthLimitExceeded, ///< Nesting deeper than the ingest limit.
    SizeLimitExceeded,  ///< Payload/string/node budget exceeded.
    NumberOutOfRange,   ///< Number overflows or violates a field range.
    DuplicateKey,       ///< An object repeats a member key.
    SchemaError,        ///< Wrong type / missing required field.
    UnknownField,       ///< A field the schema does not define.

    // Persistent artifact store (src/store, docs/PERSISTENCE.md).
    // Both classes fail *closed*: the loader quarantines the record
    // and the caller falls back to fresh derivation.
    StoreCorrupt,         ///< Checksum/framing failure in a persisted record.
    StoreVersionMismatch, ///< Record written under a different format version.
};

/** Stable kebab-case name of a code (used in messages and JSON). */
inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:                  return "ok";
      case ErrorCode::InvalidArgument:     return "invalid-argument";
      case ErrorCode::NonFiniteSample:     return "non-finite-sample";
      case ErrorCode::AmplitudeSaturation: return "amplitude-saturation";
      case ErrorCode::UnknownChannel:      return "unknown-channel";
      case ErrorCode::NegativeTime:        return "negative-time";
      case ErrorCode::NonMonotonicTime:    return "non-monotonic-time";
      case ErrorCode::EmptySchedule:       return "empty-schedule";
      case ErrorCode::ZeroDurationPlay:    return "zero-duration-play";
      case ErrorCode::TransientFailure:    return "transient-failure";
      case ErrorCode::Timeout:             return "timeout";
      case ErrorCode::RetriesExhausted:    return "retries-exhausted";
      case ErrorCode::StaleCalibration:    return "stale-calibration";
      case ErrorCode::Cancelled:           return "cancelled";
      case ErrorCode::DeadlineExceeded:    return "deadline-exceeded";
      case ErrorCode::ResourceExhausted:   return "resource-exhausted";
      case ErrorCode::Unavailable:         return "unavailable";
      case ErrorCode::ParseError:          return "parse-error";
      case ErrorCode::MalformedJson:       return "malformed-json";
      case ErrorCode::UnexpectedEnd:       return "unexpected-end";
      case ErrorCode::InvalidUtf8:         return "invalid-utf8";
      case ErrorCode::DepthLimitExceeded:  return "depth-limit";
      case ErrorCode::SizeLimitExceeded:   return "size-limit";
      case ErrorCode::NumberOutOfRange:    return "number-out-of-range";
      case ErrorCode::DuplicateKey:        return "duplicate-key";
      case ErrorCode::SchemaError:         return "schema-error";
      case ErrorCode::UnknownField:        return "unknown-field";
      case ErrorCode::StoreCorrupt:        return "store-corrupt";
      case ErrorCode::StoreVersionMismatch:
          return "store-version-mismatch";
    }
    return "unknown";
}

/** An error code plus context message; cheap to copy and return. */
class Status
{
  public:
    /** Default: success. */
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Status okStatus() { return Status(); }

    static Status
    error(ErrorCode code, std::string message)
    {
        qpulseAssert(code != ErrorCode::Ok,
                     "Status::error needs a non-Ok code");
        return Status(code, std::move(message));
    }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "non-finite-sample: pulse on d0 at t=0 ..." (or "ok"). */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        std::string out = errorCodeName(code_);
        if (!message_.empty()) {
            out += ": ";
            out += message_;
        }
        return out;
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * Exception form of a non-Ok Status, thrown at boundaries whose
 * signature cannot return a Status (e.g. PulseBackend::runShots).
 * Derives from FatalError so pre-taxonomy catch sites still work.
 */
class StatusError : public FatalError
{
  public:
    explicit StatusError(Status status)
        : FatalError("qpulse fatal: " + status.toString()),
          status_(std::move(status))
    {}

    const Status &status() const { return status_; }
    ErrorCode code() const { return status_.code(); }

  private:
    Status status_;
};

/** Throw the Status as a StatusError if it is not Ok. */
inline void
throwIfError(const Status &status)
{
    if (!status.ok())
        throw StatusError(status);
}

} // namespace qpulse

#endif // QPULSE_COMMON_STATUS_H
