/**
 * @file
 * Diagnosed environment-variable parsing.
 *
 * Every QPULSE_* knob goes through these helpers so that a typo'd or
 * out-of-range value produces a one-line stderr warning instead of a
 * silent fallback: QPULSE_THREADS (thread_pool.cc), QPULSE_FAULT_PLAN
 * (fault_injector.cc). QPULSE_SANITIZE is consumed by CMake at
 * configure time, not here; see docs/ROBUSTNESS.md for the full list.
 */
#ifndef QPULSE_COMMON_ENV_H
#define QPULSE_COMMON_ENV_H

#include <optional>
#include <string>

namespace qpulse {

/** One-line "qpulse warning: <name>: <detail>" to stderr. */
void envWarn(const std::string &name, const std::string &detail);

/**
 * Read an integer environment variable with a validity range.
 *
 * Unset -> `fallback`, silently. Unparsable (not an integer, trailing
 * junk) -> `fallback`, with a warning. Parsable but outside
 * [lo, hi] -> clamped to the nearest bound, with a warning.
 */
long envLong(const char *name, long fallback, long lo, long hi);

/** Raw string value of an environment variable, if set and non-empty. */
std::optional<std::string> envString(const char *name);

} // namespace qpulse

#endif // QPULSE_COMMON_ENV_H
