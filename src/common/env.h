/**
 * @file
 * Diagnosed environment-variable parsing.
 *
 * Every QPULSE_* knob goes through these helpers so that a typo'd or
 * out-of-range value produces a one-line stderr warning instead of a
 * silent fallback: QPULSE_THREADS (thread_pool.cc), QPULSE_BATCH
 * (envBatchWidth below), QPULSE_SERVICE_QUEUE (execution_service.cc),
 * QPULSE_FAULT_PLAN (fault_injector.cc), QPULSE_CACHE_DIR /
 * QPULSE_CACHE_MAX_BYTES (src/store), QPULSE_INGEST_MAX_BYTES
 * (src/ingest). QPULSE_SANITIZE is consumed
 * by CMake at configure time, not here; see docs/ROBUSTNESS.md for
 * the full list.
 */
#ifndef QPULSE_COMMON_ENV_H
#define QPULSE_COMMON_ENV_H

#include <optional>
#include <string>

namespace qpulse {

/** One-line "qpulse warning: <name>: <detail>" to stderr. */
void envWarn(const std::string &name, const std::string &detail);

/**
 * Read an integer environment variable with a validity range.
 *
 * Unset -> `fallback`, silently. Unparsable (not an integer, trailing
 * junk) -> `fallback`, with a warning. Parsable but outside
 * [lo, hi] -> clamped to the nearest bound, with a warning.
 */
long envLong(const char *name, long fallback, long lo, long hi);

/** Raw string value of an environment variable, if set and non-empty. */
std::optional<std::string> envString(const char *name);

/**
 * Diagnosed QPULSE_BATCH parse: the default StatePanel width used by
 * PulseBackend::runShots when PulseShotOptions::batchWidth is 0.
 * Unset -> 64; garbage -> 64 with a warning; out-of-range values are
 * clamped to [1, 4096] with a warning — the same contract as
 * QPULSE_THREADS. Re-read on every call (not cached) so tests can
 * flip the variable between runs.
 */
std::size_t envBatchWidth();

/**
 * QPULSE_CACHE_DIR: directory of the persistent artifact store
 * (docs/PERSISTENCE.md). Unset or empty -> nullopt, which disables
 * persistence entirely (behavior is then bit-identical to a build
 * without the store).
 */
std::optional<std::string> envCacheDir();

/**
 * QPULSE_CACHE_MAX_BYTES: on-disk budget of the persistent artifact
 * store. Oldest whole segments are deleted at flush time once the
 * budget is exceeded. Unset -> 256 MiB; garbage -> default with a
 * warning; clamped to [1 MiB, 1 TiB] with a warning.
 */
long envCacheMaxBytes();

/**
 * Read a byte-count environment variable with the same warn-and-clamp
 * contract as envLong, plus an optional binary suffix: "8M" = 8 MiB,
 * "64K", "2G", "1T" (case-insensitive, K/M/G/T only). A bare integer
 * is bytes. Garbage or a suffix that overflows `long` -> `fallback`
 * with a warning; out-of-range -> clamped with a warning.
 */
long envBytes(const char *name, long fallback, long lo, long hi);

/**
 * QPULSE_INGEST_MAX_BYTES: per-connection receive-buffer budget of
 * the RequestFrontEnd (src/ingest/frontend.h) and default document
 * size limit (JsonLimits::maxBytes). Unset -> 8 MiB; accepts K/M/G
 * suffixes via envBytes; clamped to [4 KiB, 1 GiB] with a warning.
 */
long envIngestMaxBytes();

} // namespace qpulse

#endif // QPULSE_COMMON_ENV_H
