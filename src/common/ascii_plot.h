/**
 * @file
 * Tiny ASCII series plotter for the bench harnesses: renders one or
 * more (x, y) series as a fixed-size character grid with axis labels,
 * so the figure-reproduction benches can sketch the actual curves
 * (decay trajectories, fidelity sweeps) alongside their tables.
 */
#ifndef QPULSE_COMMON_ASCII_PLOT_H
#define QPULSE_COMMON_ASCII_PLOT_H

#include <string>
#include <vector>

namespace qpulse {

/** One plotted series: points plus the glyph that draws them. */
struct PlotSeries
{
    std::string label;
    char glyph = '*';
    std::vector<double> xs;
    std::vector<double> ys;
};

/** Plot dimensions and bounds. */
struct PlotOptions
{
    int width = 64;   ///< Grid columns.
    int height = 16;  ///< Grid rows.
    /** Y bounds; when lo >= hi they are derived from the data. */
    double yLo = 0.0;
    double yHi = 0.0;
};

/**
 * Render the series into an ASCII chart (rows top-to-bottom, y axis
 * labelled at top/bottom, legend below).
 */
std::string renderAsciiPlot(const std::vector<PlotSeries> &series,
                            const PlotOptions &options = {});

} // namespace qpulse

#endif // QPULSE_COMMON_ASCII_PLOT_H
