#include "readout/readout.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "linalg/eigen.h"

namespace qpulse {

IqReadoutModel::IqReadoutModel(std::vector<IqPoint> centroids, double sigma)
    : centroids_(std::move(centroids)), sigma_(sigma)
{
    qpulseRequire(centroids_.size() >= 2,
                  "IqReadoutModel needs >= 2 levels");
    qpulseRequire(sigma > 0.0, "IqReadoutModel sigma must be positive");
}

IqReadoutModel
IqReadoutModel::qutritDefault()
{
    // Centroids roughly matching the separation visible in Figure 11's
    // IQ panel (arbitrary units; what matters is separation / sigma).
    return IqReadoutModel({{0.0, 0.0}, {3.2, 0.6}, {1.8, 2.9}}, 1.0);
}

IqPoint
IqReadoutModel::sampleShot(std::size_t level, Rng &rng) const
{
    qpulseRequire(level < centroids_.size(),
                  "sampleShot level out of range");
    return IqPoint{rng.gaussian(centroids_[level].i, sigma_),
                   rng.gaussian(centroids_[level].q, sigma_)};
}

IqPoint
IqReadoutModel::sampleShot(const std::vector<double> &populations,
                           Rng &rng) const
{
    qpulseRequire(populations.size() == centroids_.size(),
                  "sampleShot populations arity mismatch");
    return sampleShot(rng.discrete(populations), rng);
}

void
LdaClassifier::fit(const std::vector<IqPoint> &points,
                   const std::vector<std::size_t> &labels)
{
    qpulseRequire(points.size() == labels.size() && !points.empty(),
                  "LdaClassifier::fit data mismatch");
    const std::size_t n_classes =
        1 + *std::max_element(labels.begin(), labels.end());

    means_.assign(n_classes, IqPoint{});
    priors_.assign(n_classes, 0.0);
    std::vector<std::size_t> counts(n_classes, 0);
    for (std::size_t k = 0; k < points.size(); ++k) {
        means_[labels[k]].i += points[k].i;
        means_[labels[k]].q += points[k].q;
        ++counts[labels[k]];
    }
    for (std::size_t c = 0; c < n_classes; ++c) {
        qpulseRequire(counts[c] > 0, "LDA class ", c,
                      " has no training points");
        means_[c].i /= static_cast<double>(counts[c]);
        means_[c].q /= static_cast<double>(counts[c]);
        priors_[c] = static_cast<double>(counts[c]) /
                     static_cast<double>(points.size());
    }

    // Pooled within-class covariance.
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t k = 0; k < points.size(); ++k) {
        const double dx = points[k].i - means_[labels[k]].i;
        const double dy = points[k].q - means_[labels[k]].q;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    const double denom =
        static_cast<double>(points.size() - n_classes);
    sxx /= denom;
    sxy /= denom;
    syy /= denom;
    const double det = sxx * syy - sxy * sxy;
    qpulseRequire(std::abs(det) > 1e-300, "LDA covariance is singular");
    covInv_ = {syy / det, -sxy / det, -sxy / det, sxx / det};
    fitted_ = true;
}

std::vector<double>
LdaClassifier::decisionFunction(const IqPoint &point) const
{
    qpulseRequire(fitted_, "LdaClassifier used before fit");
    std::vector<double> scores(means_.size());
    for (std::size_t c = 0; c < means_.size(); ++c) {
        // Linear discriminant: x^T S^-1 mu - mu^T S^-1 mu / 2 + log pi.
        const double mi = means_[c].i, mq = means_[c].q;
        const double wi = covInv_[0] * mi + covInv_[1] * mq;
        const double wq = covInv_[2] * mi + covInv_[3] * mq;
        scores[c] = point.i * wi + point.q * wq -
                    0.5 * (mi * wi + mq * wq) + std::log(priors_[c]);
    }
    return scores;
}

std::size_t
LdaClassifier::predict(const IqPoint &point) const
{
    const std::vector<double> scores = decisionFunction(point);
    return static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
}

double
LdaClassifier::trainingAccuracy(
    const std::vector<IqPoint> &points,
    const std::vector<std::size_t> &labels) const
{
    qpulseRequire(points.size() == labels.size() && !points.empty(),
                  "trainingAccuracy data mismatch");
    std::size_t correct = 0;
    for (std::size_t k = 0; k < points.size(); ++k)
        if (predict(points[k]) == labels[k])
            ++correct;
    return static_cast<double>(correct) /
           static_cast<double>(points.size());
}

MeasurementMitigator::MeasurementMitigator(
    std::vector<std::vector<double>> confusion)
    : confusion_(std::move(confusion))
{
    const std::size_t n = confusion_.size();
    qpulseRequire(n > 0, "empty confusion matrix");
    for (const auto &row : confusion_)
        qpulseRequire(row.size() == n, "confusion matrix must be square");
    for (std::size_t col = 0; col < n; ++col) {
        double sum = 0.0;
        for (std::size_t row = 0; row < n; ++row)
            sum += confusion_[row][col];
        qpulseRequire(std::abs(sum - 1.0) < 1e-6,
                      "confusion matrix column ", col,
                      " does not sum to 1");
    }
}

MeasurementMitigator
MeasurementMitigator::forQubits(
    const std::vector<std::pair<double, double>> &flip_probs)
{
    const std::size_t n_qubits = flip_probs.size();
    const std::size_t dim = std::size_t{1} << n_qubits;
    std::vector<std::vector<double>> a(dim, std::vector<double>(dim, 1.0));
    for (std::size_t measured = 0; measured < dim; ++measured) {
        for (std::size_t prepared = 0; prepared < dim; ++prepared) {
            double p = 1.0;
            for (std::size_t q = 0; q < n_qubits; ++q) {
                const std::size_t shift = n_qubits - 1 - q;
                const bool bit_prep = (prepared >> shift) & 1;
                const bool bit_meas = (measured >> shift) & 1;
                const double p01 = flip_probs[q].first;  // 0 -> 1
                const double p10 = flip_probs[q].second; // 1 -> 0
                if (bit_prep)
                    p *= bit_meas ? 1.0 - p10 : p10;
                else
                    p *= bit_meas ? p01 : 1.0 - p01;
            }
            a[measured][prepared] = p;
        }
    }
    return MeasurementMitigator(std::move(a));
}

std::vector<double>
MeasurementMitigator::mitigate(const std::vector<double> &measured) const
{
    const std::size_t n = confusion_.size();
    qpulseRequire(measured.size() == n, "mitigate size mismatch");
    std::vector<double> solution =
        solveLinearReal(confusion_, measured);
    // Project onto the probability simplex: clip negatives and
    // renormalise (the standard post-processing step).
    double total = 0.0;
    for (auto &p : solution) {
        p = std::max(p, 0.0);
        total += p;
    }
    qpulseRequire(total > 0.0, "mitigated distribution vanished");
    for (auto &p : solution)
        p /= total;
    return solution;
}

} // namespace qpulse
