/**
 * @file
 * Readout chain: dispersive IQ-plane response, linear-discriminant
 * state classification, and measurement-error mitigation.
 *
 * Section 7.2 trains an sklearn LinearDiscriminantAnalysis classifier
 * on the readout resonator's IQ values for the calibrated qutrit
 * |0>, |1>, |2> states (Figure 11, left panel); we implement the same
 * pipeline: each level produces a Gaussian cloud around its dispersive
 * IQ centroid, an LDA classifier is trained on labelled calibration
 * shots, and experiment shots are classified per shot. Section 2.4's
 * measurement-error mitigation (confusion-matrix inversion with a
 * least-squares non-negative correction) is also provided.
 */
#ifndef QPULSE_READOUT_READOUT_H
#define QPULSE_READOUT_READOUT_H

#include <array>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace qpulse {

/** A single readout shot in the IQ plane. */
struct IqPoint
{
    double i = 0.0;
    double q = 0.0;
};

/**
 * Dispersive readout model: each transmon level shifts the resonator
 * response to a distinct IQ centroid; shot noise makes each
 * measurement a Gaussian sample around the centroid.
 */
class IqReadoutModel
{
  public:
    /**
     * @param centroids Per-level IQ centroids (size = level count).
     * @param sigma     Gaussian cloud radius (same for all levels).
     */
    IqReadoutModel(std::vector<IqPoint> centroids, double sigma);

    /** Default 3-level model with well-separated clouds. */
    static IqReadoutModel qutritDefault();

    std::size_t levels() const { return centroids_.size(); }
    const std::vector<IqPoint> &centroids() const { return centroids_; }
    double sigma() const { return sigma_; }

    /** One shot given the true level. */
    IqPoint sampleShot(std::size_t level, Rng &rng) const;

    /** One shot given level populations (samples the level first). */
    IqPoint sampleShot(const std::vector<double> &populations,
                       Rng &rng) const;

  private:
    std::vector<IqPoint> centroids_;
    double sigma_;
};

/**
 * Linear Discriminant Analysis classifier over IQ points (the same
 * estimator sklearn's LinearDiscriminantAnalysis fits: shared
 * covariance, per-class means, linear decision functions).
 */
class LdaClassifier
{
  public:
    /**
     * Fit from labelled training data.
     *
     * @param points Training shots.
     * @param labels Class label per shot (0-based, contiguous).
     */
    void fit(const std::vector<IqPoint> &points,
             const std::vector<std::size_t> &labels);

    /** Number of classes seen at fit time. */
    std::size_t classCount() const { return means_.size(); }

    /** Predict the class of one point. */
    std::size_t predict(const IqPoint &point) const;

    /** Per-class linear scores (higher = more likely). */
    std::vector<double> decisionFunction(const IqPoint &point) const;

    /** Fraction of training points classified correctly. */
    double trainingAccuracy(const std::vector<IqPoint> &points,
                            const std::vector<std::size_t> &labels) const;

  private:
    std::vector<IqPoint> means_;
    std::vector<double> priors_;
    // Inverse of the shared 2x2 covariance.
    std::array<double, 4> covInv_{};
    bool fitted_ = false;
};

/**
 * Measurement-error mitigation via confusion-matrix inversion
 * (Section 2.4): A * p_true = p_measured, solved by least squares and
 * projected back onto the probability simplex.
 */
class MeasurementMitigator
{
  public:
    /** Build from a column-stochastic confusion matrix
     *  A[measured][prepared]. */
    explicit MeasurementMitigator(
        std::vector<std::vector<double>> confusion);

    /**
     * Build the 2^n confusion matrix from independent per-qubit flip
     * probabilities.
     */
    static MeasurementMitigator forQubits(
        const std::vector<std::pair<double, double>> &flip_probs);

    /** Mitigate a measured distribution. */
    std::vector<double> mitigate(const std::vector<double> &measured) const;

  private:
    std::vector<std::vector<double>> confusion_;
};

} // namespace qpulse

#endif // QPULSE_READOUT_READOUT_H
