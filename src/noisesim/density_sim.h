/**
 * @file
 * Duration-aware noisy density-matrix simulator.
 *
 * This is the error model behind the paper's full-benchmark results
 * (Figures 10, 12, 13), organised around the three fidelity-improvement
 * sources of Section 8.3:
 *
 *  1. Shorter pulses  — every gate charges amplitude- and phase-damping
 *     on its qubits for the *actual compiled schedule duration*, and
 *     qubits idling while others run accumulate the same decoherence,
 *     so a 2x-shorter schedule decoheres half as much.
 *  2. Calibration-error susceptibility — each calibrated pulse
 *     application contributes depolarizing error, so lowering the
 *     pulse count (DirectRx: 1 pulse vs 2; CR(theta): stretched pulse
 *     pair vs two full CNOT echoes) lowers the error multiplicatively.
 *  3. Smaller amplitudes — an additional depolarizing term grows with
 *     the squared peak amplitude (spectral leakage proxy), so
 *     amplitude-downscaled pulses are cleaner.
 *
 * Each knob can be switched off individually for the ablation studies.
 */
#ifndef QPULSE_NOISESIM_DENSITY_SIM_H
#define QPULSE_NOISESIM_DENSITY_SIM_H

#include <functional>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "device/backend_config.h"
#include "linalg/matrix.h"

namespace qpulse {

/** Per-gate noise accounting extracted from the compiled schedule. */
struct GateNoiseInfo
{
    long duration = 0;        ///< Schedule duration in dt.
    double error1qWeight = 0; ///< Sum over 1q pulses of (amp/cal)^2.
    double error2qWeight = 0; ///< CR pulse weight (stretch fraction).
    double peakAmplitude = 0; ///< Max |d(t)| across the gate's pulses.
};

/** Supplies the noise accounting for each gate instance. */
using NoiseInfoProvider = std::function<GateNoiseInfo(const Gate &)>;

/** Which of the three error sources are active (ablation switches). */
struct NoiseSwitches
{
    bool decoherence = true;
    bool pulseError = true;
    bool amplitudeError = true;
};

/** Result of a noisy circuit execution. */
struct NoisyRunResult
{
    Matrix density;            ///< Final density matrix.
    long makespan = 0;         ///< Total schedule length in dt.
    std::vector<double> probs; ///< Measurement distribution, with
                               ///< readout error folded in.
};

/**
 * Density-matrix simulator with schedule-aware decoherence.
 */
class DensitySimulator
{
  public:
    /**
     * @param config   Backend whose T1/T2, readout and noise budget
     *                 apply.
     * @param provider Per-gate schedule accounting (typically wraps
     *                 PulseBackend::cmdDef()).
     */
    DensitySimulator(const BackendConfig &config,
                     NoiseInfoProvider provider);

    void setSwitches(const NoiseSwitches &switches)
    {
        switches_ = switches;
    }

    /**
     * Run a circuit (Measure/Barrier directives allowed; measurement
     * is terminal) and return the final state and the readout
     * distribution over 2^n outcomes.
     */
    NoisyRunResult run(const QuantumCircuit &circuit) const;

    /** Sample counts from a run's distribution. */
    std::vector<long> sampleCounts(const NoisyRunResult &result,
                                   long shots, Rng &rng) const;

    /** Apply the per-qubit readout confusion to a distribution. */
    std::vector<double> applyReadoutError(
        const std::vector<double> &probs, std::size_t n_qubits) const;

  private:
    /** T1/T2 Kraus decay on one qubit for a duration in dt. */
    void applyDecoherence(Matrix &rho, std::size_t qubit,
                          long duration_dt, std::size_t n_qubits) const;

    /** Depolarizing channel of strength p on the given qubits. */
    void applyDepolarizing(Matrix &rho,
                           const std::vector<std::size_t> &qubits,
                           double p, std::size_t n_qubits) const;

    BackendConfig config_;
    NoiseInfoProvider provider_;
    NoiseSwitches switches_;
};

} // namespace qpulse

#endif // QPULSE_NOISESIM_DENSITY_SIM_H
