#include "noisesim/density_sim.h"

#include <cmath>

#include "common/constants.h"
#include "linalg/gates.h"

namespace qpulse {

DensitySimulator::DensitySimulator(const BackendConfig &config,
                                   NoiseInfoProvider provider)
    : config_(config), provider_(std::move(provider))
{
    qpulseRequire(provider_ != nullptr,
                  "DensitySimulator needs a noise-info provider");
}

void
DensitySimulator::applyDecoherence(Matrix &rho, std::size_t qubit,
                                   long duration_dt,
                                   std::size_t n_qubits) const
{
    if (!switches_.decoherence || duration_dt <= 0)
        return;
    const auto &params = config_.qubits[qubit];
    const double t_ns = dtToNs(duration_dt);
    const double gamma = 1.0 - std::exp(-t_ns / (params.t1Us * 1000.0));
    const double t2_decay = std::exp(-t_ns / (params.t2Us * 1000.0));
    // Split T2 into the T1 contribution and pure dephasing.
    const double t1_coherence = std::exp(-t_ns / (2.0 * params.t1Us *
                                                  1000.0));
    const double dephase = std::min(1.0, t2_decay / t1_coherence);

    // Amplitude damping Kraus: K0 = diag(1, sqrt(1-gamma)),
    // K1 = sqrt(gamma) |0><1|; then pure dephasing scales coherences.
    const Matrix k0 = Matrix{{1, 0}, {0, std::sqrt(1.0 - gamma)}};
    const Matrix k1 = Matrix{{0, std::sqrt(gamma)}, {0, 0}};
    const Matrix e0 = gates::embed1q(k0, qubit, n_qubits);
    const Matrix e1 = gates::embed1q(k1, qubit, n_qubits);
    rho = e0 * rho * e0.adjoint() + e1 * rho * e1.adjoint();

    if (dephase < 1.0) {
        // Phase damping: coherences in this qubit's (0,1) pair decay.
        const double p = 1.0 - dephase * dephase;
        const Matrix z = gates::embed1q(gates::z(), qubit, n_qubits);
        const double keep = (1.0 + std::sqrt(1.0 - p)) / 2.0;
        rho = rho * Complex{keep, 0.0} +
              z * rho * z * Complex{1.0 - keep, 0.0};
    }
}

void
DensitySimulator::applyDepolarizing(Matrix &rho,
                                    const std::vector<std::size_t> &qubits,
                                    double p, std::size_t n_qubits) const
{
    if (p <= 0.0)
        return;
    qpulseRequire(p <= 1.0, "depolarizing probability > 1");
    // rho -> (1-p) rho + p * (partial trace replaced by I/d on the
    // gate qubits). Implemented via uniform Pauli twirl on the qubits.
    const std::vector<Matrix> paulis = {gates::i2(), gates::x(),
                                        gates::y(), gates::z()};
    Matrix mixed(rho.rows(), rho.cols());
    const std::size_t combos =
        qubits.size() == 1 ? 4 : 16;
    for (std::size_t combo = 0; combo < combos; ++combo) {
        Matrix op = Matrix::identity(rho.rows());
        std::size_t rest = combo;
        for (std::size_t q : qubits) {
            const Matrix &pauli = paulis[rest % 4];
            rest /= 4;
            op = gates::embed1q(pauli, q, n_qubits) * op;
        }
        mixed += op * rho * op.adjoint();
    }
    mixed *= Complex{1.0 / static_cast<double>(combos), 0.0};
    rho = rho * Complex{1.0 - p, 0.0} + mixed * Complex{p, 0.0};
}

NoisyRunResult
DensitySimulator::run(const QuantumCircuit &circuit) const
{
    const std::size_t n = circuit.numQubits();
    qpulseRequire(n <= config_.numQubits,
                  "circuit wider than the backend");
    const std::size_t dim = std::size_t{1} << n;

    Matrix rho(dim, dim);
    rho(0, 0) = Complex{1.0, 0.0};

    std::vector<long> cursor(n, 0);
    std::vector<bool> measured(n, false);

    for (const auto &gate : circuit.gates()) {
        if (gate.type == GateType::Barrier) {
            long latest = 0;
            for (long c : cursor)
                latest = std::max(latest, c);
            for (std::size_t q = 0; q < n; ++q) {
                applyDecoherence(rho, q, latest - cursor[q], n);
                cursor[q] = latest;
            }
            continue;
        }
        if (gate.type == GateType::Measure) {
            measured[gate.qubits[0]] = true;
            continue; // Terminal measurement handled below.
        }
        for (std::size_t q : gate.qubits)
            qpulseRequire(!measured[q],
                          "mid-circuit gates after measurement are not "
                          "supported (qubit ", q, ")");

        const GateNoiseInfo info = provider_(gate);

        // Sync the participating qubits (idle decoherence).
        long start = 0;
        for (std::size_t q : gate.qubits)
            start = std::max(start, cursor[q]);
        for (std::size_t q : gate.qubits) {
            applyDecoherence(rho, q, start - cursor[q], n);
            cursor[q] = start + info.duration;
        }

        // Ideal unitary.
        Matrix u;
        if (gate.qubits.size() == 1)
            u = gates::embed1q(gate.matrix(), gate.qubits[0], n);
        else
            u = gates::embed2q(gate.matrix(), gate.qubits[0],
                               gate.qubits[1], n);
        rho = u * rho * u.adjoint();

        // Error source 1: decoherence over the gate duration.
        for (std::size_t q : gate.qubits)
            applyDecoherence(rho, q, info.duration, n);

        // Error sources 2 + 3: per-pulse and amplitude-dependent
        // depolarizing.
        double p = 0.0;
        if (switches_.pulseError)
            p += config_.noise.perPulseError1q * info.error1qWeight +
                 config_.noise.perPulseError2q * info.error2qWeight;
        if (switches_.amplitudeError)
            p += config_.noise.leakagePerAmpSq * info.peakAmplitude *
                 info.peakAmplitude;
        if (p > 0.0)
            applyDepolarizing(rho, gate.qubits, std::min(p, 1.0), n);
    }

    // Final sync: all qubits decohere until the makespan, then during
    // readout.
    long makespan = 0;
    for (long c : cursor)
        makespan = std::max(makespan, c);
    for (std::size_t q = 0; q < n; ++q)
        applyDecoherence(rho, q, makespan - cursor[q], n);

    NoisyRunResult result;
    result.makespan = makespan;

    std::vector<double> probs(dim);
    for (std::size_t i = 0; i < dim; ++i)
        probs[i] = std::max(0.0, rho(i, i).real());
    result.probs = applyReadoutError(probs, n);
    result.density = std::move(rho);
    return result;
}

std::vector<double>
DensitySimulator::applyReadoutError(const std::vector<double> &probs,
                                    std::size_t n_qubits) const
{
    std::vector<double> current = probs;
    for (std::size_t q = 0; q < n_qubits; ++q) {
        const ReadoutError &err = config_.readout[q];
        std::vector<double> next(current.size(), 0.0);
        const std::size_t shift = n_qubits - 1 - q;
        for (std::size_t idx = 0; idx < current.size(); ++idx) {
            const bool bit = (idx >> shift) & 1;
            const std::size_t flipped = idx ^ (std::size_t{1} << shift);
            const double p_keep =
                bit ? 1.0 - err.probFlip1to0 : 1.0 - err.probFlip0to1;
            const double p_flip = 1.0 - p_keep;
            next[idx] += current[idx] * p_keep;
            next[flipped] += current[idx] * p_flip;
        }
        current = std::move(next);
    }
    return current;
}

std::vector<long>
DensitySimulator::sampleCounts(const NoisyRunResult &result, long shots,
                               Rng &rng) const
{
    return rng.multinomial(shots, result.probs);
}

} // namespace qpulse
