#include "noisesim/statevector.h"

#include "common/logging.h"

namespace qpulse {

std::vector<double>
idealDistribution(const QuantumCircuit &circuit)
{
    const Vector state = circuit.runStatevector();
    std::vector<double> probs(state.size());
    for (std::size_t i = 0; i < state.size(); ++i)
        probs[i] = std::norm(state[i]);
    return probs;
}

std::vector<long>
sampleIdealCounts(const QuantumCircuit &circuit, long shots, Rng &rng)
{
    return rng.multinomial(shots, idealDistribution(circuit));
}

double
diagonalExpectation(const std::vector<double> &probs,
                    const std::vector<double> &values)
{
    qpulseRequire(probs.size() == values.size(),
                  "diagonalExpectation size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i)
        total += probs[i] * values[i];
    return total;
}

} // namespace qpulse
