/**
 * @file
 * Noise-free reference execution: ideal outcome distributions and
 * sampled counts, used as the "target distribution" against which the
 * Hellinger error of noisy runs is computed (Section 8.1).
 */
#ifndef QPULSE_NOISESIM_STATEVECTOR_H
#define QPULSE_NOISESIM_STATEVECTOR_H

#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"

namespace qpulse {

/** Ideal computational-basis distribution of a circuit on |0...0>. */
std::vector<double> idealDistribution(const QuantumCircuit &circuit);

/** Sample counts from the ideal distribution. */
std::vector<long> sampleIdealCounts(const QuantumCircuit &circuit,
                                    long shots, Rng &rng);

/** Expectation of a diagonal observable given by per-outcome values. */
double diagonalExpectation(const std::vector<double> &probs,
                           const std::vector<double> &values);

} // namespace qpulse

#endif // QPULSE_NOISESIM_STATEVECTOR_H
