#include "pauli/pauli.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/eigen.h"
#include "linalg/gates.h"

namespace qpulse {

PauliProduct
multiplyPauli(PauliOp a, PauliOp b)
{
    if (a == PauliOp::I)
        return {b, 0};
    if (b == PauliOp::I)
        return {a, 0};
    if (a == b)
        return {PauliOp::I, 0};

    // Cyclic: X*Y = iZ, Y*Z = iX, Z*X = iY; reversed order picks up -i.
    auto index = [](PauliOp op) {
        switch (op) {
          case PauliOp::X: return 0;
          case PauliOp::Y: return 1;
          default:         return 2;
        }
    };
    static const PauliOp third[3][3] = {
        {PauliOp::I, PauliOp::Z, PauliOp::Y},
        {PauliOp::Z, PauliOp::I, PauliOp::X},
        {PauliOp::Y, PauliOp::X, PauliOp::I},
    };
    const int ia = index(a), ib = index(b);
    const PauliOp result = third[ia][ib];
    // (ia+1)%3 == ib means cyclic order -> +i (iPower 1), else -i (3).
    const bool cyclic = (ia + 1) % 3 == ib;
    return {result, cyclic ? 1 : 3};
}

PauliString
PauliString::parse(const std::string &text)
{
    PauliString result(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        switch (text[i]) {
          case 'I': result.ops_[i] = PauliOp::I; break;
          case 'X': result.ops_[i] = PauliOp::X; break;
          case 'Y': result.ops_[i] = PauliOp::Y; break;
          case 'Z': result.ops_[i] = PauliOp::Z; break;
          default:
            qpulseFatal("invalid Pauli character '", text[i], "' in \"",
                        text, "\"");
        }
    }
    return result;
}

std::size_t
PauliString::weight() const
{
    std::size_t count = 0;
    for (PauliOp op : ops_)
        if (op != PauliOp::I)
            ++count;
    return count;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    qpulseRequire(numQubits() == other.numQubits(),
                  "commutesWith size mismatch");
    // Two strings commute iff they anticommute on an even number of
    // qubit positions.
    std::size_t anticommuting = 0;
    for (std::size_t q = 0; q < ops_.size(); ++q) {
        const PauliOp a = ops_[q], b = other.ops_[q];
        if (a != PauliOp::I && b != PauliOp::I && a != b)
            ++anticommuting;
    }
    return anticommuting % 2 == 0;
}

std::pair<PauliString, int>
PauliString::multiply(const PauliString &other) const
{
    qpulseRequire(numQubits() == other.numQubits(),
                  "multiply size mismatch");
    PauliString result(numQubits());
    int i_power = 0;
    for (std::size_t q = 0; q < ops_.size(); ++q) {
        const PauliProduct product = multiplyPauli(ops_[q], other.ops_[q]);
        result.ops_[q] = product.op;
        i_power = (i_power + product.iPower) % 4;
    }
    return {result, i_power};
}

Matrix
PauliString::toMatrix() const
{
    qpulseRequire(!ops_.empty(), "toMatrix on empty Pauli string");
    std::vector<Matrix> factors;
    factors.reserve(ops_.size());
    for (PauliOp op : ops_) {
        switch (op) {
          case PauliOp::I: factors.push_back(gates::i2()); break;
          case PauliOp::X: factors.push_back(gates::x()); break;
          case PauliOp::Y: factors.push_back(gates::y()); break;
          case PauliOp::Z: factors.push_back(gates::z()); break;
        }
    }
    return kronAll(factors);
}

std::string
PauliString::toString() const
{
    std::string text;
    text.reserve(ops_.size());
    for (PauliOp op : ops_) {
        switch (op) {
          case PauliOp::I: text += 'I'; break;
          case PauliOp::X: text += 'X'; break;
          case PauliOp::Y: text += 'Y'; break;
          case PauliOp::Z: text += 'Z'; break;
        }
    }
    return text;
}

void
PauliOperator::addTerm(double coefficient, const PauliString &string)
{
    if (numQubits_ == 0)
        numQubits_ = string.numQubits();
    qpulseRequire(string.numQubits() == numQubits_,
                  "PauliOperator term arity mismatch");
    for (auto &term : terms_) {
        if (term.string == string) {
            term.coefficient += coefficient;
            return;
        }
    }
    terms_.push_back({coefficient, string});
}

void
PauliOperator::addTerm(double coefficient, const std::string &text)
{
    addTerm(coefficient, PauliString::parse(text));
}

void
PauliOperator::prune(double threshold)
{
    terms_.erase(std::remove_if(terms_.begin(), terms_.end(),
                                [&](const PauliTerm &term) {
                                    return std::abs(term.coefficient) <
                                           threshold;
                                }),
                 terms_.end());
}

Matrix
PauliOperator::toMatrix() const
{
    qpulseRequire(numQubits_ > 0, "toMatrix on empty operator");
    const std::size_t dim = std::size_t{1} << numQubits_;
    Matrix result(dim, dim);
    for (const auto &term : terms_)
        result += term.string.toMatrix() * Complex{term.coefficient, 0.0};
    return result;
}

double
PauliOperator::expectation(const Vector &state) const
{
    double total = 0.0;
    for (const auto &term : terms_) {
        const Matrix m = term.string.toMatrix();
        total += term.coefficient * state.dot(m.apply(state)).real();
    }
    return total;
}

double
PauliOperator::groundStateEnergy() const
{
    const EigenSystem es = eigHermitian(toMatrix());
    return es.values.front();
}

PauliOperator
PauliOperator::operator+(const PauliOperator &other) const
{
    PauliOperator result = *this;
    for (const auto &term : other.terms_)
        result.addTerm(term.coefficient, term.string);
    return result;
}

PauliOperator
PauliOperator::operator*(double scale) const
{
    PauliOperator result = *this;
    for (auto &term : result.terms_)
        term.coefficient *= scale;
    return result;
}

std::string
PauliOperator::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &term : terms_) {
        if (!first)
            os << " + ";
        os << term.coefficient << "*" << term.string.toString();
        first = false;
    }
    return os.str();
}

} // namespace qpulse
