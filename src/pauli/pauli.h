/**
 * @file
 * Pauli-string and Pauli-sum operator algebra.
 *
 * Near-term algorithms (Section 8.1) are dominated by Hamiltonian
 * simulation kernels: molecular Hamiltonians and Ising cost functions
 * are weighted sums of Pauli strings, and their Trotterized evolution
 * is exactly the source of the ZZ-interaction templates the compiler
 * optimizes. This module provides the string representation, the
 * algebra (products and commutators with phase tracking), dense matrix
 * conversion, and expectation values.
 */
#ifndef QPULSE_PAULI_PAULI_H
#define QPULSE_PAULI_PAULI_H

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace qpulse {

/** Single-qubit Pauli label. */
enum class PauliOp : unsigned char { I, X, Y, Z };

/** Multiply two single-qubit Paulis; returns the result and i-power. */
struct PauliProduct
{
    PauliOp op;
    int iPower; ///< Phase as a power of i (0..3).
};
PauliProduct multiplyPauli(PauliOp a, PauliOp b);

/**
 * An n-qubit Pauli string such as "XZIY" (qubit 0 first).
 */
class PauliString
{
  public:
    PauliString() = default;

    /** Identity string on n qubits. */
    explicit PauliString(std::size_t n_qubits)
        : ops_(n_qubits, PauliOp::I)
    {}

    /** Parse from text, e.g. "XZIY". */
    static PauliString parse(const std::string &text);

    std::size_t numQubits() const { return ops_.size(); }

    PauliOp op(std::size_t qubit) const { return ops_[qubit]; }
    void setOp(std::size_t qubit, PauliOp op) { ops_[qubit] = op; }

    /** Number of non-identity factors. */
    std::size_t weight() const;

    /** True if every factor is the identity. */
    bool isIdentity() const { return weight() == 0; }

    /** True if the two strings commute as operators. */
    bool commutesWith(const PauliString &other) const;

    /** Product with phase tracking: returns (string, i-power). */
    std::pair<PauliString, int> multiply(const PauliString &other) const;

    /** Dense 2^n x 2^n matrix. */
    Matrix toMatrix() const;

    /** Text form, e.g. "XZIY". */
    std::string toString() const;

    bool operator==(const PauliString &other) const
    {
        return ops_ == other.ops_;
    }
    bool operator<(const PauliString &other) const
    {
        return ops_ < other.ops_;
    }

  private:
    std::vector<PauliOp> ops_;
};

/** One weighted term of a Pauli-sum operator. */
struct PauliTerm
{
    double coefficient;
    PauliString string;
};

/**
 * A Hermitian operator expressed as a real-weighted sum of Pauli
 * strings (the standard form of near-term Hamiltonians).
 */
class PauliOperator
{
  public:
    PauliOperator() = default;
    explicit PauliOperator(std::size_t n_qubits) : numQubits_(n_qubits) {}

    /** Add a term, combining with an existing equal string if present. */
    void addTerm(double coefficient, const PauliString &string);

    /** Convenience: add a term from text form. */
    void addTerm(double coefficient, const std::string &text);

    std::size_t numQubits() const { return numQubits_; }
    const std::vector<PauliTerm> &terms() const { return terms_; }

    /** Drop terms with |coefficient| below the threshold. */
    void prune(double threshold = 1e-12);

    /** Dense matrix representation. */
    Matrix toMatrix() const;

    /** Real expectation value <state| O |state>. */
    double expectation(const Vector &state) const;

    /** Smallest eigenvalue (via dense eigendecomposition). */
    double groundStateEnergy() const;

    /** Sum of two operators. */
    PauliOperator operator+(const PauliOperator &other) const;

    /** Scalar multiple. */
    PauliOperator operator*(double scale) const;

    std::string toString() const;

  private:
    std::size_t numQubits_ = 0;
    std::vector<PauliTerm> terms_;
};

} // namespace qpulse

#endif // QPULSE_PAULI_PAULI_H
