# Empty compiler generated dependencies file for bench_ablation_noise_sources.
# This may be replaced when dependencies are built.
