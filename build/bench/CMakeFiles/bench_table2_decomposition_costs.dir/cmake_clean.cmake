file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_decomposition_costs.dir/bench_table2_decomposition_costs.cc.o"
  "CMakeFiles/bench_table2_decomposition_costs.dir/bench_table2_decomposition_costs.cc.o.d"
  "bench_table2_decomposition_costs"
  "bench_table2_decomposition_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_decomposition_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
