# Empty compiler generated dependencies file for bench_ablation_far_term.
# This may be replaced when dependencies are built.
