file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_open_cnot.dir/bench_fig8_open_cnot.cc.o"
  "CMakeFiles/bench_fig8_open_cnot.dir/bench_fig8_open_cnot.cc.o.d"
  "bench_fig8_open_cnot"
  "bench_fig8_open_cnot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_open_cnot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
