# Empty compiler generated dependencies file for bench_fig8_open_cnot.
# This may be replaced when dependencies are built.
