file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_drift.dir/bench_ablation_drift.cc.o"
  "CMakeFiles/bench_ablation_drift.dir/bench_ablation_drift.cc.o.d"
  "bench_ablation_drift"
  "bench_ablation_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
