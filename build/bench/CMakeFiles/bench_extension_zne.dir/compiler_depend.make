# Empty compiler generated dependencies file for bench_extension_zne.
# This may be replaced when dependencies are built.
