file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_zne.dir/bench_extension_zne.cc.o"
  "CMakeFiles/bench_extension_zne.dir/bench_extension_zne.cc.o.d"
  "bench_extension_zne"
  "bench_extension_zne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_zne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
