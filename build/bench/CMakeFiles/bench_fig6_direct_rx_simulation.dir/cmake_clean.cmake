file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_direct_rx_simulation.dir/bench_fig6_direct_rx_simulation.cc.o"
  "CMakeFiles/bench_fig6_direct_rx_simulation.dir/bench_fig6_direct_rx_simulation.cc.o.d"
  "bench_fig6_direct_rx_simulation"
  "bench_fig6_direct_rx_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_direct_rx_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
