# Empty dependencies file for bench_fig6_direct_rx_simulation.
# This may be replaced when dependencies are built.
