# Empty compiler generated dependencies file for bench_fig13_randomized_benchmarking.
# This may be replaced when dependencies are built.
