file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_randomized_benchmarking.dir/bench_fig13_randomized_benchmarking.cc.o"
  "CMakeFiles/bench_fig13_randomized_benchmarking.dir/bench_fig13_randomized_benchmarking.cc.o.d"
  "bench_fig13_randomized_benchmarking"
  "bench_fig13_randomized_benchmarking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_randomized_benchmarking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
