file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_direct_rx_experiment.dir/bench_fig7_direct_rx_experiment.cc.o"
  "CMakeFiles/bench_fig7_direct_rx_experiment.dir/bench_fig7_direct_rx_experiment.cc.o.d"
  "bench_fig7_direct_rx_experiment"
  "bench_fig7_direct_rx_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_direct_rx_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
