# Empty dependencies file for bench_fig7_direct_rx_experiment.
# This may be replaced when dependencies are built.
