# Empty compiler generated dependencies file for bench_fig11_qutrit_counter.
# This may be replaced when dependencies are built.
