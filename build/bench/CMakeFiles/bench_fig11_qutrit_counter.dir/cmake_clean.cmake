file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_qutrit_counter.dir/bench_fig11_qutrit_counter.cc.o"
  "CMakeFiles/bench_fig11_qutrit_counter.dir/bench_fig11_qutrit_counter.cc.o.d"
  "bench_fig11_qutrit_counter"
  "bench_fig11_qutrit_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_qutrit_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
