file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_benchmarks.dir/bench_fig12_benchmarks.cc.o"
  "CMakeFiles/bench_fig12_benchmarks.dir/bench_fig12_benchmarks.cc.o.d"
  "bench_fig12_benchmarks"
  "bench_fig12_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
