file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_direct_x.dir/bench_fig4_direct_x.cc.o"
  "CMakeFiles/bench_fig4_direct_x.dir/bench_fig4_direct_x.cc.o.d"
  "bench_fig4_direct_x"
  "bench_fig4_direct_x.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_direct_x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
