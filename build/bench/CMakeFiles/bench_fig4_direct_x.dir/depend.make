# Empty dependencies file for bench_fig4_direct_x.
# This may be replaced when dependencies are built.
