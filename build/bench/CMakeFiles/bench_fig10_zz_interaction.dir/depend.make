# Empty dependencies file for bench_fig10_zz_interaction.
# This may be replaced when dependencies are built.
