file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_direct_rx_fidelity.dir/bench_fig5_direct_rx_fidelity.cc.o"
  "CMakeFiles/bench_fig5_direct_rx_fidelity.dir/bench_fig5_direct_rx_fidelity.cc.o.d"
  "bench_fig5_direct_rx_fidelity"
  "bench_fig5_direct_rx_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_direct_rx_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
