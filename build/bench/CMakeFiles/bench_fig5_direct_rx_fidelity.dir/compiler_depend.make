# Empty compiler generated dependencies file for bench_fig5_direct_rx_fidelity.
# This may be replaced when dependencies are built.
