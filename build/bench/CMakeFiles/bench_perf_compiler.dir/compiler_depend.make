# Empty compiler generated dependencies file for bench_perf_compiler.
# This may be replaced when dependencies are built.
