file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_compiler.dir/bench_perf_compiler.cc.o"
  "CMakeFiles/bench_perf_compiler.dir/bench_perf_compiler.cc.o.d"
  "bench_perf_compiler"
  "bench_perf_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
