file(REMOVE_RECURSE
  "CMakeFiles/test_rb.dir/test_rb.cc.o"
  "CMakeFiles/test_rb.dir/test_rb.cc.o.d"
  "test_rb"
  "test_rb.pdb"
  "test_rb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
