# Empty dependencies file for test_rb.
# This may be replaced when dependencies are built.
