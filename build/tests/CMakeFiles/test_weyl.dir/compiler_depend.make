# Empty compiler generated dependencies file for test_weyl.
# This may be replaced when dependencies are built.
