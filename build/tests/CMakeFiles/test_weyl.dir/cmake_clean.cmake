file(REMOVE_RECURSE
  "CMakeFiles/test_weyl.dir/test_weyl.cc.o"
  "CMakeFiles/test_weyl.dir/test_weyl.cc.o.d"
  "test_weyl"
  "test_weyl.pdb"
  "test_weyl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weyl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
