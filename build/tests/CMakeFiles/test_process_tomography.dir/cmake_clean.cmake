file(REMOVE_RECURSE
  "CMakeFiles/test_process_tomography.dir/test_process_tomography.cc.o"
  "CMakeFiles/test_process_tomography.dir/test_process_tomography.cc.o.d"
  "test_process_tomography"
  "test_process_tomography.pdb"
  "test_process_tomography[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_process_tomography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
