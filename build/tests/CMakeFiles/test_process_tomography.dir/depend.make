# Empty dependencies file for test_process_tomography.
# This may be replaced when dependencies are built.
