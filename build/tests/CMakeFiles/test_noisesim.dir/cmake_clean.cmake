file(REMOVE_RECURSE
  "CMakeFiles/test_noisesim.dir/test_noisesim.cc.o"
  "CMakeFiles/test_noisesim.dir/test_noisesim.cc.o.d"
  "test_noisesim"
  "test_noisesim.pdb"
  "test_noisesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noisesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
