# Empty compiler generated dependencies file for test_noisesim.
# This may be replaced when dependencies are built.
