
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_qudit.cc" "tests/CMakeFiles/test_qudit.dir/test_qudit.cc.o" "gcc" "tests/CMakeFiles/test_qudit.dir/test_qudit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qudit/CMakeFiles/qpulse_qudit.dir/DependInfo.cmake"
  "/root/repo/build/src/rb/CMakeFiles/qpulse_rb.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/qpulse_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qpulse_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/noisesim/CMakeFiles/qpulse_noisesim.dir/DependInfo.cmake"
  "/root/repo/build/src/readout/CMakeFiles/qpulse_readout.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/qpulse_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/qpulse_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qpulse_device.dir/DependInfo.cmake"
  "/root/repo/build/src/pulsesim/CMakeFiles/qpulse_pulsesim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/qpulse_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/pauli/CMakeFiles/qpulse_pauli.dir/DependInfo.cmake"
  "/root/repo/build/src/pulse/CMakeFiles/qpulse_pulse.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qpulse_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/qpulse_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qpulse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qpulse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
