# Empty dependencies file for test_qudit.
# This may be replaced when dependencies are built.
