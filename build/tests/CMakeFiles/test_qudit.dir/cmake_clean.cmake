file(REMOVE_RECURSE
  "CMakeFiles/test_qudit.dir/test_qudit.cc.o"
  "CMakeFiles/test_qudit.dir/test_qudit.cc.o.d"
  "test_qudit"
  "test_qudit.pdb"
  "test_qudit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qudit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
