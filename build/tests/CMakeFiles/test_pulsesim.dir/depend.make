# Empty dependencies file for test_pulsesim.
# This may be replaced when dependencies are built.
