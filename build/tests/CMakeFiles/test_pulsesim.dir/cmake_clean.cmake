file(REMOVE_RECURSE
  "CMakeFiles/test_pulsesim.dir/test_pulsesim.cc.o"
  "CMakeFiles/test_pulsesim.dir/test_pulsesim.cc.o.d"
  "test_pulsesim"
  "test_pulsesim.pdb"
  "test_pulsesim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pulsesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
