# Empty compiler generated dependencies file for test_qobj.
# This may be replaced when dependencies are built.
