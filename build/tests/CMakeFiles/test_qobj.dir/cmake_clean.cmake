file(REMOVE_RECURSE
  "CMakeFiles/test_qobj.dir/test_qobj.cc.o"
  "CMakeFiles/test_qobj.dir/test_qobj.cc.o.d"
  "test_qobj"
  "test_qobj.pdb"
  "test_qobj[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qobj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
