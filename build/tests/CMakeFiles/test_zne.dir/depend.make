# Empty dependencies file for test_zne.
# This may be replaced when dependencies are built.
