file(REMOVE_RECURSE
  "CMakeFiles/test_readout.dir/test_readout.cc.o"
  "CMakeFiles/test_readout.dir/test_readout.cc.o.d"
  "test_readout"
  "test_readout.pdb"
  "test_readout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_readout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
