# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_pauli[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_dag[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_weyl[1]_include.cmake")
include("/root/repo/build/tests/test_pulse[1]_include.cmake")
include("/root/repo/build/tests/test_pulsesim[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_noisesim[1]_include.cmake")
include("/root/repo/build/tests/test_readout[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_transpile[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_algos[1]_include.cmake")
include("/root/repo/build/tests/test_rb[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_qasm[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_qudit[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_qobj[1]_include.cmake")
include("/root/repo/build/tests/test_process_tomography[1]_include.cmake")
include("/root/repo/build/tests/test_zne[1]_include.cmake")
