file(REMOVE_RECURSE
  "CMakeFiles/qpulse_circuit.dir/circuit.cc.o"
  "CMakeFiles/qpulse_circuit.dir/circuit.cc.o.d"
  "CMakeFiles/qpulse_circuit.dir/dag.cc.o"
  "CMakeFiles/qpulse_circuit.dir/dag.cc.o.d"
  "CMakeFiles/qpulse_circuit.dir/gate.cc.o"
  "CMakeFiles/qpulse_circuit.dir/gate.cc.o.d"
  "CMakeFiles/qpulse_circuit.dir/qasm.cc.o"
  "CMakeFiles/qpulse_circuit.dir/qasm.cc.o.d"
  "libqpulse_circuit.a"
  "libqpulse_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
