file(REMOVE_RECURSE
  "libqpulse_circuit.a"
)
