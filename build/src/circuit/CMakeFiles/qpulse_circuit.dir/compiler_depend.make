# Empty compiler generated dependencies file for qpulse_circuit.
# This may be replaced when dependencies are built.
