# Empty compiler generated dependencies file for qpulse_noisesim.
# This may be replaced when dependencies are built.
