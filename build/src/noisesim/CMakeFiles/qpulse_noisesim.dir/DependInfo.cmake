
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noisesim/density_sim.cc" "src/noisesim/CMakeFiles/qpulse_noisesim.dir/density_sim.cc.o" "gcc" "src/noisesim/CMakeFiles/qpulse_noisesim.dir/density_sim.cc.o.d"
  "/root/repo/src/noisesim/statevector.cc" "src/noisesim/CMakeFiles/qpulse_noisesim.dir/statevector.cc.o" "gcc" "src/noisesim/CMakeFiles/qpulse_noisesim.dir/statevector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qpulse_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qpulse_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qpulse_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pulsesim/CMakeFiles/qpulse_pulsesim.dir/DependInfo.cmake"
  "/root/repo/build/src/pulse/CMakeFiles/qpulse_pulse.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/qpulse_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/qpulse_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qpulse_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
