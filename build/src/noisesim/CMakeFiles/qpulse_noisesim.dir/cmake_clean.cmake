file(REMOVE_RECURSE
  "CMakeFiles/qpulse_noisesim.dir/density_sim.cc.o"
  "CMakeFiles/qpulse_noisesim.dir/density_sim.cc.o.d"
  "CMakeFiles/qpulse_noisesim.dir/statevector.cc.o"
  "CMakeFiles/qpulse_noisesim.dir/statevector.cc.o.d"
  "libqpulse_noisesim.a"
  "libqpulse_noisesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_noisesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
