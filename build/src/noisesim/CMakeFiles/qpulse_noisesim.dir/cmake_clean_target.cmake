file(REMOVE_RECURSE
  "libqpulse_noisesim.a"
)
