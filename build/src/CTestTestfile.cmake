# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("opt")
subdirs("pauli")
subdirs("circuit")
subdirs("synth")
subdirs("pulse")
subdirs("device")
subdirs("pulsesim")
subdirs("noisesim")
subdirs("readout")
subdirs("transpile")
subdirs("compile")
subdirs("metrics")
subdirs("algos")
subdirs("rb")
subdirs("qudit")
