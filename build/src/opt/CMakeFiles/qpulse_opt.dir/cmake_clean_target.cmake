file(REMOVE_RECURSE
  "libqpulse_opt.a"
)
