file(REMOVE_RECURSE
  "CMakeFiles/qpulse_opt.dir/fitting.cc.o"
  "CMakeFiles/qpulse_opt.dir/fitting.cc.o.d"
  "CMakeFiles/qpulse_opt.dir/nelder_mead.cc.o"
  "CMakeFiles/qpulse_opt.dir/nelder_mead.cc.o.d"
  "CMakeFiles/qpulse_opt.dir/spsa.cc.o"
  "CMakeFiles/qpulse_opt.dir/spsa.cc.o.d"
  "libqpulse_opt.a"
  "libqpulse_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
