
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/fitting.cc" "src/opt/CMakeFiles/qpulse_opt.dir/fitting.cc.o" "gcc" "src/opt/CMakeFiles/qpulse_opt.dir/fitting.cc.o.d"
  "/root/repo/src/opt/nelder_mead.cc" "src/opt/CMakeFiles/qpulse_opt.dir/nelder_mead.cc.o" "gcc" "src/opt/CMakeFiles/qpulse_opt.dir/nelder_mead.cc.o.d"
  "/root/repo/src/opt/spsa.cc" "src/opt/CMakeFiles/qpulse_opt.dir/spsa.cc.o" "gcc" "src/opt/CMakeFiles/qpulse_opt.dir/spsa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qpulse_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qpulse_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
