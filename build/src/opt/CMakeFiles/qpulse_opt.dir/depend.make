# Empty dependencies file for qpulse_opt.
# This may be replaced when dependencies are built.
