file(REMOVE_RECURSE
  "CMakeFiles/qpulse_synth.dir/decomposer.cc.o"
  "CMakeFiles/qpulse_synth.dir/decomposer.cc.o.d"
  "CMakeFiles/qpulse_synth.dir/euler.cc.o"
  "CMakeFiles/qpulse_synth.dir/euler.cc.o.d"
  "CMakeFiles/qpulse_synth.dir/weyl.cc.o"
  "CMakeFiles/qpulse_synth.dir/weyl.cc.o.d"
  "libqpulse_synth.a"
  "libqpulse_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
