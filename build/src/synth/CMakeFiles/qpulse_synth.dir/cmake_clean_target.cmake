file(REMOVE_RECURSE
  "libqpulse_synth.a"
)
