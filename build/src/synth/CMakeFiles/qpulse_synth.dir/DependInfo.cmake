
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/decomposer.cc" "src/synth/CMakeFiles/qpulse_synth.dir/decomposer.cc.o" "gcc" "src/synth/CMakeFiles/qpulse_synth.dir/decomposer.cc.o.d"
  "/root/repo/src/synth/euler.cc" "src/synth/CMakeFiles/qpulse_synth.dir/euler.cc.o" "gcc" "src/synth/CMakeFiles/qpulse_synth.dir/euler.cc.o.d"
  "/root/repo/src/synth/weyl.cc" "src/synth/CMakeFiles/qpulse_synth.dir/weyl.cc.o" "gcc" "src/synth/CMakeFiles/qpulse_synth.dir/weyl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qpulse_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/qpulse_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qpulse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qpulse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
