# Empty compiler generated dependencies file for qpulse_synth.
# This may be replaced when dependencies are built.
