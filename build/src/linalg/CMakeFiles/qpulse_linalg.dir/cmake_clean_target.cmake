file(REMOVE_RECURSE
  "libqpulse_linalg.a"
)
