file(REMOVE_RECURSE
  "CMakeFiles/qpulse_linalg.dir/eigen.cc.o"
  "CMakeFiles/qpulse_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/qpulse_linalg.dir/gates.cc.o"
  "CMakeFiles/qpulse_linalg.dir/gates.cc.o.d"
  "CMakeFiles/qpulse_linalg.dir/matrix.cc.o"
  "CMakeFiles/qpulse_linalg.dir/matrix.cc.o.d"
  "libqpulse_linalg.a"
  "libqpulse_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
