# Empty dependencies file for qpulse_linalg.
# This may be replaced when dependencies are built.
