
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/circuits.cc" "src/algos/CMakeFiles/qpulse_algos.dir/circuits.cc.o" "gcc" "src/algos/CMakeFiles/qpulse_algos.dir/circuits.cc.o.d"
  "/root/repo/src/algos/hamiltonians.cc" "src/algos/CMakeFiles/qpulse_algos.dir/hamiltonians.cc.o" "gcc" "src/algos/CMakeFiles/qpulse_algos.dir/hamiltonians.cc.o.d"
  "/root/repo/src/algos/vqe.cc" "src/algos/CMakeFiles/qpulse_algos.dir/vqe.cc.o" "gcc" "src/algos/CMakeFiles/qpulse_algos.dir/vqe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pauli/CMakeFiles/qpulse_pauli.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qpulse_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/qpulse_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qpulse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qpulse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
