file(REMOVE_RECURSE
  "CMakeFiles/qpulse_algos.dir/circuits.cc.o"
  "CMakeFiles/qpulse_algos.dir/circuits.cc.o.d"
  "CMakeFiles/qpulse_algos.dir/hamiltonians.cc.o"
  "CMakeFiles/qpulse_algos.dir/hamiltonians.cc.o.d"
  "CMakeFiles/qpulse_algos.dir/vqe.cc.o"
  "CMakeFiles/qpulse_algos.dir/vqe.cc.o.d"
  "libqpulse_algos.a"
  "libqpulse_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
