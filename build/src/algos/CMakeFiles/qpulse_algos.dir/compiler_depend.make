# Empty compiler generated dependencies file for qpulse_algos.
# This may be replaced when dependencies are built.
