file(REMOVE_RECURSE
  "libqpulse_algos.a"
)
