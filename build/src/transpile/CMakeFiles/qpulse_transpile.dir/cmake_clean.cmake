file(REMOVE_RECURSE
  "CMakeFiles/qpulse_transpile.dir/pass.cc.o"
  "CMakeFiles/qpulse_transpile.dir/pass.cc.o.d"
  "CMakeFiles/qpulse_transpile.dir/passes.cc.o"
  "CMakeFiles/qpulse_transpile.dir/passes.cc.o.d"
  "CMakeFiles/qpulse_transpile.dir/routing.cc.o"
  "CMakeFiles/qpulse_transpile.dir/routing.cc.o.d"
  "libqpulse_transpile.a"
  "libqpulse_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
