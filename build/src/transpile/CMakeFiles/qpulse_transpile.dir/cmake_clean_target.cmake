file(REMOVE_RECURSE
  "libqpulse_transpile.a"
)
