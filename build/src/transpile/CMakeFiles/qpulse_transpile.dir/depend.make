# Empty dependencies file for qpulse_transpile.
# This may be replaced when dependencies are built.
