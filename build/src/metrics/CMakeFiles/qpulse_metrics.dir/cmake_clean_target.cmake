file(REMOVE_RECURSE
  "libqpulse_metrics.a"
)
