# Empty compiler generated dependencies file for qpulse_metrics.
# This may be replaced when dependencies are built.
