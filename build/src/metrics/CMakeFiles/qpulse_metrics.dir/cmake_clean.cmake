file(REMOVE_RECURSE
  "CMakeFiles/qpulse_metrics.dir/metrics.cc.o"
  "CMakeFiles/qpulse_metrics.dir/metrics.cc.o.d"
  "CMakeFiles/qpulse_metrics.dir/process_tomography.cc.o"
  "CMakeFiles/qpulse_metrics.dir/process_tomography.cc.o.d"
  "libqpulse_metrics.a"
  "libqpulse_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
