# CMake generated Testfile for 
# Source directory: /root/repo/src/pauli
# Build directory: /root/repo/build/src/pauli
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
