file(REMOVE_RECURSE
  "CMakeFiles/qpulse_pauli.dir/pauli.cc.o"
  "CMakeFiles/qpulse_pauli.dir/pauli.cc.o.d"
  "libqpulse_pauli.a"
  "libqpulse_pauli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_pauli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
