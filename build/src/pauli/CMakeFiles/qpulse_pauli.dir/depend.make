# Empty dependencies file for qpulse_pauli.
# This may be replaced when dependencies are built.
