file(REMOVE_RECURSE
  "libqpulse_pauli.a"
)
