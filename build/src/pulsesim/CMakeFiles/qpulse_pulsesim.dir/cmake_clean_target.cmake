file(REMOVE_RECURSE
  "libqpulse_pulsesim.a"
)
