file(REMOVE_RECURSE
  "CMakeFiles/qpulse_pulsesim.dir/simulator.cc.o"
  "CMakeFiles/qpulse_pulsesim.dir/simulator.cc.o.d"
  "CMakeFiles/qpulse_pulsesim.dir/transmon.cc.o"
  "CMakeFiles/qpulse_pulsesim.dir/transmon.cc.o.d"
  "libqpulse_pulsesim.a"
  "libqpulse_pulsesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_pulsesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
