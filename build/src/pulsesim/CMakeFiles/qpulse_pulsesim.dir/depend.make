# Empty dependencies file for qpulse_pulsesim.
# This may be replaced when dependencies are built.
