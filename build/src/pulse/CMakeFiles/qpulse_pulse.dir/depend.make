# Empty dependencies file for qpulse_pulse.
# This may be replaced when dependencies are built.
