
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pulse/cmd_def.cc" "src/pulse/CMakeFiles/qpulse_pulse.dir/cmd_def.cc.o" "gcc" "src/pulse/CMakeFiles/qpulse_pulse.dir/cmd_def.cc.o.d"
  "/root/repo/src/pulse/qobj.cc" "src/pulse/CMakeFiles/qpulse_pulse.dir/qobj.cc.o" "gcc" "src/pulse/CMakeFiles/qpulse_pulse.dir/qobj.cc.o.d"
  "/root/repo/src/pulse/schedule.cc" "src/pulse/CMakeFiles/qpulse_pulse.dir/schedule.cc.o" "gcc" "src/pulse/CMakeFiles/qpulse_pulse.dir/schedule.cc.o.d"
  "/root/repo/src/pulse/waveform.cc" "src/pulse/CMakeFiles/qpulse_pulse.dir/waveform.cc.o" "gcc" "src/pulse/CMakeFiles/qpulse_pulse.dir/waveform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/qpulse_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qpulse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qpulse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
