file(REMOVE_RECURSE
  "libqpulse_pulse.a"
)
