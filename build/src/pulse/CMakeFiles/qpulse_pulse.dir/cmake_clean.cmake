file(REMOVE_RECURSE
  "CMakeFiles/qpulse_pulse.dir/cmd_def.cc.o"
  "CMakeFiles/qpulse_pulse.dir/cmd_def.cc.o.d"
  "CMakeFiles/qpulse_pulse.dir/qobj.cc.o"
  "CMakeFiles/qpulse_pulse.dir/qobj.cc.o.d"
  "CMakeFiles/qpulse_pulse.dir/schedule.cc.o"
  "CMakeFiles/qpulse_pulse.dir/schedule.cc.o.d"
  "CMakeFiles/qpulse_pulse.dir/waveform.cc.o"
  "CMakeFiles/qpulse_pulse.dir/waveform.cc.o.d"
  "libqpulse_pulse.a"
  "libqpulse_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
