file(REMOVE_RECURSE
  "CMakeFiles/qpulse_device.dir/backend_config.cc.o"
  "CMakeFiles/qpulse_device.dir/backend_config.cc.o.d"
  "CMakeFiles/qpulse_device.dir/calibration.cc.o"
  "CMakeFiles/qpulse_device.dir/calibration.cc.o.d"
  "CMakeFiles/qpulse_device.dir/pulse_backend.cc.o"
  "CMakeFiles/qpulse_device.dir/pulse_backend.cc.o.d"
  "libqpulse_device.a"
  "libqpulse_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
