
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/backend_config.cc" "src/device/CMakeFiles/qpulse_device.dir/backend_config.cc.o" "gcc" "src/device/CMakeFiles/qpulse_device.dir/backend_config.cc.o.d"
  "/root/repo/src/device/calibration.cc" "src/device/CMakeFiles/qpulse_device.dir/calibration.cc.o" "gcc" "src/device/CMakeFiles/qpulse_device.dir/calibration.cc.o.d"
  "/root/repo/src/device/pulse_backend.cc" "src/device/CMakeFiles/qpulse_device.dir/pulse_backend.cc.o" "gcc" "src/device/CMakeFiles/qpulse_device.dir/pulse_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pulsesim/CMakeFiles/qpulse_pulsesim.dir/DependInfo.cmake"
  "/root/repo/build/src/pulse/CMakeFiles/qpulse_pulse.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/qpulse_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/qpulse_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qpulse_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qpulse_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qpulse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
