file(REMOVE_RECURSE
  "libqpulse_device.a"
)
