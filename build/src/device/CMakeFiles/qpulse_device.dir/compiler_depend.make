# Empty compiler generated dependencies file for qpulse_device.
# This may be replaced when dependencies are built.
