file(REMOVE_RECURSE
  "CMakeFiles/qpulse_rb.dir/randomized_benchmarking.cc.o"
  "CMakeFiles/qpulse_rb.dir/randomized_benchmarking.cc.o.d"
  "libqpulse_rb.a"
  "libqpulse_rb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_rb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
