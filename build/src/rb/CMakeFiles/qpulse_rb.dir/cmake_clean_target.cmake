file(REMOVE_RECURSE
  "libqpulse_rb.a"
)
