# Empty dependencies file for qpulse_rb.
# This may be replaced when dependencies are built.
