file(REMOVE_RECURSE
  "libqpulse_common.a"
)
