file(REMOVE_RECURSE
  "CMakeFiles/qpulse_common.dir/ascii_plot.cc.o"
  "CMakeFiles/qpulse_common.dir/ascii_plot.cc.o.d"
  "CMakeFiles/qpulse_common.dir/rng.cc.o"
  "CMakeFiles/qpulse_common.dir/rng.cc.o.d"
  "CMakeFiles/qpulse_common.dir/table.cc.o"
  "CMakeFiles/qpulse_common.dir/table.cc.o.d"
  "libqpulse_common.a"
  "libqpulse_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
