# Empty dependencies file for qpulse_common.
# This may be replaced when dependencies are built.
