# Empty dependencies file for qpulse_readout.
# This may be replaced when dependencies are built.
