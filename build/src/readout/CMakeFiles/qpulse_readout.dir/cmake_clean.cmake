file(REMOVE_RECURSE
  "CMakeFiles/qpulse_readout.dir/readout.cc.o"
  "CMakeFiles/qpulse_readout.dir/readout.cc.o.d"
  "libqpulse_readout.a"
  "libqpulse_readout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_readout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
