file(REMOVE_RECURSE
  "libqpulse_readout.a"
)
