file(REMOVE_RECURSE
  "libqpulse_compile.a"
)
