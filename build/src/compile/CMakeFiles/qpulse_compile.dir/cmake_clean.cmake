file(REMOVE_RECURSE
  "CMakeFiles/qpulse_compile.dir/compiler.cc.o"
  "CMakeFiles/qpulse_compile.dir/compiler.cc.o.d"
  "CMakeFiles/qpulse_compile.dir/zne.cc.o"
  "CMakeFiles/qpulse_compile.dir/zne.cc.o.d"
  "libqpulse_compile.a"
  "libqpulse_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
