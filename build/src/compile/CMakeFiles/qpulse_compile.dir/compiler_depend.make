# Empty compiler generated dependencies file for qpulse_compile.
# This may be replaced when dependencies are built.
