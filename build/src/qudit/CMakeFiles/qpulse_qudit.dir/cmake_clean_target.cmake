file(REMOVE_RECURSE
  "libqpulse_qudit.a"
)
