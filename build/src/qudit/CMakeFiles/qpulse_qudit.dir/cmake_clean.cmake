file(REMOVE_RECURSE
  "CMakeFiles/qpulse_qudit.dir/qutrit.cc.o"
  "CMakeFiles/qpulse_qudit.dir/qutrit.cc.o.d"
  "libqpulse_qudit.a"
  "libqpulse_qudit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpulse_qudit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
