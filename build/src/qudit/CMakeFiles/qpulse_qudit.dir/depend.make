# Empty dependencies file for qpulse_qudit.
# This may be replaced when dependencies are built.
