file(REMOVE_RECURSE
  "CMakeFiles/pulse_schedule_explorer.dir/pulse_schedule_explorer.cpp.o"
  "CMakeFiles/pulse_schedule_explorer.dir/pulse_schedule_explorer.cpp.o.d"
  "pulse_schedule_explorer"
  "pulse_schedule_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_schedule_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
