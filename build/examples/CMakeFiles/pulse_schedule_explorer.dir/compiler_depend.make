# Empty compiler generated dependencies file for pulse_schedule_explorer.
# This may be replaced when dependencies are built.
