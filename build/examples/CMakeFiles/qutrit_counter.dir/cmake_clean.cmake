file(REMOVE_RECURSE
  "CMakeFiles/qutrit_counter.dir/qutrit_counter.cpp.o"
  "CMakeFiles/qutrit_counter.dir/qutrit_counter.cpp.o.d"
  "qutrit_counter"
  "qutrit_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qutrit_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
