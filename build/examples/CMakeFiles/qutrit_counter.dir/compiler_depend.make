# Empty compiler generated dependencies file for qutrit_counter.
# This may be replaced when dependencies are built.
