/**
 * @file
 * Pulse-schedule explorer: dumps the pulse schedules of every basis
 * and augmented-basis gate on a calibrated backend, with ASCII
 * envelope sketches — a hands-on view of what the paper's
 * optimizations do at the waveform level (amplitude scaling,
 * stretching, echoes, frame changes).
 *
 * Build & run:  ./build/examples/pulse_schedule_explorer
 */
#include <cstdio>

#include "compile/compiler.h"

using namespace qpulse;

namespace {

/** Render a waveform's |d(t)| as a rough ASCII envelope. */
void
sketch(const Waveform &waveform)
{
    constexpr int kColumns = 64;
    constexpr int kRows = 6;
    const long duration = waveform.duration();
    double peak = waveform.peakAmplitude();
    if (peak <= 0.0)
        peak = 1.0;
    for (int row = kRows; row >= 1; --row) {
        std::printf("    |");
        for (int col = 0; col < kColumns; ++col) {
            const long t = duration * col / kColumns;
            const double level =
                std::abs(waveform.sample(t)) / peak * kRows;
            std::printf("%c", level >= row - 0.5 ? '#' : ' ');
        }
        std::printf("|\n");
    }
    std::printf("    +%s+ %ld dt, peak %.4f\n",
                std::string(kColumns, '-').c_str(), duration,
                waveform.peakAmplitude());
}

void
show(const PulseBackend &backend, const Gate &gate)
{
    const Schedule schedule = backend.schedule(gate);
    std::printf("\n--- %s ---\n%s", gate.toString().c_str(),
                schedule.render().c_str());
    for (const auto &inst : schedule.instructions())
        if (inst.kind == PulseInstructionKind::Play &&
            inst.channel.kind != ChannelKind::Measure) {
            std::printf("  %s envelope:\n",
                        inst.channel.toString().c_str());
            sketch(*inst.waveform);
        }
}

} // namespace

int
main()
{
    std::printf("calibrating a 2-qubit backend...\n");
    const auto backend = makeCalibratedBackend(almadenLineConfig(2));

    // The standard basis.
    show(*backend, makeGate(GateType::X90, {0}));
    show(*backend, makeGate(GateType::Rz, {0}, {kPi / 4}));

    // The augmented basis of Sections 4-6.
    show(*backend, makeGate(GateType::DirectX, {0}));
    show(*backend, makeGate(GateType::DirectRx, {0}, {kPi / 3}));
    show(*backend, makeGate(GateType::Cr, {0, 1}, {kPi / 2}));
    show(*backend, makeGate(GateType::Cr, {0, 1}, {kPi / 8}));
    show(*backend, makeGate(GateType::Cnot, {0, 1}));
    return 0;
}
