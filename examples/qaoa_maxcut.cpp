/**
 * @file
 * QAOA-MAXCUT on a 5-qubit line graph (the paper's largest Figure 12
 * benchmark): train the angles, execute under both flows, and report
 * the expected cut value and the full outcome distribution — the
 * paper's point being that QAOA quality is a distribution property
 * (Hellinger), not a single success probability.
 *
 * Build & run:  ./build/examples/qaoa_maxcut
 */
#include <cstdio>

#include "algos/circuits.h"
#include "algos/hamiltonians.h"
#include "algos/vqe.h"
#include "compile/compiler.h"
#include "metrics/metrics.h"
#include "noisesim/statevector.h"

using namespace qpulse;

int
main()
{
    constexpr std::size_t kQubits = 5;

    // --- Train p = 1 QAOA. ---
    const VariationalResult trained = runQaoaLine(kQubits, 1);
    std::printf("QAOA-%zu MAXCUT (line graph, p = 1):\n", kQubits);
    std::printf("  trained <C> = %.4f of max %d\n\n", trained.value,
                static_cast<int>(trained.reference));

    const QuantumCircuit circuit = qaoaLineCircuit(
        kQubits, {trained.params[0]}, {trained.params[1]});
    const std::vector<double> ideal = idealDistribution(circuit);
    std::printf("ideal distribution: expected cut %.4f\n\n",
                expectedCutValue(kQubits, ideal));

    const BackendConfig config = almadenLineConfig(kQubits);
    const auto backend = makeCalibratedBackend(config);

    Rng rng(11);
    for (const CompileMode mode :
         {CompileMode::Standard, CompileMode::Optimized}) {
        const PulseCompiler compiler(backend, mode);
        const CompileResult compiled = compiler.compile(circuit);

        DensitySimulator simulator = compiler.makeSimulator();
        QuantumCircuit measured = circuit;
        measured.measureAll();
        const NoisyRunResult run =
            simulator.run(compiler.transpile(measured));
        const auto counts = simulator.sampleCounts(run, 8000, rng);
        const auto probs = countsToProbabilities(counts);

        std::printf("%s flow:\n",
                    mode == CompileMode::Standard ? "standard"
                                                  : "optimized");
        std::printf("  schedule: %ld dt (%.0f ns)\n",
                    compiled.durationDt, compiled.durationNs());
        std::printf("  Hellinger error:  %.4f\n",
                    hellingerDistance(probs, ideal));
        std::printf("  expected cut:     %.4f\n",
                    expectedCutValue(kQubits, probs));
        // Top outcomes.
        std::printf("  top bitstrings:");
        std::vector<std::size_t> order(probs.size());
        for (std::size_t i = 0; i < probs.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return probs[a] > probs[b];
                  });
        for (int rank = 0; rank < 4; ++rank) {
            std::string bits;
            for (std::size_t q = 0; q < kQubits; ++q)
                bits += ((order[rank] >> (kQubits - 1 - q)) & 1) ? '1'
                                                                 : '0';
            std::printf(" %s(%.3f, cut %d)", bits.c_str(),
                        probs[order[rank]],
                        maxcutLineValue(kQubits, order[rank]));
        }
        std::printf("\n\n");
    }
    return 0;
}
