/**
 * @file
 * VQE for the H2 molecule (the paper's first Figure 12 benchmark):
 * train the two-qubit UCC ansatz against the 2-qubit-reduced H2
 * Hamiltonian, then execute the trained circuit under both compiler
 * flows and compare the measured energies and Hellinger errors.
 *
 * Build & run:  ./build/examples/vqe_h2
 */
#include <cstdio>

#include "algos/circuits.h"
#include "algos/hamiltonians.h"
#include "algos/vqe.h"
#include "compile/compiler.h"
#include "metrics/metrics.h"
#include "noisesim/statevector.h"
#include "readout/readout.h"

using namespace qpulse;

int
main()
{
    // --- Train (noise-free expectation values). ---
    const PauliOperator h = h2Hamiltonian();
    const VariationalResult trained = runVqe2q(h);
    std::printf("H2 VQE training:\n");
    std::printf("  optimal exchange angle: %.4f rad\n",
                trained.params[0]);
    std::printf("  variational energy:     %.6f Ha\n", trained.value);
    std::printf("  exact ground energy:    %.6f Ha\n\n",
                trained.reference);

    // --- Execute the trained ansatz on the noisy backend. ---
    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    const QuantumCircuit ansatz = uccAnsatz2q(trained.params[0]);
    const std::vector<double> ideal = idealDistribution(ansatz);

    Rng rng(7);
    for (const CompileMode mode :
         {CompileMode::Standard, CompileMode::Optimized}) {
        const PulseCompiler compiler(backend, mode);
        const CompileResult compiled = compiler.compile(ansatz);

        DensitySimulator simulator = compiler.makeSimulator();
        QuantumCircuit measured = ansatz;
        measured.measureAll();
        const NoisyRunResult run =
            simulator.run(compiler.transpile(measured));
        const auto counts = simulator.sampleCounts(run, 8000, rng);

        // Measurement-error mitigation as in the paper.
        const MeasurementMitigator mitigator =
            MeasurementMitigator::forQubits(
                {{config.readout[0].probFlip0to1,
                  config.readout[0].probFlip1to0},
                 {config.readout[1].probFlip0to1,
                  config.readout[1].probFlip1to0}});
        const auto probs =
            mitigator.mitigate(countsToProbabilities(counts));

        // The ZZ/Z parts of the energy are measurable from the Z-basis
        // distribution directly.
        double z_energy = 0.0;
        for (const auto &term : h.terms()) {
            bool diagonal = true;
            for (std::size_t q = 0; q < 2; ++q)
                if (term.string.op(q) == PauliOp::X ||
                    term.string.op(q) == PauliOp::Y)
                    diagonal = false;
            if (!diagonal)
                continue;
            for (std::size_t bits = 0; bits < 4; ++bits) {
                double eigen = 1.0;
                for (std::size_t q = 0; q < 2; ++q)
                    if (term.string.op(q) == PauliOp::Z &&
                        ((bits >> (1 - q)) & 1))
                        eigen = -eigen;
                z_energy += term.coefficient * probs[bits] * eigen;
            }
        }

        std::printf("%s flow:\n",
                    mode == CompileMode::Standard ? "standard"
                                                  : "optimized");
        std::printf("  schedule: %ld dt (%.0f ns), %zu pulses\n",
                    compiled.durationDt, compiled.durationNs(),
                    compiled.pulseCount);
        std::printf("  Hellinger error vs ideal: %.4f\n",
                    hellingerDistance(probs, ideal));
        std::printf("  diagonal energy part:     %.6f Ha\n\n", z_energy);
    }
    return 0;
}
