/**
 * @file
 * Quickstart: the smallest end-to-end tour of qpulse.
 *
 *  1. Describe a backend (an Almaden-like 2-qubit slice).
 *  2. Run the daily calibration against the pulse-simulated hardware.
 *  3. Write a hardware-agnostic circuit.
 *  4. Compile it with both flows (standard vs pulse-optimized).
 *  5. Compare schedule durations and execute under realistic noise.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "compile/compiler.h"
#include "metrics/metrics.h"
#include "noisesim/statevector.h"

using namespace qpulse;

int
main()
{
    // 1-2. A calibrated backend: Rabi/DRAG/CR scans run against the
    // transmon simulator and populate the pulse library + cmd_def.
    std::printf("calibrating the backend (Rabi, DRAG, CR scans)...\n");
    const BackendConfig config = almadenLineConfig(2);
    const auto backend = makeCalibratedBackend(config);
    std::printf("  x180 amplitude (q0): %.4f a.u.\n",
                backend->library().qubits[0].x180Amp);
    std::printf("  CR(90) flat-top:     %ld dt per echo half\n\n",
                backend->library().crs[0].flatFor90);

    // 3. A hardware-agnostic circuit: Bell pair + a ZZ interaction
    // written the "textbook" way (CX . Rz . CX).
    QuantumCircuit circuit(2);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.cx(0, 1);
    circuit.rz(0.8, 1);
    circuit.cx(0, 1);
    circuit.measureAll();

    // 4. Compile with both flows.
    const PulseCompiler standard(backend, CompileMode::Standard);
    const PulseCompiler optimized(backend, CompileMode::Optimized);
    const CompileResult std_result =
        standard.compile(circuit.withoutDirectives());
    const CompileResult opt_result =
        optimized.compile(circuit.withoutDirectives());

    std::printf("standard flow:  %4ld dt (%.0f ns), %zu pulses\n",
                std_result.durationDt, std_result.durationNs(),
                std_result.pulseCount);
    std::printf("optimized flow: %4ld dt (%.0f ns), %zu pulses\n",
                opt_result.durationDt, opt_result.durationNs(),
                opt_result.pulseCount);
    std::printf("speedup: %.2fx\n\n",
                static_cast<double>(std_result.durationDt) /
                    static_cast<double>(opt_result.durationDt));

    std::printf("optimized basis circuit:\n%s\n",
                opt_result.basisCircuit.toString().c_str());

    // 5. Execute under the duration-aware noise model and compare
    // against the ideal distribution.
    const std::vector<double> ideal =
        idealDistribution(circuit.withoutDirectives());
    Rng rng(42);
    for (const auto &entry :
         {std::make_pair(&standard, "standard"),
          std::make_pair(&optimized, "optimized")}) {
        DensitySimulator simulator = entry.first->makeSimulator();
        const NoisyRunResult run =
            simulator.run(entry.first->transpile(circuit));
        const auto counts = simulator.sampleCounts(run, 8000, rng);
        const double error = hellingerDistance(
            countsToProbabilities(counts), ideal);
        std::printf("%-9s Hellinger error: %.4f   counts:", entry.second,
                    error);
        for (long c : counts)
            std::printf(" %ld", c);
        std::printf("\n");
    }
    return 0;
}
