/**
 * @file
 * The Section 7 qutrit base-3 counter as a standalone example:
 * calibrate the f12 sideband and two-photon f02/2 pulses, train the
 * LDA readout discriminator, and cycle the counter, printing the
 * ground-state return probability every few cycles.
 *
 * Build & run:  ./build/examples/qutrit_counter
 */
#include <cstdio>

#include "device/calibration.h"
#include "readout/readout.h"

using namespace qpulse;

int
main()
{
    const BackendConfig config = armonkConfig();
    Calibrator calibrator(config);
    QubitCalibration cal = calibrator.calibrateQubit(0);
    calibrator.calibrateQutrit(0, cal);
    PulseSimulator sim(calibrator.qubitModel(0));
    const double alpha = config.qubits[0].anharmonicityGhz;

    std::printf("qutrit control pulses (all %.1f ns):\n",
                dtToNs(cal.qutritDuration));
    std::printf("  0->1 at f01 = %.3f GHz: amp %.4f\n",
                config.qubits[0].frequencyGhz, cal.x180Amp);
    std::printf("  1->2 at f12 = %.3f GHz: amp %.4f\n",
                config.qubits[0].frequencyGhz + alpha, cal.x12Amp);
    std::printf("  2->0 at f02/2 = %.3f GHz: amp %.4f (two-photon)\n\n",
                config.qubits[0].frequencyGhz + alpha / 2.0,
                cal.x02Amp);

    // LDA discriminator trained on calibration shots (Figure 11).
    const IqReadoutModel iq = IqReadoutModel::qutritDefault();
    Rng rng(3);
    std::vector<IqPoint> points;
    std::vector<std::size_t> labels;
    for (std::size_t level = 0; level < 3; ++level)
        for (int k = 0; k < 1500; ++k) {
            points.push_back(iq.sampleShot(level, rng));
            labels.push_back(level);
        }
    LdaClassifier lda;
    lda.fit(points, labels);
    std::printf("LDA discriminator accuracy: %.1f%%\n\n",
                100.0 * lda.trainingAccuracy(points, labels));

    // Cycle the counter.
    auto hop = [&](Schedule &schedule, double amp, double sideband) {
        WaveformPtr pulse = std::make_shared<GaussianWaveform>(
            cal.qutritDuration, cal.sigma, Complex{amp, 0.0});
        if (sideband != 0.0)
            pulse = std::make_shared<SidebandWaveform>(pulse, sideband);
        schedule.play(driveChannel(0), pulse);
    };

    Matrix rho(3, 3);
    rho(0, 0) = Complex{1.0, 0.0};
    std::printf("cycles  hops  P(|0>)  P(|1>)  P(|2>)  classified-0\n");
    for (int cycle = 1; cycle <= 30; ++cycle) {
        Schedule one_cycle("cycle");
        hop(one_cycle, cal.x180Amp, 0.0);
        hop(one_cycle, cal.x12Amp, alpha);
        hop(one_cycle, cal.x02Amp, alpha / 2.0);
        rho = sim.evolveLindblad(one_cycle, rho);
        if (cycle % 5 != 0 && cycle != 1)
            continue;
        const std::vector<double> pops = {rho(0, 0).real(),
                                          rho(1, 1).real(),
                                          rho(2, 2).real()};
        long zeros = 0;
        const long shots = 2000;
        for (long shot = 0; shot < shots; ++shot)
            if (lda.predict(iq.sampleShot(pops, rng)) == 0)
                ++zeros;
        std::printf("%5d  %4d  %.4f  %.4f  %.4f  %5.1f%%\n", cycle,
                    3 * cycle, pops[0], pops[1], pops[2],
                    100.0 * static_cast<double>(zeros) /
                        static_cast<double>(shots));
    }
    return 0;
}
